//! The protocol state machines and attack patterns (Figs. 2, 4, 5, 6).
//!
//! * [`sip::sip_call_machine`] — the per-call SIP signaling machine. Feeds
//!   the RTP machine δ synchronization messages at call setup (`δ.open`),
//!   on answer / re-INVITE (`δ.update`) and at teardown (`δ.bye`).
//! * [`rtp::rtp_session_machine`] — the per-call RTP media machine with the
//!   media-spamming, codec-violation, foreign-source, rate-flood and
//!   RTP-after-BYE (Fig. 5) attack states.
//! * [`flood::window_counter_machine`] — the counter-plus-timer pattern of
//!   Fig. 4, instantiated per destination for INVITE flooding and for DRDoS
//!   response floods.

pub mod flood;
pub mod register;
pub mod rtp;
pub mod sip;

/// Machine name of the SIP machine inside a call network (δ address).
pub const SIP_MACHINE: &str = "sip";
/// Machine name of the RTP machine inside a call network (δ address).
pub const RTP_MACHINE: &str = "rtp";

/// δ message: call setup seen, media coordinates published (Fig. 2).
pub const DELTA_OPEN: &str = "δ.open";
/// δ message: answer / re-INVITE updated the media coordinates.
pub const DELTA_UPDATE: &str = "δ.update";
/// δ message: a BYE passed by — arm timer T (Fig. 5).
pub const DELTA_BYE: &str = "δ.bye";
/// δ message: the BYE was rejected (401/481…) — the session continues.
pub const DELTA_REOPEN: &str = "δ.reopen";

#[cfg(test)]
mod tests {
    use vids_efsm::analysis::{attack_paths, unreachable_states};

    use crate::config::Config;

    #[test]
    fn shipped_machines_have_no_unreachable_states() {
        let cfg = Config::default();
        for def in [
            super::sip::sip_call_machine(&cfg),
            super::rtp::rtp_session_machine(&cfg),
            super::flood::invite_flood_machine(&cfg),
            super::flood::response_flood_machine(&cfg),
        ] {
            let dead = unreachable_states(&def);
            assert!(dead.is_empty(), "{}: unreachable {dead:?}", def.name());
        }
    }

    #[test]
    fn sip_machine_attack_patterns_cover_all_labels() {
        let def = super::sip::sip_call_machine(&Config::default());
        let paths = attack_paths(&def);
        let labels: std::collections::BTreeSet<&str> =
            paths.iter().map(|p| p.attack_label.as_str()).collect();
        assert!(labels.contains(crate::alert::labels::CALL_HIJACK));
        assert!(labels.contains(crate::alert::labels::SPOOFED_BYE));
        assert!(labels.contains(crate::alert::labels::SPOOFED_CANCEL));
    }

    #[test]
    fn rtp_machine_fig5_path_exists() {
        // The Fig. 5 pattern must be derivable from the machine itself:
        // INIT -> RTP_OPEN -> ... -> RTP_CLOSED -> (attack).
        let def = super::rtp::rtp_session_machine(&Config::default());
        let paths = attack_paths(&def);
        let fig5 = paths
            .iter()
            .find(|p| p.attack_label == crate::alert::labels::RTP_AFTER_BYE)
            .expect("rtp-after-bye pattern");
        let states: Vec<&str> = fig5.steps.iter().map(|s| s.to.as_str()).collect();
        assert!(states.contains(&"RTP_CLOSING"));
        assert!(states.contains(&"RTP_CLOSED"));
        assert_eq!(states.last(), Some(&"RTP_AFTER_BYE_DETECTED"));
    }

    #[test]
    fn flood_machine_fig4_path_matches_paper() {
        let def = super::flood::invite_flood_machine(&Config::default());
        let paths = attack_paths(&def);
        assert_eq!(paths.len(), 1);
        let p = &paths[0];
        // INIT -> PACKET_RCVD -> FLOOD_DETECTED, exactly Fig. 4.
        assert_eq!(p.steps[0].from, "INIT");
        assert_eq!(p.steps[0].to, "PACKET_RCVD");
        assert_eq!(p.steps[1].to, "FLOOD_DETECTED");
    }
}
