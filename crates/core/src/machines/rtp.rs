//! The per-call RTP media machine (Fig. 2 RTP side, Fig. 5, Fig. 6).
//!
//! The machine opens when the SIP machine synchronizes it (`δ.open`),
//! validates every media packet against the coordinates the SIP machine
//! published in the call-global variables, tracks per-direction
//! SSRC/sequence/timestamp state for the media-spamming pattern (Fig. 6),
//! rate-limits each direction (RTP flooding), and implements the Fig. 5
//! cross-protocol BYE pattern: on `δ.bye` it arms timer `T`; media arriving
//! after `T` expires is the BYE-DoS / billing-fraud signature.

use vids_efsm::machine::{ActionCtx, MachineDef, PredicateCtx};
use vids_efsm::value::{Value, VarMap};
use vids_efsm::{sym, Event, Sym};

use crate::alert::labels;
use crate::config::Config;
use crate::machines::{DELTA_BYE, DELTA_OPEN, DELTA_REOPEN, DELTA_UPDATE, RTP_MACHINE};

/// Timer name for the in-flight drain window (Fig. 5's `T`).
pub const TIMER_T: &str = "T_inflight";
/// Timer name for the rate-counting window.
pub const TIMER_WINDOW: &str = "T_window";

/// Per-direction local-variable names, resolved to pre-seeded symbols so
/// the per-packet classify/update path never formats a key string.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct DirVars {
    ssrc: Sym,
    seq: Sym,
    ts: Sym,
    count: Sym,
}

const FWD: DirVars = DirVars {
    ssrc: sym::L_FWD_SSRC,
    seq: sym::L_FWD_SEQ,
    ts: sym::L_FWD_TS,
    count: sym::L_FWD_COUNT,
};

const REV: DirVars = DirVars {
    ssrc: sym::L_REV_SSRC,
    seq: sym::L_REV_SEQ,
    ts: sym::L_REV_TS,
    count: sym::L_REV_COUNT,
};

/// The direction of a media packet relative to the negotiated endpoints.
///
/// Symbol-keyed reads plus `Value` comparison (an O(1) id compare when
/// both sides are interned, a byte compare otherwise): this runs inside
/// every RTP transition predicate, so it must not hash a name string or
/// take the interner lock.
fn direction_of(event: &Event, globals: &VarMap) -> Option<DirVars> {
    let src = event.arg(sym::SRC_IP)?;
    if *src == Value::Sym(sym::EMPTY) {
        return None;
    }
    if globals.get(sym::G_CALLER_MEDIA_IP) == Some(src) {
        Some(FWD)
    } else if globals.get(sym::G_CALLEE_MEDIA_IP) == Some(src) {
        Some(REV)
    } else {
        None
    }
}

/// Direction for paths where the predicate already ruled out a foreign
/// source: caller-side is FWD, anything else is REV.
fn dir_or_rev(event: &Event, globals: &VarMap) -> DirVars {
    let caller = event
        .arg(sym::SRC_IP)
        .is_some_and(|src| globals.get(sym::G_CALLER_MEDIA_IP) == Some(src));
    if caller {
        FWD
    } else {
        REV
    }
}

fn payload_type_ok(ctx: &PredicateCtx<'_>) -> bool {
    match ctx.globals.uint(sym::G_CODEC_PT) {
        Some(pt) if pt != 255 => ctx.event.uint_arg(sym::PT) == Some(pt),
        // No codec negotiated (SDP-less signaling): accept any.
        _ => true,
    }
}

/// Per-direction stream knowledge: `(ssrc, seq, ts)` if initialized.
fn known_stream(ctx: &PredicateCtx<'_>, dir: DirVars) -> Option<(u64, u64, u64)> {
    let ssrc = ctx.locals.uint(dir.ssrc)?;
    let seq = ctx.locals.uint(dir.seq)?;
    let ts = ctx.locals.uint(dir.ts)?;
    Some((ssrc, seq, ts))
}

/// 16-bit serial-arithmetic gap between stored and incoming sequence.
fn seq_gap(stored: u64, incoming: u64) -> i64 {
    vids_rtp::seq::seq_distance(incoming as u16, stored as u16) as i64
}

/// 32-bit wrapping gap between stored and incoming timestamps.
fn ts_gap(stored: u64, incoming: u64) -> i64 {
    (incoming as u32).wrapping_sub(stored as u32) as i32 as i64
}

/// Classification of a media packet against the machine's state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum PacketClass {
    /// Valid continuation (or first packet) of a direction's stream.
    Normal,
    /// First packet of a not-yet-seen direction.
    FirstOfDirection,
    /// Same SSRC but a sequence/timestamp discontinuity beyond thresholds.
    SpamGap,
    /// A second SSRC appeared within one direction.
    UnknownSsrc,
    /// Payload type differs from the negotiated codec.
    CodecViolation,
    /// Source matches neither negotiated endpoint.
    ForeignSource,
}

fn classify_packet(ctx: &PredicateCtx<'_>, seq_thresh: i64, ts_thresh: i64) -> PacketClass {
    let Some(dir) = direction_of(ctx.event, ctx.globals) else {
        return PacketClass::ForeignSource;
    };
    if !payload_type_ok(ctx) {
        return PacketClass::CodecViolation;
    }
    let ssrc = ctx.event.uint_arg(sym::SSRC).unwrap_or(0);
    let seq = ctx.event.uint_arg(sym::SEQ).unwrap_or(0);
    let ts = ctx.event.uint_arg(sym::TS).unwrap_or(0);
    match known_stream(ctx, dir) {
        None => PacketClass::FirstOfDirection,
        Some((k_ssrc, k_seq, k_ts)) => {
            if ssrc != k_ssrc {
                return PacketClass::UnknownSsrc;
            }
            // Fig. 6's rule: (x.time_stamp_{i+1} − v.time_stamp_i > Δt) or
            // (x.sequence_number_{i+1} − v.sequence_number_i > Δn).
            if seq_gap(k_seq, seq) > seq_thresh || ts_gap(k_ts, ts) > ts_thresh {
                PacketClass::SpamGap
            } else {
                PacketClass::Normal
            }
        }
    }
}

fn update_stream_vars(ctx: &mut ActionCtx<'_>) {
    let dir = dir_or_rev(ctx.event, ctx.globals);
    let ssrc = ctx.event.uint_arg(sym::SSRC).unwrap_or(0);
    let seq = ctx.event.uint_arg(sym::SEQ).unwrap_or(0);
    let ts = ctx.event.uint_arg(sym::TS).unwrap_or(0);
    ctx.locals.set(dir.ssrc, ssrc);
    ctx.locals.set(dir.seq, seq);
    ctx.locals.set(dir.ts, ts);
    ctx.locals.increment(dir.count);
}

fn window_count_next(ctx: &PredicateCtx<'_>) -> u64 {
    let dir = dir_or_rev(ctx.event, ctx.globals);
    ctx.locals.uint(dir.count).unwrap_or(0) + 1
}

/// Builds the RTP session machine.
pub fn rtp_session_machine(config: &Config) -> MachineDef {
    let seq_thresh = config.spam_seq_gap;
    let ts_thresh = config.spam_ts_gap;
    let flood_max = config.rtp_flood_max_packets;
    let t_ms = config.bye_dos_t.as_millis();
    let window_ms = config.rtp_flood_window.as_millis();

    let mut def = MachineDef::new(RTP_MACHINE);
    let init = def.add_state("INIT");
    let open = def.add_state("RTP_OPEN");
    let active = def.add_state("RTP_RCVD");
    let closing = def.add_state("RTP_CLOSING");
    let closed = def.add_state("RTP_CLOSED");
    let spam = def.add_state("MEDIA_SPAM_DETECTED");
    let unknown_ssrc = def.add_state("UNKNOWN_SSRC_DETECTED");
    let codec = def.add_state("CODEC_VIOLATION_DETECTED");
    let foreign = def.add_state("FOREIGN_SOURCE_DETECTED");
    let flood = def.add_state("RTP_FLOOD_DETECTED");
    let after_bye = def.add_state("RTP_AFTER_BYE_DETECTED");

    def.mark_final(closed);
    def.mark_attack(spam, labels::MEDIA_SPAM);
    def.mark_attack(unknown_ssrc, labels::RTP_UNKNOWN_SSRC);
    def.mark_attack(codec, labels::RTP_CODEC_VIOLATION);
    def.mark_attack(foreign, labels::RTP_FOREIGN_SOURCE);
    def.mark_attack(flood, labels::RTP_FLOOD);
    def.mark_attack(after_bye, labels::RTP_AFTER_BYE);

    // ---- INIT ----------------------------------------------------------
    def.add_transition(init, DELTA_OPEN, open)
        .label("SIP machine synchronized call setup");

    // ---- RTP_OPEN ------------------------------------------------------
    def.add_transition(open, DELTA_UPDATE, open)
        .label("answer SDP published");
    def.add_transition(open, DELTA_BYE, closing)
        .action(move |ctx| ctx.set_timer(TIMER_T, t_ms))
        .label("call torn down before media flowed");
    def.add_transition(open, "RTP.Packet", active)
        .predicate(move |ctx| {
            matches!(
                classify_packet(ctx, seq_thresh, ts_thresh),
                PacketClass::Normal | PacketClass::FirstOfDirection
            )
        })
        .action(move |ctx| {
            update_stream_vars(ctx);
            ctx.set_timer(TIMER_WINDOW, window_ms);
        })
        .label("first media packet");
    def.add_transition(open, "RTP.Packet", codec)
        .predicate(move |ctx| {
            classify_packet(ctx, seq_thresh, ts_thresh) == PacketClass::CodecViolation
        });
    def.add_transition(open, "RTP.Packet", foreign)
        .predicate(move |ctx| {
            classify_packet(ctx, seq_thresh, ts_thresh) == PacketClass::ForeignSource
        });

    // ---- RTP_RCVD (active session) ---------------------------------------
    def.add_transition(active, "RTP.Packet", active)
        .predicate(move |ctx| {
            matches!(
                classify_packet(ctx, seq_thresh, ts_thresh),
                PacketClass::Normal | PacketClass::FirstOfDirection
            ) && window_count_next(ctx) <= flood_max
        })
        .action(update_stream_vars)
        .label("in-profile media");
    def.add_transition(active, "RTP.Packet", flood)
        .predicate(move |ctx| {
            matches!(
                classify_packet(ctx, seq_thresh, ts_thresh),
                PacketClass::Normal | PacketClass::FirstOfDirection
            ) && window_count_next(ctx) > flood_max
        })
        .label("rate budget exceeded");
    def.add_transition(active, "RTP.Packet", spam)
        .predicate(move |ctx| classify_packet(ctx, seq_thresh, ts_thresh) == PacketClass::SpamGap)
        .label("sequence/timestamp discontinuity");
    def.add_transition(active, "RTP.Packet", unknown_ssrc)
        .predicate(move |ctx| {
            classify_packet(ctx, seq_thresh, ts_thresh) == PacketClass::UnknownSsrc
        });
    def.add_transition(active, "RTP.Packet", codec)
        .predicate(move |ctx| {
            classify_packet(ctx, seq_thresh, ts_thresh) == PacketClass::CodecViolation
        });
    def.add_transition(active, "RTP.Packet", foreign)
        .predicate(move |ctx| {
            classify_packet(ctx, seq_thresh, ts_thresh) == PacketClass::ForeignSource
        });
    def.add_transition(active, TIMER_WINDOW, active)
        .action(move |ctx| {
            ctx.locals.set(sym::L_FWD_COUNT, 0u64);
            ctx.locals.set(sym::L_REV_COUNT, 0u64);
            ctx.set_timer(TIMER_WINDOW, window_ms);
        })
        .label("rate window reset");
    def.add_transition(active, DELTA_UPDATE, active)
        .action(|ctx| {
            // Re-INVITE moved the media: forget per-direction stream state.
            for dir in [FWD, REV] {
                ctx.locals.remove(dir.ssrc);
                ctx.locals.remove(dir.seq);
                ctx.locals.remove(dir.ts);
            }
        })
        .label("media coordinates updated");
    def.add_transition(active, DELTA_BYE, closing)
        .action(move |ctx| {
            ctx.set_timer(TIMER_T, t_ms);
            ctx.cancel_timer(TIMER_WINDOW);
        })
        .label("BYE observed; draining in-flight media");

    // ---- RTP_CLOSING (Fig. 5's intermediate state) -----------------------
    def.add_transition(closing, "RTP.Packet", closing)
        .predicate(move |ctx| {
            classify_packet(ctx, seq_thresh, ts_thresh) != PacketClass::ForeignSource
        })
        .label("in-flight packet within T");
    def.add_transition(closing, "RTP.Packet", foreign)
        .predicate(move |ctx| {
            classify_packet(ctx, seq_thresh, ts_thresh) == PacketClass::ForeignSource
        });
    def.add_transition(closing, TIMER_T, closed)
        .label("drain window expired");
    def.add_transition(closing, DELTA_REOPEN, active)
        .action(move |ctx| {
            ctx.cancel_timer(TIMER_T);
            ctx.set_timer(TIMER_WINDOW, window_ms);
        })
        .label("teardown rejected; media legitimate again");
    def.add_transition(closing, DELTA_BYE, closing)
        .label("BYE retransmission");

    // ---- RTP_CLOSED (final): Fig. 5's detection point --------------------
    def.add_transition(closed, "RTP.Packet", after_bye)
        .label("RTP after BYE + T: BYE DoS / billing fraud");
    def.add_transition(closed, DELTA_BYE, closed)
        .label("late BYE retransmission");

    // Attack states absorb follow-on traffic.
    for s in [spam, unknown_ssrc, codec, foreign, flood, after_bye] {
        def.add_transition(s, "*", s);
    }

    // Predicates partition on `PacketClass` (an exhaustive enum match per
    // transition) and the flood budget; verified by the busy-call
    // determinism test and the debug-build exhaustive scan.
    def.declare_deterministic();
    def.build().expect("rtp machine definition is valid")
}

#[cfg(test)]
#[allow(clippy::field_reassign_with_default)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use vids_efsm::network::Network;
    use vids_efsm::Event;

    const CALLER_IP: &str = "10.1.0.10";
    const CALLEE_IP: &str = "10.2.0.10";

    fn rtp_network(config: &Config) -> (Network, vids_efsm::network::MachineId) {
        let def = Arc::new(rtp_session_machine(config));
        let mut net = Network::new();
        let id = net.add_machine(def);
        // Globals the SIP machine would have published.
        net.globals_mut().set("g_caller_media_ip", CALLER_IP);
        net.globals_mut().set("g_caller_media_port", 20_000u64);
        net.globals_mut().set("g_callee_media_ip", CALLEE_IP);
        net.globals_mut().set("g_callee_media_port", 30_000u64);
        net.globals_mut().set("g_codec_pt", 18u64);
        (net, id)
    }

    fn open(net: &mut Network, id: vids_efsm::network::MachineId) {
        let out = net.deliver(id, Event::sync(DELTA_OPEN), 0);
        assert!(!out.is_suspicious());
    }

    fn rtp_packet(src: &str, ssrc: u64, seq: u64, ts: u64, pt: u64) -> Event {
        Event::data("RTP.Packet")
            .with_str("src_ip", src)
            .with_uint("src_port", 20_000)
            .with_str("dst_ip", CALLEE_IP)
            .with_uint("dst_port", 30_000)
            .with_uint("ssrc", ssrc)
            .with_uint("seq", seq)
            .with_uint("ts", ts)
            .with_uint("pt", pt)
            .with_uint("size", 50)
    }

    #[test]
    fn normal_stream_stays_in_profile() {
        let (mut net, id) = rtp_network(&Config::default());
        open(&mut net, id);
        for i in 0..200u64 {
            let out = net.deliver(
                id,
                rtp_packet(CALLER_IP, 7, 100 + i, 8_000 + i * 80, 18),
                10 * i,
            );
            assert!(!out.is_suspicious(), "packet {i}");
        }
        assert_eq!(net.instance(id).state_name(net.definition(id)), "RTP_RCVD");
    }

    #[test]
    fn both_directions_tracked_independently() {
        let (mut net, id) = rtp_network(&Config::default());
        open(&mut net, id);
        net.deliver(id, rtp_packet(CALLER_IP, 7, 100, 0, 18), 0);
        let out = net.deliver(id, rtp_packet(CALLEE_IP, 9, 5_000, 0, 18), 5);
        assert!(!out.is_suspicious(), "reverse stream with own SSRC is fine");
        // And each continues independently.
        let out = net.deliver(id, rtp_packet(CALLER_IP, 7, 101, 80, 18), 10);
        assert!(!out.is_suspicious());
        let out = net.deliver(id, rtp_packet(CALLEE_IP, 9, 5_001, 80, 18), 15);
        assert!(!out.is_suspicious());
    }

    #[test]
    fn sequence_jump_triggers_media_spam() {
        let cfg = Config::default();
        let (mut net, id) = rtp_network(&cfg);
        open(&mut net, id);
        net.deliver(id, rtp_packet(CALLER_IP, 7, 100, 0, 18), 0);
        // Same SSRC, sequence jumped by more than spam_seq_gap.
        let out = net.deliver(
            id,
            rtp_packet(CALLER_IP, 7, 100 + cfg.spam_seq_gap as u64 + 5, 80, 18),
            10,
        );
        assert_eq!(out.alerts.len(), 1);
        assert_eq!(out.alerts[0].label, labels::MEDIA_SPAM);
    }

    #[test]
    fn timestamp_jump_triggers_media_spam() {
        let cfg = Config::default();
        let (mut net, id) = rtp_network(&cfg);
        open(&mut net, id);
        net.deliver(id, rtp_packet(CALLER_IP, 7, 100, 0, 18), 0);
        let out = net.deliver(
            id,
            rtp_packet(CALLER_IP, 7, 101, cfg.spam_ts_gap as u64 + 80, 18),
            10,
        );
        assert_eq!(out.alerts[0].label, labels::MEDIA_SPAM);
    }

    #[test]
    fn small_gaps_from_packet_loss_are_tolerated() {
        let (mut net, id) = rtp_network(&Config::default());
        open(&mut net, id);
        net.deliver(id, rtp_packet(CALLER_IP, 7, 100, 0, 18), 0);
        // 3 packets lost: seq 104, ts advanced 4 frames.
        let out = net.deliver(id, rtp_packet(CALLER_IP, 7, 104, 320, 18), 40);
        assert!(!out.is_suspicious());
    }

    #[test]
    fn new_ssrc_in_same_direction_is_flagged() {
        let (mut net, id) = rtp_network(&Config::default());
        open(&mut net, id);
        net.deliver(id, rtp_packet(CALLER_IP, 7, 100, 0, 18), 0);
        let out = net.deliver(id, rtp_packet(CALLER_IP, 999, 1, 0, 18), 10);
        assert_eq!(out.alerts[0].label, labels::RTP_UNKNOWN_SSRC);
    }

    #[test]
    fn wrong_payload_type_is_codec_violation() {
        let (mut net, id) = rtp_network(&Config::default());
        open(&mut net, id);
        let out = net.deliver(id, rtp_packet(CALLER_IP, 7, 100, 0, 0), 0);
        assert_eq!(out.alerts[0].label, labels::RTP_CODEC_VIOLATION);
    }

    #[test]
    fn foreign_source_is_flagged() {
        let (mut net, id) = rtp_network(&Config::default());
        open(&mut net, id);
        net.deliver(id, rtp_packet(CALLER_IP, 7, 100, 0, 18), 0);
        let out = net.deliver(id, rtp_packet("10.0.0.66", 7, 101, 80, 18), 10);
        assert_eq!(out.alerts[0].label, labels::RTP_FOREIGN_SOURCE);
    }

    #[test]
    fn rate_flood_detected_within_window() {
        let mut cfg = Config::default();
        cfg.rtp_flood_max_packets = 50;
        let (mut net, id) = rtp_network(&cfg);
        open(&mut net, id);
        let mut alerted = None;
        for i in 0..60u64 {
            // All within one 1-second window, small gaps.
            let out = net.deliver(id, rtp_packet(CALLER_IP, 7, 100 + i, i * 80, 18), i);
            if let Some(a) = out.alerts.first() {
                alerted = Some((i, a.label.clone()));
                break;
            }
        }
        let (at, label) = alerted.expect("flood must be detected");
        assert_eq!(label, labels::RTP_FLOOD);
        assert_eq!(at, 50, "51st packet in the window crosses the budget");
    }

    #[test]
    fn window_reset_prevents_false_flood() {
        let mut cfg = Config::default();
        cfg.rtp_flood_max_packets = 150;
        let (mut net, id) = rtp_network(&cfg);
        open(&mut net, id);
        // 100 packets/s for 3 s — exactly G.729's legitimate rate; window
        // resets keep the counter under the budget.
        let mut t = 0u64;
        for i in 0..300u64 {
            net.advance_time(t);
            let out = net.deliver(id, rtp_packet(CALLER_IP, 7, 100 + i, i * 80, 18), t);
            assert!(!out.is_suspicious(), "packet {i} at {t} ms");
            t += 10;
        }
    }

    #[test]
    fn fig5_bye_dos_pattern() {
        let cfg = Config::default();
        let (mut net, id) = rtp_network(&cfg);
        open(&mut net, id);
        net.deliver(id, rtp_packet(CALLER_IP, 7, 100, 0, 18), 0);
        // BYE observed: δ from the SIP machine.
        let out = net.deliver(id, Event::sync(DELTA_BYE), 1_000);
        assert!(!out.is_suspicious());
        assert_eq!(
            net.instance(id).state_name(net.definition(id)),
            "RTP_CLOSING"
        );
        // In-flight packets within T are fine.
        let out = net.deliver(id, rtp_packet(CALLER_IP, 7, 101, 80, 18), 1_050);
        assert!(!out.is_suspicious());
        // T expires -> RTP_CLOSED (final).
        net.advance_time(1_000 + cfg.bye_dos_t.as_millis());
        assert!(net.all_final());
        // Media after T: the attack.
        let out = net.deliver(id, rtp_packet(CALLER_IP, 7, 150, 4_000, 18), 2_000);
        assert_eq!(out.alerts[0].label, labels::RTP_AFTER_BYE);
    }

    #[test]
    fn clean_teardown_reaches_final_without_alerts() {
        let cfg = Config::default();
        let (mut net, id) = rtp_network(&cfg);
        open(&mut net, id);
        net.deliver(id, rtp_packet(CALLER_IP, 7, 100, 0, 18), 0);
        net.deliver(id, Event::sync(DELTA_BYE), 500);
        let out = net.advance_time(500 + cfg.bye_dos_t.as_millis());
        assert!(!out.is_suspicious());
        assert!(net.all_final());
    }

    #[test]
    fn media_before_signaling_is_deviation() {
        let (mut net, id) = rtp_network(&Config::default());
        // No δ.open yet: the machine is still in INIT.
        let out = net.deliver(id, rtp_packet(CALLER_IP, 7, 1, 0, 18), 0);
        assert_eq!(out.deviations.len(), 1);
    }

    #[test]
    fn reinvite_update_resets_stream_state() {
        let (mut net, id) = rtp_network(&Config::default());
        open(&mut net, id);
        net.deliver(id, rtp_packet(CALLER_IP, 7, 100, 0, 18), 0);
        // Media moves (re-INVITE): new SSRC afterwards must be accepted.
        net.deliver(id, Event::sync(DELTA_UPDATE), 10);
        let out = net.deliver(id, rtp_packet(CALLER_IP, 4242, 1, 0, 18), 20);
        assert!(!out.is_suspicious());
    }
}
