//! The counter-plus-window pattern of Fig. 4.
//!
//! "On sniffing the first INVITE request … the state machine makes a
//! transition from the (INIT) state to the intermediate state (Packet Rcvd)
//! … It also starts a counter (pck_counter) to count the received INVITE
//! messages for the same destination within a certain amount of time (T1).
//! … If there is a sudden surge of INVITE requests that exceeds the
//! threshold N, it is a strong indication of a flooding attack."
//!
//! The same machine shape, instantiated with a different event name and
//! label, detects DRDoS response floods (§3.1) — a victim being swamped
//! with responses that belong to no monitored call.

use vids_efsm::machine::MachineDef;

use crate::alert::labels;
use crate::config::Config;

/// Timer name for the counting window (Fig. 4's T1).
pub const TIMER_T1: &str = "T1";

/// Builds a per-destination window-counter machine: more than `n` events
/// named `event_name` within `window_ms` drives the machine into an attack
/// state labelled `label`.
pub fn window_counter_machine(
    machine_name: &str,
    event_name: &str,
    n: u64,
    window_ms: u64,
    label: &str,
) -> MachineDef {
    let mut def = MachineDef::new(machine_name);
    let init = def.add_state("INIT");
    let counting = def.add_state("PACKET_RCVD");
    let attack = def.add_state("FLOOD_DETECTED");
    def.mark_attack(attack, label);

    // First event: start the counter and the T1 window.
    def.add_transition(init, event_name, counting)
        .action(move |ctx| {
            ctx.locals.set("pck_counter", 1u64);
            ctx.set_timer(TIMER_T1, window_ms);
        })
        .label("window opened");

    // Within the window and under the threshold: count.
    def.add_transition(counting, event_name, counting)
        .predicate(move |ctx| ctx.locals.uint("pck_counter").unwrap_or(0) < n)
        .action(|ctx| {
            ctx.locals.increment("pck_counter");
        })
        .label("counting");

    // Threshold crossed within the window: attack.
    def.add_transition(counting, event_name, attack)
        .predicate(move |ctx| ctx.locals.uint("pck_counter").unwrap_or(0) + 1 > n)
        .label("threshold N exceeded within T1");

    // Window expired: back to INIT (the next event re-opens it).
    def.add_transition(counting, TIMER_T1, init)
        .action(|ctx| {
            ctx.locals.set("pck_counter", 0u64);
        })
        .label("window expired");

    // After detection: absorb (re-arming happens when the engine resets
    // the machine after the operator handles the alert).
    def.add_transition(attack, "*", attack);

    // Predicates partition on the counter value; verified by the busy-call
    // determinism test and the debug-build exhaustive scan.
    def.declare_deterministic();
    def.build().expect("flood machine definition is valid")
}

/// The INVITE-flooding machine of Fig. 4 for one destination.
pub fn invite_flood_machine(config: &Config) -> MachineDef {
    window_counter_machine(
        "flood",
        "SIP.INVITE",
        config.invite_flood_n,
        config.invite_flood_t1.as_millis(),
        labels::INVITE_FLOOD,
    )
}

/// The DRDoS response-flood machine for one destination. Fed with the
/// synthetic `SIP.response.unassociated` event the engine emits for
/// responses that match no monitored call.
pub fn response_flood_machine(config: &Config) -> MachineDef {
    window_counter_machine(
        "response-flood",
        "SIP.response.unassociated",
        config.response_flood_n,
        config.response_flood_window.as_millis(),
        labels::RESPONSE_FLOOD,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use vids_efsm::network::Network;
    use vids_efsm::Event;

    fn flood_net(n: u64, window: u64) -> (Network, vids_efsm::network::MachineId) {
        let def = Arc::new(window_counter_machine(
            "flood",
            "SIP.INVITE",
            n,
            window,
            "flood",
        ));
        let mut net = Network::new();
        let id = net.add_machine(def);
        (net, id)
    }

    #[test]
    fn surge_within_window_detected_at_n_plus_one() {
        let (mut net, id) = flood_net(5, 1_000);
        for i in 0..5u64 {
            let out = net.deliver(id, Event::data("SIP.INVITE"), i * 10);
            assert!(out.alerts.is_empty(), "INVITE {i} under threshold");
        }
        let out = net.deliver(id, Event::data("SIP.INVITE"), 60);
        assert_eq!(out.alerts.len(), 1);
        assert_eq!(out.alerts[0].label, "flood");
    }

    #[test]
    fn slow_arrivals_never_alert() {
        let (mut net, id) = flood_net(5, 1_000);
        // 3 per window for many windows.
        let mut t = 0u64;
        for _ in 0..10 {
            for _ in 0..3 {
                net.advance_time(t);
                let out = net.deliver(id, Event::data("SIP.INVITE"), t);
                assert!(out.alerts.is_empty());
                t += 100;
            }
            t += 1_000; // let T1 expire
        }
    }

    #[test]
    fn window_expiry_resets_counter() {
        let (mut net, id) = flood_net(5, 1_000);
        for i in 0..5u64 {
            net.deliver(id, Event::data("SIP.INVITE"), i);
        }
        // Window expires.
        net.advance_time(1_100);
        assert_eq!(net.instance(id).state_name(net.definition(id)), "INIT");
        // Fresh window: another 5 are fine again.
        for i in 0..5u64 {
            let out = net.deliver(id, Event::data("SIP.INVITE"), 2_000 + i);
            assert!(out.alerts.is_empty());
        }
    }

    #[test]
    fn detection_delay_tracks_attack_rate() {
        // §7.5: detection sensitivity — a faster flood is detected sooner.
        let measure = |gap_ms: u64| -> u64 {
            let (mut net, id) = flood_net(10, 10_000);
            let mut t = 0;
            loop {
                let out = net.deliver(id, Event::data("SIP.INVITE"), t);
                if !out.alerts.is_empty() {
                    return t;
                }
                t += gap_ms;
            }
        };
        let fast = measure(5);
        let slow = measure(50);
        assert!(fast < slow, "fast {fast} ms vs slow {slow} ms");
        assert_eq!(fast, 50); // 11th INVITE at 10 × 5 ms
        assert_eq!(slow, 500);
    }
}
