//! Registration monitoring (extension).
//!
//! The paper's §3 notes that attackers target "multi-faceted trust
//! relationships"; its citations include registration/unregister attacks
//! (e.g. Bremler-Barr et al., "Unregister Attacks in SIP"). This machine
//! extends the vids pattern library to the REGISTER surface for deployments
//! where registrations cross the monitored perimeter (roaming users
//! registering with the DMZ registrar of Fig. 1):
//!
//! * a REGISTER that moves an address-of-record's contact to a **different
//!   host from a different source** than the binding's owner, and
//! * a de-registration (`Expires: 0`) from a foreign source,
//!
//! are flagged as `registration-hijack`. Same-source updates (a phone
//! re-registering or moving) stay legitimate.

use vids_efsm::machine::{ActionCtx, MachineDef, PredicateCtx};

use crate::alert::labels;

/// Name of the per-AOR registration machine.
pub const REGISTER_MACHINE: &str = "register";

fn same_owner(ctx: &PredicateCtx<'_>) -> bool {
    let src = ctx.event.str_arg("src_ip").unwrap_or("");
    ctx.locals.str("l_owner_ip") == Some(src)
}

fn is_deregister(ctx: &PredicateCtx<'_>) -> bool {
    ctx.event.uint_arg("expires") == Some(0)
}

fn store_binding(ctx: &mut ActionCtx<'_>) {
    let src = ctx.event.str_arg("src_ip").unwrap_or("").to_owned();
    let contact = ctx.event.str_arg("contact_ip").unwrap_or("").to_owned();
    ctx.locals.set("l_owner_ip", src);
    ctx.locals.set("l_contact_ip", contact);
}

/// Builds the per-AOR registration machine.
pub fn registration_machine() -> MachineDef {
    let mut def = MachineDef::new(REGISTER_MACHINE);
    let init = def.add_state("UNBOUND");
    let bound = def.add_state("BOUND");
    let hijack = def.add_state("REGISTRATION_HIJACK_DETECTED");
    def.mark_final(init);
    def.mark_attack(hijack, labels::REGISTRATION_HIJACK);

    // First registration binds the AOR and records its owner.
    def.add_transition(init, "SIP.REGISTER", bound)
        .predicate(|ctx| !is_deregister(ctx))
        .action(store_binding)
        .label("AOR bound");
    // De-register while unbound: harmless no-op.
    def.add_transition(init, "SIP.REGISTER", init)
        .predicate(is_deregister)
        .label("de-register while unbound");

    // Refresh or legitimate move: same source may do anything.
    def.add_transition(bound, "SIP.REGISTER", bound)
        .predicate(|ctx| same_owner(ctx) && !is_deregister(ctx))
        .action(store_binding)
        .label("binding refreshed by owner");
    def.add_transition(bound, "SIP.REGISTER", init)
        .predicate(|ctx| same_owner(ctx) && is_deregister(ctx))
        .action(|ctx| {
            ctx.locals.remove("l_owner_ip");
            ctx.locals.remove("l_contact_ip");
        })
        .label("owner de-registered");

    // Foreign source rebinding or unbinding the AOR: the hijack.
    def.add_transition(bound, "SIP.REGISTER", hijack)
        .predicate(|ctx| !same_owner(ctx))
        .label("binding changed by foreign source");

    def.add_transition(hijack, "*", hijack);

    // Predicates partition on (same_owner, is_deregister); verified by the
    // busy-call determinism test and the debug-build exhaustive scan.
    def.declare_deterministic();
    def.build()
        .expect("registration machine definition is valid")
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use vids_efsm::network::Network;
    use vids_efsm::Event;

    fn register(src: &str, contact: &str, expires: u64) -> Event {
        Event::data("SIP.REGISTER")
            .with_str("src_ip", src)
            .with_str("contact_ip", contact)
            .with_uint("expires", expires)
    }

    fn net() -> (Network, vids_efsm::network::MachineId) {
        let mut n = Network::new();
        let id = n.add_machine(Arc::new(registration_machine()));
        (n, id)
    }

    #[test]
    fn bind_refresh_unbind_is_clean() {
        let (mut net, id) = net();
        assert!(!net
            .deliver(id, register("10.0.5.1", "10.0.5.1", 3600), 0)
            .is_suspicious());
        assert!(!net
            .deliver(id, register("10.0.5.1", "10.0.5.1", 3600), 10)
            .is_suspicious());
        assert!(!net
            .deliver(id, register("10.0.5.1", "10.0.5.1", 0), 20)
            .is_suspicious());
        assert!(net.all_final(), "unbound is final");
    }

    #[test]
    fn owner_may_move_contact() {
        let (mut net, id) = net();
        net.deliver(id, register("10.0.5.1", "10.0.5.1", 3600), 0);
        let out = net.deliver(id, register("10.0.5.1", "10.0.9.9", 3600), 10);
        assert!(!out.is_suspicious(), "same source, new contact: roaming");
    }

    #[test]
    fn foreign_rebind_is_hijack() {
        let (mut net, id) = net();
        net.deliver(id, register("10.0.5.1", "10.0.5.1", 3600), 0);
        let out = net.deliver(id, register("10.0.66.6", "10.0.66.6", 3600), 10);
        assert_eq!(out.alerts.len(), 1);
        assert_eq!(out.alerts[0].label, labels::REGISTRATION_HIJACK);
    }

    #[test]
    fn foreign_unregister_is_hijack() {
        // The classic unregister attack: wipe the victim's binding.
        let (mut net, id) = net();
        net.deliver(id, register("10.0.5.1", "10.0.5.1", 3600), 0);
        let out = net.deliver(id, register("10.0.66.6", "10.0.5.1", 0), 10);
        assert_eq!(out.alerts[0].label, labels::REGISTRATION_HIJACK);
    }

    #[test]
    fn deregister_before_bind_is_harmless() {
        let (mut net, id) = net();
        let out = net.deliver(id, register("10.0.5.1", "10.0.5.1", 0), 0);
        assert!(!out.is_suspicious());
        assert!(net.all_final());
    }
}
