//! The Call State Fact Base (Fig. 3).
//!
//! "The vids component, Call State Fact Base, stores the control state and
//! its state variables and keeps track of the progress of state machines
//! for each ongoing call." (§5) One communicating-EFSM network (SIP + RTP
//! machine) exists per monitored call; per-destination flood machines live
//! beside them. Calls whose machines all reached final states are evicted
//! after a grace period (§7.3), keeping memory proportional to *ongoing*
//! calls only.

use std::collections::{BTreeMap, HashMap};
use std::sync::Arc;

use vids_efsm::machine::MachineDef;
use vids_efsm::network::Network;
use vids_efsm::{Sym, SymKey};

use crate::config::Config;
use crate::machines::flood::{invite_flood_machine, response_flood_machine};
use crate::machines::register::registration_machine;
use crate::machines::rtp::rtp_session_machine;
use crate::machines::sip::sip_call_machine;

/// Width of one expiry-wheel bucket. Matches the engine's sweep interval:
/// a sweep pops every bucket at or before `now`, so a finer wheel would
/// only split work the sweep drains together anyway.
const WHEEL_BUCKET_MS: u64 = 100;

/// Sentinel bucket for "not indexed in the wheel".
const NO_BUCKET: u64 = u64::MAX;

/// One monitored call: its EFSM network plus bookkeeping.
pub struct CallRecord {
    /// The communicating SIP+RTP machine network.
    pub network: Network,
    /// When monitoring of this call began (ms).
    pub created_ms: u64,
    /// Set once every machine reached a final state, for delayed eviction.
    pub final_since_ms: Option<u64>,
    /// The expiry-wheel bucket this call is currently filed under
    /// ([`NO_BUCKET`] when the call has no pending wake deadline). Entries
    /// in other buckets are stale and skipped when popped.
    wheel_bucket: u64,
}

/// Aggregate fact-base statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FactBaseStats {
    /// Calls instantiated over the run.
    pub calls_created: u64,
    /// Calls evicted after reaching final states.
    pub calls_evicted: u64,
    /// High-water mark of concurrently monitored calls.
    pub peak_concurrent: usize,
}

/// The fact base: per-call networks, the media index, and per-destination
/// flood machines.
pub struct FactBase {
    config: Config,
    sip_def: Arc<MachineDef>,
    rtp_def: Arc<MachineDef>,
    invite_flood_def: Arc<MachineDef>,
    response_flood_def: Arc<MachineDef>,
    registration_def: Arc<MachineDef>,
    calls: HashMap<Sym, CallRecord>,
    /// `(media ip, media port) -> call id`, rebuilt from the call-global
    /// variables the SIP machine publishes. Interned keys: probing on the
    /// RTP hot path is a `u32` hash, never a string allocation.
    media_index: HashMap<(Sym, u64), Sym>,
    invite_flood: HashMap<u32, Network>,
    response_flood: HashMap<u32, Network>,
    registrations: HashMap<Sym, Network>,
    /// Coarse time-wheel over call wake deadlines (armed timers, pending
    /// eviction stamps, grace-period expiries): bucket → call ids filed
    /// there. A sweep visits only the calls whose bucket fell due, so a
    /// sweep over N idle calls costs O(expiring), not O(N log N).
    wheel: BTreeMap<u64, Vec<Sym>>,
    stats: FactBaseStats,
}

impl FactBase {
    /// Creates a fact base with the machine definitions built once and
    /// shared by every call (this sharing is what keeps per-call memory at
    /// the tens-of-bytes level of §7.3).
    pub fn new(config: Config) -> Self {
        FactBase {
            sip_def: Arc::new(sip_call_machine(&config)),
            rtp_def: Arc::new(rtp_session_machine(&config)),
            invite_flood_def: Arc::new(invite_flood_machine(&config)),
            response_flood_def: Arc::new(response_flood_machine(&config)),
            registration_def: Arc::new(registration_machine()),
            config,
            calls: HashMap::new(),
            media_index: HashMap::new(),
            invite_flood: HashMap::new(),
            response_flood: HashMap::new(),
            registrations: HashMap::new(),
            wheel: BTreeMap::new(),
            stats: FactBaseStats::default(),
        }
    }

    /// The number of currently monitored calls.
    pub fn call_count(&self) -> usize {
        self.calls.len()
    }

    /// Fact-base statistics.
    pub fn stats(&self) -> FactBaseStats {
        self.stats
    }

    /// Access a monitored call. Accepts a `Sym` or a raw `&str`; a string
    /// nobody ever interned cannot name a monitored call, so the miss path
    /// neither allocates nor grows the interner.
    pub fn call_mut(&mut self, call_id: impl SymKey) -> Option<&mut CallRecord> {
        self.calls.get_mut(&call_id.find_sym()?)
    }

    /// Shared access (introspection in tests and examples).
    pub fn call(&self, call_id: impl SymKey) -> Option<&CallRecord> {
        self.calls.get(&call_id.find_sym()?)
    }

    /// Call-IDs currently monitored (unordered).
    pub fn call_ids(&self) -> impl Iterator<Item = Sym> + '_ {
        self.calls.keys().copied()
    }

    /// Instantiates the per-call machine network for a new call.
    pub fn create_call(&mut self, call_id: impl SymKey, now_ms: u64) -> &mut CallRecord {
        let call_id = call_id.to_sym();
        self.stats.calls_created += 1;
        let mut network = Network::new();
        network.add_machine(Arc::clone(&self.sip_def));
        network.add_machine(Arc::clone(&self.rtp_def));
        if !self.config.cross_protocol_sync {
            network.disable_sync();
        }
        let record = CallRecord {
            network,
            created_ms: now_ms,
            final_since_ms: None,
            wheel_bucket: NO_BUCKET,
        };
        self.calls.entry(call_id).or_insert(record);
        self.stats.peak_concurrent = self.stats.peak_concurrent.max(self.calls.len());
        // File the call due-now: the next sweep visits it once, observes its
        // real timers/finality, and re-files it under the proper bucket.
        // Callers that drive the network directly (tests, examples) stay
        // sweepable without an explicit reindex after every delivery.
        let bucket = now_ms / WHEEL_BUCKET_MS;
        let record = self.calls.get_mut(&call_id).unwrap();
        if record.wheel_bucket != bucket {
            record.wheel_bucket = bucket;
            self.wheel.entry(bucket).or_default().push(call_id);
        }
        self.calls.get_mut(&call_id).unwrap()
    }

    /// Re-reads a call's global variables and refreshes the media index so
    /// RTP packets can be grouped with the call. Call after every SIP event
    /// delivered to the call.
    pub fn refresh_media_index(&mut self, call_id: Sym) {
        let Some(record) = self.calls.get(&call_id) else {
            return;
        };
        let globals = record.network.globals();
        for (ip_var, port_var) in [
            ("g_caller_media_ip", "g_caller_media_port"),
            ("g_callee_media_ip", "g_callee_media_port"),
        ] {
            if let (Some(ip), Some(port)) = (globals.sym(ip_var), globals.uint(port_var)) {
                if ip != vids_efsm::sym::EMPTY && port != 0 {
                    self.media_index.insert((ip, port), call_id);
                }
            }
        }
    }

    /// Looks up the call owning a media endpoint.
    pub fn media_lookup(&self, ip: impl SymKey, port: u64) -> Option<Sym> {
        self.media_index.get(&(ip.find_sym()?, port)).copied()
    }

    /// The per-destination INVITE-flood machine (Fig. 4), created on first
    /// use.
    pub fn invite_flood_mut(&mut self, dst_ip: u32) -> &mut Network {
        let def = Arc::clone(&self.invite_flood_def);
        self.invite_flood.entry(dst_ip).or_insert_with(|| {
            let mut n = Network::new();
            n.add_machine(def);
            n
        })
    }

    /// The per-destination response-flood machine (DRDoS), created on first
    /// use.
    pub fn response_flood_mut(&mut self, dst_ip: u32) -> &mut Network {
        let def = Arc::clone(&self.response_flood_def);
        self.response_flood.entry(dst_ip).or_insert_with(|| {
            let mut n = Network::new();
            n.add_machine(def);
            n
        })
    }

    /// The per-AOR registration machine (extension), created on first use.
    pub fn registration_mut(&mut self, aor: impl SymKey) -> &mut Network {
        let def = Arc::clone(&self.registration_def);
        self.registrations.entry(aor.to_sym()).or_insert_with(|| {
            let mut n = Network::new();
            n.add_machine(def);
            n
        })
    }

    /// Re-files a call under its next wake deadline: the earliest armed
    /// EFSM timer, or the finality bookkeeping the sweep must perform
    /// (stamping a freshly-final call, clearing a stale stamp, or the
    /// grace-period expiry of a stamped call). A call with no deadline
    /// leaves the wheel entirely — an idle mid-call network costs the
    /// sweep nothing until an event or timer changes that.
    ///
    /// Call after any event delivery that may have changed the network's
    /// timers or finality. Old wheel entries are not removed eagerly;
    /// [`FactBase::due_calls`] skips entries whose bucket no longer
    /// matches the record.
    pub(crate) fn reindex_call(&mut self, call_id: Sym) {
        let delay = self.config.eviction_delay.as_millis();
        let Some(record) = self.calls.get_mut(&call_id) else {
            return;
        };
        let timer = record.network.next_timer_deadline();
        let finality = if record.network.all_final() {
            Some(match record.final_since_ms {
                // Not yet stamped: the next sweep must see the call to
                // start its grace period.
                None => 0,
                Some(since) => since.saturating_add(delay),
            })
        } else if record.final_since_ms.is_some() {
            // Stale stamp (the network reopened): clear it promptly.
            Some(0)
        } else {
            None
        };
        let deadline = match (timer, finality) {
            (Some(t), Some(f)) => Some(t.min(f)),
            (Some(t), None) => Some(t),
            (None, f) => f,
        };
        let bucket = match deadline {
            Some(d) => d / WHEEL_BUCKET_MS,
            None => NO_BUCKET,
        };
        if bucket == record.wheel_bucket {
            return;
        }
        record.wheel_bucket = bucket;
        if bucket != NO_BUCKET {
            self.wheel.entry(bucket).or_default().push(call_id);
        }
    }

    /// Pops every wheel bucket at or before `now_ms` and returns the live
    /// call ids filed there, text-ordered. The returned calls are
    /// unfiled: the caller must follow up with [`FactBase::sweep_due`]
    /// (which re-files survivors) or re-filing is lost.
    pub(crate) fn due_calls(&mut self, now_ms: u64) -> Vec<Sym> {
        let mut due = Vec::new();
        let horizon = now_ms / WHEEL_BUCKET_MS;
        while let Some((&bucket, _)) = self.wheel.first_key_value() {
            if bucket > horizon {
                break;
            }
            let ids = self.wheel.remove(&bucket).unwrap_or_default();
            for id in ids {
                if let Some(record) = self.calls.get_mut(&id) {
                    // Entries orphaned by reindexing are stale; the live
                    // filing is the one the record points back at. This
                    // also deduplicates a call re-filed into the same
                    // bucket twice.
                    if record.wheel_bucket == bucket {
                        record.wheel_bucket = NO_BUCKET;
                        due.push(id);
                    }
                }
            }
        }
        // Text order, not slot order: interner ids depend on arrival
        // interleaving, so only the string is deterministic across runs.
        due.sort_unstable_by_key(|id| id.as_str());
        due
    }

    /// Marks the given (due) calls' finality and evicts those final for
    /// longer than the configured grace period; survivors are re-filed in
    /// the wheel. Returns the evicted call ids in the order given (the
    /// text order of [`FactBase::due_calls`]).
    pub(crate) fn sweep_due(&mut self, due: &[Sym], now_ms: u64) -> Vec<Sym> {
        let delay = self.config.eviction_delay.as_millis();
        let mut evicted = Vec::new();
        for &id in due {
            let Some(record) = self.calls.get_mut(&id) else {
                continue;
            };
            if record.network.all_final() {
                let since = *record.final_since_ms.get_or_insert(now_ms);
                if now_ms.saturating_sub(since) >= delay {
                    evicted.push(id);
                    continue;
                }
            } else {
                record.final_since_ms = None;
            }
            // Still monitored: re-file under the next wake deadline.
            self.reindex_call(id);
        }
        for id in &evicted {
            self.calls.remove(id);
            self.media_index.retain(|_, call| call != id);
            self.stats.calls_evicted += 1;
        }
        evicted
    }

    /// Marks finished calls and evicts those final for longer than the
    /// configured grace period. Returns the evicted call ids.
    ///
    /// Only calls whose wake deadline fell due are visited (see the
    /// `wheel` field): the cost is O(expiring), not O(live calls).
    pub fn sweep(&mut self, now_ms: u64) -> Vec<Sym> {
        let due = self.due_calls(now_ms);
        self.sweep_due(&due, now_ms)
    }

    /// Total fact-base memory attributable to per-call state (E5): the
    /// configurations `(s, v̄)`, globals, queues and timers of every call
    /// network plus the media-index entries. Machine definitions are
    /// shared and excluded, exactly as the paper argues in §7.3.
    pub fn memory_bytes(&self) -> usize {
        let calls: usize = self
            .calls
            .iter()
            .map(|(id, r)| id.as_str().len() + r.network.memory_bytes() + 32)
            .sum();
        let index: usize = self
            .media_index
            .iter()
            .map(|((ip, _), call)| ip.as_str().len() + 8 + call.as_str().len())
            .sum();
        let floods: usize = self
            .invite_flood
            .values()
            .chain(self.response_flood.values())
            .map(|n| n.memory_bytes() + 8)
            .sum();
        let registrations: usize = self
            .registrations
            .iter()
            .map(|(aor, n)| aor.as_str().len() + n.memory_bytes())
            .sum();
        calls + index + floods + registrations
    }
}

#[cfg(test)]
#[allow(clippy::field_reassign_with_default)]
mod tests {
    use super::*;
    use vids_efsm::Event;

    fn invite_event() -> Event {
        Event::data("SIP.INVITE")
            .with_str("call_id", "c1")
            .with_str("from_tag", "ft")
            .with_str("to_tag", "")
            .with_str("src_ip", "10.1.0.10")
            .with_str("dst_ip", "10.2.0.10")
            .with_str("cseq_method", "INVITE")
            .with_bool("has_sdp", true)
            .with_str("sdp_ip", "10.1.0.10")
            .with_uint("sdp_port", 20_000)
            .with_uint("sdp_pt", 18)
    }

    #[test]
    fn create_and_index_call() {
        let mut fb = FactBase::new(Config::default());
        {
            let record = fb.create_call("c1", 0);
            let sip = record.network.machine_by_name("sip").unwrap();
            record.network.deliver(sip, invite_event(), 0);
        }
        fb.refresh_media_index(Sym::intern("c1"));
        assert_eq!(fb.call_count(), 1);
        assert_eq!(fb.media_lookup("10.1.0.10", 20_000).unwrap(), "c1");
        assert_eq!(fb.media_lookup("10.9.9.9", 20_000), None);
        assert_eq!(fb.stats().calls_created, 1);
        assert_eq!(fb.stats().peak_concurrent, 1);
    }

    #[test]
    fn sweep_evicts_only_after_grace_period() {
        let mut cfg = Config::default();
        cfg.eviction_delay = vids_netsim::time::SimTime::from_millis(1_000);
        let mut fb = FactBase::new(cfg);
        {
            let record = fb.create_call("c1", 0);
            let sip = record.network.machine_by_name("sip").unwrap();
            // Drive to TERMINATED quickly: INVITE then failure then ACK.
            record.network.deliver(sip, invite_event(), 0);
            record.network.deliver(
                sip,
                Event::data("SIP.failure")
                    .with_str("cseq_method", "INVITE")
                    .with_uint("status", 486),
                1,
            );
            record.network.deliver(sip, Event::data("SIP.ACK"), 2);
        }
        // The RTP machine is not final (still in RTP_OPEN after δ.open):
        // the call must NOT be evicted.
        assert!(fb.sweep(10_000).is_empty());
        assert_eq!(fb.call_count(), 1);
    }

    #[test]
    fn fully_final_call_is_evicted() {
        let mut cfg = Config::default();
        cfg.eviction_delay = vids_netsim::time::SimTime::from_millis(100);
        let mut fb = FactBase::new(cfg);
        {
            let record = fb.create_call("c1", 0);
            let sip = record.network.machine_by_name("sip").unwrap();
            record.network.deliver(sip, invite_event(), 0);
            record.network.deliver(
                sip,
                Event::data("SIP.2xx")
                    .with_str("cseq_method", "INVITE")
                    .with_str("to_tag", "tt")
                    .with_bool("has_sdp", true)
                    .with_str("sdp_ip", "10.2.0.10")
                    .with_uint("sdp_port", 30_000),
                1,
            );
            record.network.deliver(
                sip,
                Event::data("SIP.BYE")
                    .with_str("from_tag", "ft")
                    .with_str("to_tag", "tt")
                    .with_str("cseq_method", "BYE"),
                2,
            );
            record.network.deliver(
                sip,
                Event::data("SIP.2xx").with_str("cseq_method", "BYE"),
                3,
            );
            // Let the RTP machine's drain timer T expire.
            record.network.advance_time(5_000);
            assert!(record.network.all_final());
        }
        assert!(fb.sweep(5_000).is_empty(), "grace period not yet over");
        let evicted = fb.sweep(5_200);
        assert_eq!(evicted, vec![Sym::intern("c1")]);
        assert_eq!(fb.call_count(), 0);
        assert_eq!(fb.stats().calls_evicted, 1);
        assert_eq!(fb.media_lookup("10.1.0.10", 20_000), None);
    }

    #[test]
    fn memory_grows_linearly_with_calls() {
        let mut fb = FactBase::new(Config::default());
        let mut sizes = Vec::new();
        for i in 0..20 {
            let id = format!("call-{i}");
            let record = fb.create_call(&id, 0);
            let sip = record.network.machine_by_name("sip").unwrap();
            let mut ev = invite_event();
            ev.args.set("call_id", id.clone());
            record.network.deliver(sip, ev, 0);
            fb.refresh_media_index(Sym::intern(&id));
            sizes.push(fb.memory_bytes());
        }
        // Roughly linear: the 20th increment is close to the 2nd.
        let d1 = sizes[2] - sizes[1];
        let d19 = sizes[19] - sizes[18];
        assert!(d19 <= d1 * 2, "increments {d1} vs {d19}");
        // Paper §7.3 ballpark: a few hundred bytes per call.
        let per_call = sizes[19] / 20;
        assert!(
            (100..4_000).contains(&per_call),
            "per-call memory {per_call} B"
        );
    }

    #[test]
    fn flood_machines_are_per_destination() {
        let mut fb = FactBase::new(Config::default());
        let a = fb.invite_flood_mut(1) as *const Network;
        let b = fb.invite_flood_mut(2) as *const Network;
        assert_ne!(a, b);
        // Re-fetch returns the same machine.
        let a2 = fb.invite_flood_mut(1) as *const Network;
        assert_eq!(a, a2);
    }
}
