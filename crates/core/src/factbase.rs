//! The Call State Fact Base (Fig. 3).
//!
//! "The vids component, Call State Fact Base, stores the control state and
//! its state variables and keeps track of the progress of state machines
//! for each ongoing call." (§5) One communicating-EFSM network (SIP + RTP
//! machine) exists per monitored call; per-destination flood machines live
//! beside them. Calls whose machines all reached final states are evicted
//! after a grace period (§7.3), keeping memory proportional to *ongoing*
//! calls only.

use std::collections::BTreeMap;
use std::sync::Arc;

use vids_efsm::machine::MachineDef;
use vids_efsm::network::{MachineId, Network};
use vids_efsm::{sym, Sym, SymKey};
use vids_scan::fxhash::FxHashMap;

use crate::config::Config;
use crate::machines::flood::{invite_flood_machine, response_flood_machine};
use crate::machines::register::registration_machine;
use crate::machines::rtp::rtp_session_machine;
use crate::machines::sip::sip_call_machine;

/// Width of one expiry-wheel bucket. Matches the engine's sweep interval:
/// a sweep pops every bucket at or before `now`, so a finer wheel would
/// only split work the sweep drains together anyway.
const WHEEL_BUCKET_MS: u64 = 100;

/// Sentinel bucket for "not indexed in the wheel".
const NO_BUCKET: u64 = u64::MAX;

/// Dense slab index naming one monitored call. The engine's hot paths
/// resolve a Call-ID (or media coordinates) to a `CallIdx` once and then
/// touch the call's slot by direct indexing — no further hashing. An index
/// is valid until the call it names is evicted; freed indices are reused
/// for later calls, which is safe because every side table that stores a
/// `CallIdx` (media index, expiry wheel) is scrubbed or stamp-checked at
/// eviction/pop time.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub(crate) struct CallIdx(u32);

impl CallIdx {
    #[inline]
    fn i(self) -> usize {
        self.0 as usize
    }
}

/// One occupied slab slot: the call's id plus its record.
struct Slot {
    id: Sym,
    record: CallRecord,
}

/// One monitored call: its EFSM network plus bookkeeping.
pub struct CallRecord {
    /// The communicating SIP+RTP machine network.
    pub network: Network,
    /// When monitoring of this call began (ms).
    pub created_ms: u64,
    /// Set once every machine reached a final state, for delayed eviction.
    pub final_since_ms: Option<u64>,
    /// The expiry-wheel bucket this call is currently filed under
    /// ([`NO_BUCKET`] when the call has no pending wake deadline). Entries
    /// in other buckets are stale and skipped when popped.
    wheel_bucket: u64,
    /// The network's earliest armed timer deadline (`u64::MAX` when none),
    /// cached by [`FactBase::reindex_idx`] so per-packet ingest can skip
    /// `advance_time` without scanning the timer maps. Engine paths that
    /// deliver events reindex afterwards, keeping this coherent; code that
    /// drives `record.network` directly must not rely on it.
    pub(crate) next_timer_ms: u64,
    /// The media-index keys this call has published (at most one per
    /// endpoint in practice). Eviction removes exactly these entries —
    /// after checking they still point at this slot — instead of scanning
    /// the whole index.
    media_keys: Vec<(Sym, u64)>,
}

/// Aggregate fact-base statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FactBaseStats {
    /// Calls instantiated over the run.
    pub calls_created: u64,
    /// Calls evicted after reaching final states.
    pub calls_evicted: u64,
    /// High-water mark of concurrently monitored calls.
    pub peak_concurrent: usize,
}

/// The fact base: per-call networks, the media index, and per-destination
/// flood machines.
pub struct FactBase {
    config: Config,
    sip_def: Arc<MachineDef>,
    rtp_def: Arc<MachineDef>,
    invite_flood_def: Arc<MachineDef>,
    response_flood_def: Arc<MachineDef>,
    registration_def: Arc<MachineDef>,
    /// Call-ID → slab index. Fx-hashed: the keys are interned symbols (a
    /// `u32` each), not attacker-chosen strings — HashDoS pressure lands on
    /// the interner's own SipHash table, never here.
    calls: FxHashMap<Sym, CallIdx>,
    /// The call slots themselves. Dense and index-stable: a call keeps its
    /// slot for its whole life, so the hot paths re-touch the same cache
    /// lines instead of re-probing a hash table per packet.
    slab: Vec<Option<Slot>>,
    /// Vacated slab indices awaiting reuse.
    free: Vec<CallIdx>,
    /// `(media ip, media port) -> call slot`, rebuilt from the call-global
    /// variables the SIP machine publishes. Interned keys: probing on the
    /// RTP hot path is a couple of word hashes, never a string allocation.
    media_index: FxHashMap<(Sym, u64), CallIdx>,
    invite_flood: FxHashMap<u32, Network>,
    response_flood: FxHashMap<u32, Network>,
    registrations: FxHashMap<Sym, Network>,
    /// Coarse time-wheel over call wake deadlines (armed timers, pending
    /// eviction stamps, grace-period expiries): bucket → call slots filed
    /// there. A sweep visits only the calls whose bucket fell due, so a
    /// sweep over N idle calls costs O(expiring), not O(N log N).
    wheel: BTreeMap<u64, Vec<CallIdx>>,
    /// The SIP machine's id inside every per-call network (machine ids are
    /// positional and every call network is built the same way, so one
    /// capture at construction serves them all).
    sip_machine: MachineId,
    /// The RTP machine's id inside every per-call network.
    rtp_machine: MachineId,
    /// The sole machine's id inside every single-machine network (flood,
    /// response-flood, registration).
    solo_machine: MachineId,
    stats: FactBaseStats,
}

impl FactBase {
    /// Creates a fact base with the machine definitions built once and
    /// shared by every call (this sharing is what keeps per-call memory at
    /// the tens-of-bytes level of §7.3).
    pub fn new(config: Config) -> Self {
        let sip_def = Arc::new(sip_call_machine(&config));
        let rtp_def = Arc::new(rtp_session_machine(&config));
        let invite_flood_def = Arc::new(invite_flood_machine(&config));
        // Machine ids are positional: capture them from throwaway networks
        // built exactly like the real ones, so the engine never resolves a
        // machine by name on the per-packet path.
        let mut proto = Network::new();
        let sip_machine = proto.add_machine(Arc::clone(&sip_def));
        let rtp_machine = proto.add_machine(Arc::clone(&rtp_def));
        let mut solo_proto = Network::new();
        let solo_machine = solo_proto.add_machine(Arc::clone(&invite_flood_def));
        FactBase {
            sip_def,
            rtp_def,
            invite_flood_def,
            response_flood_def: Arc::new(response_flood_machine(&config)),
            registration_def: Arc::new(registration_machine()),
            config,
            calls: FxHashMap::default(),
            slab: Vec::new(),
            free: Vec::new(),
            media_index: FxHashMap::default(),
            invite_flood: FxHashMap::default(),
            response_flood: FxHashMap::default(),
            registrations: FxHashMap::default(),
            wheel: BTreeMap::new(),
            sip_machine,
            rtp_machine,
            solo_machine,
            stats: FactBaseStats::default(),
        }
    }

    /// The SIP machine's id in every per-call network.
    pub(crate) fn sip_machine(&self) -> MachineId {
        self.sip_machine
    }

    /// The RTP machine's id in every per-call network.
    pub(crate) fn rtp_machine(&self) -> MachineId {
        self.rtp_machine
    }

    /// The sole machine's id in every flood / registration network.
    pub(crate) fn solo_machine(&self) -> MachineId {
        self.solo_machine
    }

    /// The number of currently monitored calls.
    pub fn call_count(&self) -> usize {
        self.calls.len()
    }

    /// Fact-base statistics.
    pub fn stats(&self) -> FactBaseStats {
        self.stats
    }

    /// The slab index of a monitored call, for the engine's idx-based hot
    /// path.
    #[inline]
    pub(crate) fn call_idx(&self, call_id: Sym) -> Option<CallIdx> {
        self.calls.get(&call_id).copied()
    }

    /// The Call-ID filed in a live slot.
    #[inline]
    pub(crate) fn id_of(&self, idx: CallIdx) -> Sym {
        self.slab[idx.i()].as_ref().expect("live call slot").id
    }

    /// Direct record access by slab index.
    #[inline]
    pub(crate) fn record_mut(&mut self, idx: CallIdx) -> &mut CallRecord {
        &mut self.slab[idx.i()].as_mut().expect("live call slot").record
    }

    /// Access a monitored call. Accepts a `Sym` or a raw `&str`; a string
    /// nobody ever interned cannot name a monitored call, so the miss path
    /// neither allocates nor grows the interner.
    pub fn call_mut(&mut self, call_id: impl SymKey) -> Option<&mut CallRecord> {
        let idx = self.call_idx(call_id.find_sym()?)?;
        Some(self.record_mut(idx))
    }

    /// Shared access (introspection in tests and examples).
    pub fn call(&self, call_id: impl SymKey) -> Option<&CallRecord> {
        let idx = self.call_idx(call_id.find_sym()?)?;
        Some(&self.slab[idx.i()].as_ref()?.record)
    }

    /// Call-IDs currently monitored (unordered).
    pub fn call_ids(&self) -> impl Iterator<Item = Sym> + '_ {
        self.calls.keys().copied()
    }

    /// Instantiates the per-call machine network for a new call, returning
    /// its slab index.
    pub(crate) fn create_call_idx(&mut self, call_id: impl SymKey, now_ms: u64) -> CallIdx {
        let call_id = call_id.to_sym();
        self.stats.calls_created += 1;
        let idx = match self.calls.get(&call_id) {
            Some(&idx) => idx,
            None => {
                let mut network = Network::new();
                network.add_machine(Arc::clone(&self.sip_def));
                network.add_machine(Arc::clone(&self.rtp_def));
                if !self.config.cross_protocol_sync {
                    network.disable_sync();
                }
                let slot = Slot {
                    id: call_id,
                    record: CallRecord {
                        network,
                        created_ms: now_ms,
                        final_since_ms: None,
                        wheel_bucket: NO_BUCKET,
                        next_timer_ms: u64::MAX,
                        media_keys: Vec::new(),
                    },
                };
                let idx = match self.free.pop() {
                    Some(idx) => {
                        self.slab[idx.i()] = Some(slot);
                        idx
                    }
                    None => {
                        self.slab.push(Some(slot));
                        CallIdx((self.slab.len() - 1) as u32)
                    }
                };
                self.calls.insert(call_id, idx);
                idx
            }
        };
        self.stats.peak_concurrent = self.stats.peak_concurrent.max(self.calls.len());
        // File the call due-now: the next sweep visits it once, observes its
        // real timers/finality, and re-files it under the proper bucket.
        // Callers that drive the network directly (tests, examples) stay
        // sweepable without an explicit reindex after every delivery.
        let bucket = now_ms / WHEEL_BUCKET_MS;
        let record = self.record_mut(idx);
        if record.wheel_bucket != bucket {
            record.wheel_bucket = bucket;
            self.wheel.entry(bucket).or_default().push(idx);
        }
        idx
    }

    /// Instantiates the per-call machine network for a new call.
    pub fn create_call(&mut self, call_id: impl SymKey, now_ms: u64) -> &mut CallRecord {
        let idx = self.create_call_idx(call_id, now_ms);
        self.record_mut(idx)
    }

    /// Re-reads a call's global variables and refreshes the media index so
    /// RTP packets can be grouped with the call. Call after every SIP event
    /// delivered to the call.
    pub fn refresh_media_index(&mut self, call_id: Sym) {
        if let Some(idx) = self.call_idx(call_id) {
            self.refresh_media_index_idx(idx);
        }
    }

    /// [`FactBase::refresh_media_index`] by slab index. The global-variable
    /// reads are keyed by pre-seeded symbols, so the warm no-change case is
    /// four inline `VarMap` probes and two equality checks.
    pub(crate) fn refresh_media_index_idx(&mut self, idx: CallIdx) {
        let slot = self.slab[idx.i()].as_mut().expect("live call slot");
        let globals = slot.record.network.globals();
        let published = [
            (
                globals.sym(sym::G_CALLER_MEDIA_IP),
                globals.uint(sym::G_CALLER_MEDIA_PORT),
            ),
            (
                globals.sym(sym::G_CALLEE_MEDIA_IP),
                globals.uint(sym::G_CALLEE_MEDIA_PORT),
            ),
        ];
        for (ip, port) in published {
            if let (Some(ip), Some(port)) = (ip, port) {
                if ip != sym::EMPTY && port != 0 {
                    let key = (ip, port);
                    if !slot.record.media_keys.contains(&key) {
                        slot.record.media_keys.push(key);
                    }
                    self.media_index.insert(key, idx);
                }
            }
        }
    }

    /// Looks up the call owning a media endpoint.
    pub fn media_lookup(&self, ip: impl SymKey, port: u64) -> Option<Sym> {
        Some(self.id_of(self.media_lookup_idx(ip.find_sym()?, port)?))
    }

    /// [`FactBase::media_lookup`] returning the slab index, for the RTP hot
    /// path.
    #[inline]
    pub(crate) fn media_lookup_idx(&self, ip: Sym, port: u64) -> Option<CallIdx> {
        self.media_index.get(&(ip, port)).copied()
    }

    /// The per-destination INVITE-flood machine (Fig. 4), created on first
    /// use.
    pub fn invite_flood_mut(&mut self, dst_ip: u32) -> &mut Network {
        let def = Arc::clone(&self.invite_flood_def);
        self.invite_flood.entry(dst_ip).or_insert_with(|| {
            let mut n = Network::new();
            n.add_machine(def);
            n
        })
    }

    /// The per-destination response-flood machine (DRDoS), created on first
    /// use.
    pub fn response_flood_mut(&mut self, dst_ip: u32) -> &mut Network {
        let def = Arc::clone(&self.response_flood_def);
        self.response_flood.entry(dst_ip).or_insert_with(|| {
            let mut n = Network::new();
            n.add_machine(def);
            n
        })
    }

    /// The per-AOR registration machine (extension), created on first use.
    pub fn registration_mut(&mut self, aor: impl SymKey) -> &mut Network {
        let def = Arc::clone(&self.registration_def);
        self.registrations.entry(aor.to_sym()).or_insert_with(|| {
            let mut n = Network::new();
            n.add_machine(def);
            n
        })
    }

    /// Re-files a call under its next wake deadline: the earliest armed
    /// EFSM timer, or the finality bookkeeping the sweep must perform
    /// (stamping a freshly-final call, clearing a stale stamp, or the
    /// grace-period expiry of a stamped call). A call with no deadline
    /// leaves the wheel entirely — an idle mid-call network costs the
    /// sweep nothing until an event or timer changes that.
    ///
    /// Call after any event delivery that may have changed the network's
    /// timers or finality. Old wheel entries are not removed eagerly;
    /// [`FactBase::due_calls`] skips entries whose bucket no longer
    /// matches the record.
    pub(crate) fn reindex_idx(&mut self, idx: CallIdx) {
        let delay = self.config.eviction_delay.as_millis();
        let record = &mut self.slab[idx.i()].as_mut().expect("live call slot").record;
        let timer = record.network.next_timer_deadline();
        record.next_timer_ms = timer.unwrap_or(u64::MAX);
        let finality = if record.network.all_final() {
            Some(match record.final_since_ms {
                // Not yet stamped: the next sweep must see the call to
                // start its grace period.
                None => 0,
                Some(since) => since.saturating_add(delay),
            })
        } else if record.final_since_ms.is_some() {
            // Stale stamp (the network reopened): clear it promptly.
            Some(0)
        } else {
            None
        };
        let deadline = match (timer, finality) {
            (Some(t), Some(f)) => Some(t.min(f)),
            (Some(t), None) => Some(t),
            (None, f) => f,
        };
        let bucket = match deadline {
            Some(d) => d / WHEEL_BUCKET_MS,
            None => NO_BUCKET,
        };
        if bucket == record.wheel_bucket {
            return;
        }
        record.wheel_bucket = bucket;
        if bucket != NO_BUCKET {
            self.wheel.entry(bucket).or_default().push(idx);
        }
    }

    /// Pops every wheel bucket at or before `now_ms` and returns the live
    /// call slots filed there, in Call-ID text order. The returned calls
    /// are unfiled: the caller must follow up with [`FactBase::sweep_due`]
    /// (which re-files survivors) or re-filing is lost.
    pub(crate) fn due_calls(&mut self, now_ms: u64) -> Vec<CallIdx> {
        let mut due = Vec::new();
        let horizon = now_ms / WHEEL_BUCKET_MS;
        while let Some((&bucket, _)) = self.wheel.first_key_value() {
            if bucket > horizon {
                break;
            }
            let idxs = self.wheel.remove(&bucket).unwrap_or_default();
            for idx in idxs {
                if let Some(slot) = self.slab[idx.i()].as_mut() {
                    // Entries orphaned by reindexing (or left behind by an
                    // evicted call whose slot was reused) are stale; the
                    // live filing is the one the record points back at.
                    // This also deduplicates a call re-filed into the same
                    // bucket twice.
                    if slot.record.wheel_bucket == bucket {
                        slot.record.wheel_bucket = NO_BUCKET;
                        due.push(idx);
                    }
                }
            }
        }
        // Text order, not slot order: slot and interner ids depend on
        // arrival interleaving, so only the string is deterministic across
        // runs.
        due.sort_unstable_by_key(|&idx| self.id_of(idx).as_str());
        due
    }

    /// Marks the given (due) calls' finality and evicts those final for
    /// longer than the configured grace period; survivors are re-filed in
    /// the wheel. Returns the evicted call ids in the order given (the
    /// text order of [`FactBase::due_calls`]).
    pub(crate) fn sweep_due(&mut self, due: &[CallIdx], now_ms: u64) -> Vec<Sym> {
        let delay = self.config.eviction_delay.as_millis();
        let mut expired = Vec::new();
        for &idx in due {
            let Some(slot) = self.slab[idx.i()].as_mut() else {
                continue;
            };
            let record = &mut slot.record;
            if record.network.all_final() {
                let since = *record.final_since_ms.get_or_insert(now_ms);
                if now_ms.saturating_sub(since) >= delay {
                    expired.push(idx);
                    continue;
                }
            } else {
                record.final_since_ms = None;
            }
            // Still monitored: re-file under the next wake deadline.
            self.reindex_idx(idx);
        }
        let mut evicted = Vec::with_capacity(expired.len());
        for idx in expired {
            let slot = self.slab[idx.i()].take().expect("live call slot");
            self.calls.remove(&slot.id);
            for key in &slot.record.media_keys {
                // A later call may have republished the same coordinates;
                // only entries still pointing at this slot are ours to drop.
                if self.media_index.get(key) == Some(&idx) {
                    self.media_index.remove(key);
                }
            }
            self.free.push(idx);
            self.stats.calls_evicted += 1;
            evicted.push(slot.id);
        }
        evicted
    }

    /// Marks finished calls and evicts those final for longer than the
    /// configured grace period. Returns the evicted call ids.
    ///
    /// Only calls whose wake deadline fell due are visited (see the
    /// `wheel` field): the cost is O(expiring), not O(live calls).
    pub fn sweep(&mut self, now_ms: u64) -> Vec<Sym> {
        let due = self.due_calls(now_ms);
        self.sweep_due(&due, now_ms)
    }

    /// Total fact-base memory attributable to per-call state (E5): the
    /// configurations `(s, v̄)`, globals, queues and timers of every call
    /// network plus the media-index entries. Machine definitions are
    /// shared and excluded, exactly as the paper argues in §7.3.
    pub fn memory_bytes(&self) -> usize {
        let calls: usize = self
            .slab
            .iter()
            .flatten()
            .map(|slot| slot.id.as_str().len() + slot.record.network.memory_bytes() + 32)
            .sum();
        let index: usize = self
            .media_index
            .iter()
            .map(|((ip, _), &idx)| ip.as_str().len() + 8 + self.id_of(idx).as_str().len())
            .sum();
        let floods: usize = self
            .invite_flood
            .values()
            .chain(self.response_flood.values())
            .map(|n| n.memory_bytes() + 8)
            .sum();
        let registrations: usize = self
            .registrations
            .iter()
            .map(|(aor, n)| aor.as_str().len() + n.memory_bytes())
            .sum();
        calls + index + floods + registrations
    }
}

#[cfg(test)]
#[allow(clippy::field_reassign_with_default)]
mod tests {
    use super::*;
    use vids_efsm::Event;

    fn invite_event() -> Event {
        Event::data("SIP.INVITE")
            .with_str("call_id", "c1")
            .with_str("from_tag", "ft")
            .with_str("to_tag", "")
            .with_str("src_ip", "10.1.0.10")
            .with_str("dst_ip", "10.2.0.10")
            .with_str("cseq_method", "INVITE")
            .with_bool("has_sdp", true)
            .with_str("sdp_ip", "10.1.0.10")
            .with_uint("sdp_port", 20_000)
            .with_uint("sdp_pt", 18)
    }

    #[test]
    fn create_and_index_call() {
        let mut fb = FactBase::new(Config::default());
        {
            let record = fb.create_call("c1", 0);
            let sip = record.network.machine_by_name("sip").unwrap();
            record.network.deliver(sip, invite_event(), 0);
        }
        fb.refresh_media_index(Sym::intern("c1"));
        assert_eq!(fb.call_count(), 1);
        assert_eq!(fb.media_lookup("10.1.0.10", 20_000).unwrap(), "c1");
        assert_eq!(fb.media_lookup("10.9.9.9", 20_000), None);
        assert_eq!(fb.stats().calls_created, 1);
        assert_eq!(fb.stats().peak_concurrent, 1);
    }

    #[test]
    fn sweep_evicts_only_after_grace_period() {
        let mut cfg = Config::default();
        cfg.eviction_delay = vids_netsim::time::SimTime::from_millis(1_000);
        let mut fb = FactBase::new(cfg);
        {
            let record = fb.create_call("c1", 0);
            let sip = record.network.machine_by_name("sip").unwrap();
            // Drive to TERMINATED quickly: INVITE then failure then ACK.
            record.network.deliver(sip, invite_event(), 0);
            record.network.deliver(
                sip,
                Event::data("SIP.failure")
                    .with_str("cseq_method", "INVITE")
                    .with_uint("status", 486),
                1,
            );
            record.network.deliver(sip, Event::data("SIP.ACK"), 2);
        }
        // The RTP machine is not final (still in RTP_OPEN after δ.open):
        // the call must NOT be evicted.
        assert!(fb.sweep(10_000).is_empty());
        assert_eq!(fb.call_count(), 1);
    }

    #[test]
    fn fully_final_call_is_evicted() {
        let mut cfg = Config::default();
        cfg.eviction_delay = vids_netsim::time::SimTime::from_millis(100);
        let mut fb = FactBase::new(cfg);
        {
            let record = fb.create_call("c1", 0);
            let sip = record.network.machine_by_name("sip").unwrap();
            record.network.deliver(sip, invite_event(), 0);
            record.network.deliver(
                sip,
                Event::data("SIP.2xx")
                    .with_str("cseq_method", "INVITE")
                    .with_str("to_tag", "tt")
                    .with_bool("has_sdp", true)
                    .with_str("sdp_ip", "10.2.0.10")
                    .with_uint("sdp_port", 30_000),
                1,
            );
            record.network.deliver(
                sip,
                Event::data("SIP.BYE")
                    .with_str("from_tag", "ft")
                    .with_str("to_tag", "tt")
                    .with_str("cseq_method", "BYE"),
                2,
            );
            record.network.deliver(
                sip,
                Event::data("SIP.2xx").with_str("cseq_method", "BYE"),
                3,
            );
            // Let the RTP machine's drain timer T expire.
            record.network.advance_time(5_000);
            assert!(record.network.all_final());
        }
        assert!(fb.sweep(5_000).is_empty(), "grace period not yet over");
        let evicted = fb.sweep(5_200);
        assert_eq!(evicted, vec![Sym::intern("c1")]);
        assert_eq!(fb.call_count(), 0);
        assert_eq!(fb.stats().calls_evicted, 1);
        assert_eq!(fb.media_lookup("10.1.0.10", 20_000), None);
    }

    #[test]
    fn memory_grows_linearly_with_calls() {
        let mut fb = FactBase::new(Config::default());
        let mut sizes = Vec::new();
        for i in 0..20 {
            let id = format!("call-{i}");
            let record = fb.create_call(&id, 0);
            let sip = record.network.machine_by_name("sip").unwrap();
            let mut ev = invite_event();
            ev.args.set("call_id", id.clone());
            record.network.deliver(sip, ev, 0);
            fb.refresh_media_index(Sym::intern(&id));
            sizes.push(fb.memory_bytes());
        }
        // Roughly linear: the 20th increment is close to the 2nd.
        let d1 = sizes[2] - sizes[1];
        let d19 = sizes[19] - sizes[18];
        assert!(d19 <= d1 * 2, "increments {d1} vs {d19}");
        // Paper §7.3 ballpark: a few hundred bytes per call.
        let per_call = sizes[19] / 20;
        assert!(
            (100..4_000).contains(&per_call),
            "per-call memory {per_call} B"
        );
    }

    #[test]
    fn flood_machines_are_per_destination() {
        let mut fb = FactBase::new(Config::default());
        let a = fb.invite_flood_mut(1) as *const Network;
        let b = fb.invite_flood_mut(2) as *const Network;
        assert_ne!(a, b);
        // Re-fetch returns the same machine.
        let a2 = fb.invite_flood_mut(1) as *const Network;
        assert_eq!(a, a2);
    }
}
