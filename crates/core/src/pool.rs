//! [`VidsPool`]: the scale-out analysis engine.
//!
//! The paper's engine (§5) is strictly per-call: every packet belongs to one
//! call group (SIP by Call-ID, RTP by the media coordinates the SIP machine
//! published) and each group's machines are independent of every other
//! group's. That independence is exactly a sharding invariant, so the pool
//! hash-partitions the fact base across `Config::shards` private [`Vids`]
//! engines and drains them on scoped threads:
//!
//! * **SIP call traffic** is pinned to `hash(Call-ID) % shards`.
//! * **RTP** is routed through a pool-owned media-coordinate → shard index
//!   that mirrors the per-shard `FactBase::media_lookup` table, so a call's
//!   media always lands on the shard holding its SIP machine — the δ-sync
//!   channels never cross a shard boundary.
//! * **Per-destination flood machines** (INVITE flood, DRDoS reflection) are
//!   pinned by `hash(dst_ip)`, and **registration machines** by
//!   `hash(address-of-record)`.
//!
//! Ingestion is batch-oriented: [`VidsPool::process_batch`] classifies the
//! batch in parallel, routes sequentially (the only globally ordered step),
//! drains every shard concurrently, and then merges shard output on a
//! deterministic key — `(packet index, phase, sweep scope, emission seq)` —
//! so the alert sequence is byte-identical whatever the shard count,
//! including a 1-shard pool vs. a plain [`Vids`]. Idle-timer sweeps are
//! amortized to at most one per batch instead of the single engine's
//! per-packet interval check.
//!
//! Parallel phases run on a **persistent worker runtime** (one long-lived
//! thread per shard, spawned at construction): a batch handoff publishes a
//! job descriptor into the worker's mailbox cell and unparks it — no thread
//! creation, no queue allocation, no channel. Workers write into
//! preallocated per-shard buffers whose capacity is reused across batches,
//! so the steady-state handoff path does not allocate. The pool thread
//! works too (it drains the busiest shard while workers drain the rest),
//! and blocks until every published job completes, which is what keeps the
//! raw pointers inside a job valid and the output merge deterministic: by
//! merge time all shard output is back on one thread, ordered by key. See
//! DESIGN.md §7d for the mailbox protocol and panic/shutdown semantics.

use std::any::Any;
use std::cell::UnsafeCell;
use std::cmp::Ordering;
use std::collections::HashSet;
use std::panic::{self, AssertUnwindSafe};
use std::sync::atomic::Ordering::{AcqRel, Acquire, Relaxed, Release};
use std::sync::atomic::{AtomicU32, AtomicU64, AtomicUsize};
use std::sync::{Arc, Mutex};
use std::thread::{self, Thread};
use std::time::Instant;

use vids_efsm::{sym, Event, Sym};
use vids_netsim::packet::Packet;
use vids_netsim::time::SimTime;
use vids_scan::fxhash::FxHashMap;
use vids_telemetry::{Counter, Gauge, HistId, Registry, Snapshot};

use crate::alert::{Alert, AlertKind};
use crate::classify::{classify, Classified};
use crate::config::Config;
use crate::cost::{CostModel, CpuAccount};
use crate::engine::{Vids, VidsCounters, SWEEP_INTERVAL_MS};
use crate::factbase::FactBaseStats;
use crate::monitor::Monitor;
use crate::sink::AlertSink;

/// Below this many routed parts a batch is drained on the calling thread;
/// spawning scoped threads costs more than it saves.
const PARALLEL_DRAIN_THRESHOLD: usize = 64;

/// Below this many packets classification stays on the calling thread.
const PARALLEL_CLASSIFY_THRESHOLD: usize = 256;

/// Merge key: (packet index, phase, sweep scope, per-sink emission seq).
///
/// Phases order the parts of one packet the way the single engine would have
/// emitted them: 0 = batch-start sweep (before any packet), 1 = the
/// destination-pinned INVITE-flood part, 2 = the call/register/media part,
/// 3 = the deferred DRDoS reflection count for an unassociated response.
/// The scope is only populated for sweep alerts (phase 0), where different
/// calls' alerts share one key prefix and the single engine sweeps calls in
/// sorted-Call-ID order. It is an interned symbol, not a `String`: tagging
/// an alert never allocates, and the merge compares 4-byte ids' *text*
/// (interner ids depend on arrival order, which varies with shard count).
type MergeKey = (usize, u8, Sym, u32);

/// One shard-pinned routed part, stamped with packet index and clamped time.
type Routed = (usize, u64, Part);

/// Merge order: `(packet idx, phase, scope text, emission seq)`. The scope
/// symbol must be compared by its string — see [`MergeKey`].
fn merge_cmp(a: &(MergeKey, Alert), b: &(MergeKey, Alert)) -> Ordering {
    let (ai, ap, a_scope, a_seq) = &a.0;
    let (bi, bp, b_scope, b_seq) = &b.0;
    (ai, ap, a_scope.as_str(), a_seq).cmp(&(bi, bp, b_scope.as_str(), b_seq))
}

/// FNV-1a: a fixed, platform-independent hash so call→shard placement is
/// deterministic (std's `RandomState` would randomize it per process).
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for &byte in bytes {
        hash ^= byte as u64;
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// A sink that tags every alert with the merge key of the part being drained.
struct TaggedSink<'a> {
    out: &'a mut Vec<(MergeKey, Alert)>,
    idx: usize,
    phase: u8,
    /// Sweep mode: scope alerts by their Call-ID so the merge reproduces the
    /// single engine's sorted sweep order across shards.
    scope_from_call: bool,
    seq: u32,
}

impl<'a> TaggedSink<'a> {
    fn packet(out: &'a mut Vec<(MergeKey, Alert)>, idx: usize, phase: u8) -> Self {
        TaggedSink {
            out,
            idx,
            phase,
            scope_from_call: false,
            seq: 0,
        }
    }

    fn sweep(out: &'a mut Vec<(MergeKey, Alert)>) -> Self {
        TaggedSink {
            out,
            idx: 0,
            phase: 0,
            scope_from_call: true,
            seq: 0,
        }
    }
}

impl AlertSink for TaggedSink<'_> {
    fn accept(&mut self, alert: Alert) {
        let scope = if self.scope_from_call {
            // The Call-ID names a monitored call, so it is already interned
            // and `lookup` never allocates (nor grows the interner).
            alert
                .call_id
                .as_deref()
                .and_then(Sym::lookup)
                .unwrap_or(sym::EMPTY)
        } else {
            sym::EMPTY
        };
        self.out
            .push(((self.idx, self.phase, scope, self.seq), alert));
        self.seq += 1;
    }
}

/// One classified datagram plus its receive timestamp, produced by the
/// wire-ingestion layer and consumed by [`VidsPool::process_wire_batch`].
/// The receive timestamp plays the role `Packet::sent_at` plays on the
/// in-process path: it feeds the monotonic per-packet clock that drives
/// the timer sweeps.
#[derive(Debug, Clone, PartialEq)]
pub struct WireEvent {
    /// What the classifier made of the datagram.
    pub classified: Classified,
    /// When the datagram was received.
    pub at: SimTime,
}

/// One shard-pinned part of a routed packet.
enum Part {
    Register(Event),
    InviteFlood {
        event: Event,
        dst_ip: u32,
    },
    Call {
        call_id: Sym,
        event: Event,
        is_initial_invite: bool,
        is_request: bool,
        dst_ip: u32,
    },
    Rtp(Event),
}

/// An unassociated SIP response detected on the call-owning shard, to be
/// counted on the destination-owning shard after the parallel drain.
struct Miss {
    idx: usize,
    t: u64,
    dst_ip: u32,
    src_ip: Sym,
}

/// The mailbox protocol's state word and transition functions, split out so
/// the `vids-harness` exhaustive interleaving checker exercises *these*
/// definitions, not a transcription that could drift from the code. The
/// worker side of the protocol ([`worker_loop`]) calls
/// [`mailbox::worker_observe`] / [`mailbox::worker_publish`] verbatim; the
/// coordinator side's steps (arm pending → write job → publish → wait) are
/// modeled against the constants here. Hidden: this is a verification seam,
/// not API.
#[doc(hidden)]
pub mod mailbox {
    /// Mailbox is empty; the pool thread owns the cell's buffers.
    pub const IDLE: u32 = 0;
    /// A job is published; the worker owns the cell's buffers.
    pub const HAS_WORK: u32 = 1;
    /// The runtime is being dropped; the worker must exit its loop.
    pub const SHUTDOWN: u32 = 2;
    /// A job panicked; its payload is parked in the cell.
    pub const POISONED: u32 = 3;

    /// What a worker does after observing the state word.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum WorkerStep {
        /// Take ownership of the mailbox and run the job.
        Run,
        /// Leave the worker loop (runtime shutdown).
        Exit,
        /// Nothing to do: spin, then park.
        Wait,
    }

    /// The worker-side decision on an observed state word.
    #[inline]
    pub fn worker_observe(state: u32) -> WorkerStep {
        match state {
            HAS_WORK => WorkerStep::Run,
            SHUTDOWN => WorkerStep::Exit,
            _ => WorkerStep::Wait,
        }
    }

    /// The state word a worker publishes after finishing a job, handing the
    /// mailbox back to the pool thread.
    #[inline]
    pub fn worker_publish(panicked: bool) -> u32 {
        if panicked {
            POISONED
        } else {
            IDLE
        }
    }
}

use mailbox::{HAS_WORK, IDLE, POISONED, SHUTDOWN};

/// Spins before a worker parks, covering back-to-back phase handoffs of one
/// batch without a syscall round-trip.
const SPIN_LIMIT: u32 = 64;

/// A unit of work published to one worker.
///
/// The raw pointers keep the handoff allocation-free; they are valid for
/// the whole job because the pool thread blocks in [`WorkerRuntime::wait`]
/// before the borrows they were derived from end, and no two concurrent
/// jobs reference the same shard engine.
enum Job {
    Idle,
    /// Drain the cell's routed `queue` through the shard engine.
    Drain {
        engine: *mut Vids,
    },
    /// `force_maintain` the shard engine at `now_ms`.
    Sweep {
        engine: *mut Vids,
        now_ms: u64,
    },
    /// Classify `packets[offset..offset + len]` into the cell's buffer.
    Classify {
        base: *const Packet,
        offset: usize,
        len: usize,
    },
    /// Test hook: panic inside the job to exercise poisoning.
    #[cfg(test)]
    Panic,
}

/// One worker's mailbox: the pending job plus reusable input/output buffers
/// whose capacity persists across batches.
struct ShardData {
    queue: Vec<Routed>,
    tagged: Vec<(MergeKey, Alert)>,
    misses: Vec<Miss>,
    classified: Vec<Classified>,
    job: Job,
}

struct ShardCell {
    /// [`IDLE`] / [`HAS_WORK`] / [`SHUTDOWN`] / [`POISONED`].
    state: AtomicU32,
    data: UnsafeCell<ShardData>,
    /// Payload of a job that panicked, re-thrown on the pool thread.
    panic: Mutex<Option<Box<dyn Any + Send>>>,
}

// SAFETY: `data` is owned by exactly one thread at a time. The worker owns
// it between observing HAS_WORK (Acquire) and publishing IDLE/POISONED
// (Release); the pool thread owns it otherwise, and only touches it while
// no job is pending. The raw pointers inside `Job` are dereferenced only
// during that worker-owned window, while the pool thread is blocked (or
// working a disjoint shard), keeping their referents alive and unaliased.
unsafe impl Send for ShardCell {}
unsafe impl Sync for ShardCell {}

/// State shared between the pool thread and its workers.
struct Shared {
    cells: Vec<ShardCell>,
    /// Jobs published but not yet completed in the current phase.
    pending: AtomicUsize,
    /// The pool thread blocked in `wait()`, unparked when `pending` drains.
    coordinator: Mutex<Option<Thread>>,
    /// Workers currently parked (exported as [`Gauge::WorkerParked`]).
    parked: AtomicU64,
    /// Workers that have finished thread startup and entered their loop.
    /// `spawn` blocks on this so the one-time startup allocations the std
    /// runtime makes on a new thread can never bleed into a caller's
    /// steady-state window (the allocation budget counts every thread).
    started: AtomicUsize,
}

/// The persistent worker threads plus their shared mailboxes. Spawned once
/// at pool construction for multi-shard pools; dropped (joining every
/// worker) with the pool.
struct WorkerRuntime {
    shared: Arc<Shared>,
    handles: Vec<thread::JoinHandle<()>>,
}

impl WorkerRuntime {
    fn spawn(n: usize) -> Self {
        let shared = Arc::new(Shared {
            cells: (0..n)
                .map(|_| ShardCell {
                    state: AtomicU32::new(IDLE),
                    data: UnsafeCell::new(ShardData {
                        queue: Vec::new(),
                        tagged: Vec::new(),
                        misses: Vec::new(),
                        classified: Vec::new(),
                        job: Job::Idle,
                    }),
                    panic: Mutex::new(None),
                })
                .collect(),
            pending: AtomicUsize::new(0),
            coordinator: Mutex::new(None),
            parked: AtomicU64::new(0),
            started: AtomicUsize::new(0),
        });
        let handles = (0..n)
            .map(|i| {
                let shared = Arc::clone(&shared);
                thread::Builder::new()
                    .name(format!("vids-shard-{i}"))
                    .spawn(move || worker_loop(&shared, i))
                    .expect("spawn shard worker")
            })
            .collect();
        while shared.started.load(Acquire) < n {
            thread::yield_now();
        }
        WorkerRuntime { shared, handles }
    }

    /// The cell's mailbox. Dereference only while the owning side holds the
    /// cell (see the `ShardCell` safety note).
    fn data_ptr(&self, i: usize) -> *mut ShardData {
        self.shared.cells[i].data.get()
    }

    /// Registers the pool thread for wakeup and arms the pending count with
    /// the number of jobs the phase will publish. Storing the full count
    /// *before* the first publish means an instantly-finishing worker
    /// cannot drive `pending` to zero early.
    fn begin(&self, jobs: usize) {
        *self.shared.coordinator.lock().unwrap() = Some(thread::current());
        self.shared.pending.store(jobs, Release);
    }

    /// Hands the already-written job in cell `i` to its worker.
    fn publish(&self, i: usize) {
        self.shared.cells[i].state.store(HAS_WORK, Release);
        self.handles[i].thread().unpark();
    }

    /// Blocks until every published job of the phase has completed. The
    /// Acquire load pairs with each worker's Release decrement, so on
    /// return all worker writes (engine state, output buffers) are visible.
    fn wait(&self) {
        while self.shared.pending.load(Acquire) != 0 {
            thread::park();
        }
        *self.shared.coordinator.lock().unwrap() = None;
    }

    /// Re-throws a panic captured on a worker. The runtime stays poisoned:
    /// later calls panic again instead of deadlocking on a dead shard.
    fn check_poison(&self) {
        for cell in &self.shared.cells {
            if cell.state.load(Acquire) == POISONED {
                match cell.panic.lock().unwrap().take() {
                    Some(payload) => panic::resume_unwind(payload),
                    None => panic!("shard worker previously panicked"),
                }
            }
        }
    }
}

impl Drop for WorkerRuntime {
    fn drop(&mut self) {
        for cell in &self.shared.cells {
            cell.state.store(SHUTDOWN, Release);
        }
        for handle in &self.handles {
            handle.thread().unpark();
        }
        for handle in self.handles.drain(..) {
            // A worker that panicked parked its payload in the cell and
            // kept running its loop; never double-panic out of drop.
            let _ = handle.join();
        }
    }
}

fn worker_loop(shared: &Shared, index: usize) {
    let cell = &shared.cells[index];
    shared.started.fetch_add(1, Release);
    loop {
        let mut spins = 0u32;
        loop {
            match mailbox::worker_observe(cell.state.load(Acquire)) {
                mailbox::WorkerStep::Run => break,
                mailbox::WorkerStep::Exit => return,
                mailbox::WorkerStep::Wait => {}
            }
            if spins < SPIN_LIMIT {
                spins += 1;
                std::hint::spin_loop();
            } else {
                shared.parked.fetch_add(1, Relaxed);
                thread::park();
                shared.parked.fetch_sub(1, Relaxed);
            }
        }
        // SAFETY: observing HAS_WORK (Acquire) transferred the mailbox to
        // this worker; it is handed back by the Release store below.
        let data = unsafe { &mut *cell.data.get() };
        let outcome = panic::catch_unwind(AssertUnwindSafe(|| run_job(data)));
        let panicked = outcome.is_err();
        if let Err(payload) = outcome {
            *cell.panic.lock().unwrap() = Some(payload);
        }
        cell.state.store(mailbox::worker_publish(panicked), Release);
        if shared.pending.fetch_sub(1, AcqRel) == 1 {
            // Last job of the phase: wake the pool thread.
            if let Some(coordinator) = shared.coordinator.lock().unwrap().as_ref() {
                coordinator.unpark();
            }
        }
    }
}

fn run_job(data: &mut ShardData) {
    match std::mem::replace(&mut data.job, Job::Idle) {
        Job::Idle => {}
        Job::Drain { engine } => {
            // SAFETY: the pool thread keeps the engine alive and unaliased
            // for the duration of the job (see `ShardCell`).
            let engine = unsafe { &mut *engine };
            drain_one(engine, &mut data.queue, &mut data.tagged, &mut data.misses);
        }
        Job::Sweep { engine, now_ms } => {
            // SAFETY: as above.
            let engine = unsafe { &mut *engine };
            let mut sink = TaggedSink::sweep(&mut data.tagged);
            engine.force_maintain(now_ms, &mut sink);
        }
        Job::Classify { base, offset, len } => {
            // SAFETY: the batch slice outlives the phase (see `ShardCell`).
            let packets = unsafe { std::slice::from_raw_parts(base.add(offset), len) };
            data.classified.clear();
            data.classified.extend(packets.iter().map(classify));
        }
        #[cfg(test)]
        Job::Panic => panic!("injected shard worker panic"),
    }
}

/// The sharded analysis engine. Construct with a [`Config`] whose `shards`
/// field (see [`Config::builder`]) says how many independent [`Vids`]
/// engines to partition monitored calls across, then feed traffic in
/// batches via [`VidsPool::process_batch`] — or packet-at-a-time through
/// the [`Monitor`] trait, which behaves identically to a plain `Vids`.
pub struct VidsPool {
    shards: Vec<Vids>,
    /// Read-mostly mirror of every shard's media index: negotiated media
    /// coordinates → owning shard. Written only during sequential routing;
    /// probed per RTP packet, so the key is an interned symbol and the probe
    /// never allocates. Not maintained for single-shard pools, which route
    /// everything to shard 0 without hashing.
    media_to_shard: FxHashMap<(Sym, u64), usize>,
    config: Config,
    cost: CostModel,
    cpu: CpuAccount,
    alerts: Vec<Alert>,
    /// Dedup for pool-level (shardless) alerts, i.e. malformed traffic.
    dedup: HashSet<(String, String)>,
    /// Counters for traffic that never reaches a shard.
    extra: VidsCounters,
    last_sweep_ms: u64,
    /// Monotonic clamp over packet timestamps: EFSM networks require
    /// non-decreasing time, so a late-stamped packet is processed at the
    /// batch high-water mark, exactly as a single engine would see it.
    last_packet_ms: u64,
    /// Hardware threads available at construction. On a single-core host
    /// every parallel path degrades to the sequential one — same output
    /// (the merge is deterministic either way), none of the thread
    /// overhead.
    workers: usize,
    /// Telemetry registry when enabled: one slab per shard (wired into the
    /// shard engines) plus a pool-level slab for batch/merge metrics.
    telemetry: Option<Arc<Registry>>,
    /// Reusable per-shard routing queues. Their capacity shuttles between
    /// here and the worker mailboxes (a handoff swaps `Vec`s), so
    /// steady-state routing allocates nothing.
    queues: Vec<Vec<Routed>>,
    /// Reusable classification output for the whole batch, in packet order.
    classified: Vec<Classified>,
    /// Reusable merge buffer of `(key, alert)` pairs for the current batch.
    scratch_tagged: Vec<(MergeKey, Alert)>,
    /// Reusable buffer of deferred DRDoS response misses.
    scratch_misses: Vec<Miss>,
    /// Persistent worker threads; `None` for single-shard pools, which
    /// always drain inline. Workers hold no engine references while idle,
    /// so drop order relative to `shards` is immaterial.
    runtime: Option<WorkerRuntime>,
}

impl VidsPool {
    /// Creates a pool with `config.shards` shards and the default cost model.
    pub fn new(config: Config) -> Self {
        VidsPool::with_cost(config, CostModel::default())
    }

    /// Creates a pool with an explicit cost model. The pool charges the
    /// per-packet CPU cost once, centrally, at routing time; shard-internal
    /// accounting stays zero.
    pub fn with_cost(config: Config, cost: CostModel) -> Self {
        let n = config.shards.max(1);
        VidsPool {
            shards: (0..n).map(|_| Vids::with_cost(config, cost)).collect(),
            media_to_shard: FxHashMap::default(),
            config,
            cost,
            cpu: CpuAccount::new(),
            alerts: Vec::new(),
            dedup: HashSet::new(),
            extra: VidsCounters::default(),
            last_sweep_ms: 0,
            last_packet_ms: 0,
            workers: thread::available_parallelism().map_or(1, |p| p.get()),
            telemetry: None,
            queues: (0..n).map(|_| Vec::new()).collect(),
            classified: Vec::new(),
            scratch_tagged: Vec::new(),
            scratch_misses: Vec::new(),
            // Workers are spawned even on a single-core host (they just
            // stay parked there): whether a batch is handed off or drained
            // inline is a per-batch decision, and the panic/shutdown
            // machinery behaves identically everywhere.
            runtime: (n > 1).then(|| WorkerRuntime::spawn(n)),
        }
    }

    /// Enables telemetry: allocates a [`Registry`] with one slab per shard
    /// plus a pool slab, attaches each shard engine to its slab (with a
    /// transition ring of `ring_capacity` records per shard), and returns
    /// the registry. Call before feeding traffic; recording from then on is
    /// allocation-free.
    pub fn enable_telemetry(&mut self, ring_capacity: usize) -> Arc<Registry> {
        let registry = Arc::new(Registry::new(self.shards.len()));
        for (i, shard) in self.shards.iter_mut().enumerate() {
            shard.attach_telemetry(registry.shard_slab(i), ring_capacity);
        }
        self.telemetry = Some(Arc::clone(&registry));
        registry
    }

    /// A snapshot of the pool's registry at monitor time `now`, when
    /// telemetry is enabled. Refreshes the per-shard gauges (live calls,
    /// fact-base memory) and the pool slab's routing-index memory gauge
    /// before copying.
    pub fn telemetry_snapshot(&self, now: SimTime) -> Option<Snapshot> {
        let registry = self.telemetry.as_ref()?;
        for shard in &self.shards {
            shard.refresh_telemetry_gauges();
        }
        let index_bytes: usize = self
            .media_to_shard
            .keys()
            .map(|(ip, _)| ip.as_str().len() + std::mem::size_of::<((Sym, u64), usize)>())
            .sum();
        registry
            .pool()
            .set_gauge(Gauge::MemoryBytes, index_bytes as u64);
        if let Some(rt) = &self.runtime {
            registry
                .pool()
                .set_gauge(Gauge::WorkerParked, rt.shared.parked.load(Relaxed));
        }
        Some(registry.snapshot(now.as_millis()))
    }

    /// The active configuration.
    pub fn config(&self) -> &Config {
        &self.config
    }

    /// Number of shards.
    pub fn shards(&self) -> usize {
        self.shards.len()
    }

    /// Read access to one shard's engine, for introspection.
    pub fn shard(&self, index: usize) -> &Vids {
        &self.shards[index]
    }

    /// Freezes the EFSM state of one monitored call, whichever shard owns
    /// it. See [`Vids::call_snapshot`].
    pub fn call_snapshot(&self, call_id: &str) -> Option<crate::snapshot::CallSnapshot> {
        self.shards.iter().find_map(|s| s.call_snapshot(call_id))
    }

    /// Every alert raised so far, in deterministic merge order.
    pub fn alerts(&self) -> &[Alert] {
        &self.alerts
    }

    /// Aggregate traffic counters across all shards.
    pub fn counters(&self) -> VidsCounters {
        let mut total = self.extra;
        for shard in &self.shards {
            total += shard.counters();
        }
        total
    }

    /// Calls currently monitored, summed across shards.
    pub fn monitored_calls(&self) -> usize {
        self.shards.iter().map(Vids::monitored_calls).sum()
    }

    /// Aggregate fact-base lifetime statistics. `peak_concurrent` is the sum
    /// of per-shard peaks — an upper bound on the true pool-wide peak, since
    /// the shards need not have peaked simultaneously.
    pub fn factbase_stats(&self) -> FactBaseStats {
        let mut total = FactBaseStats::default();
        for shard in &self.shards {
            let s = shard.factbase_stats();
            total.calls_created += s.calls_created;
            total.calls_evicted += s.calls_evicted;
            total.peak_concurrent += s.peak_concurrent;
        }
        total
    }

    /// Fact-base memory footprint summed across shards, plus the pool's own
    /// media routing index.
    pub fn memory_bytes(&self) -> usize {
        let shard_bytes: usize = self.shards.iter().map(Vids::memory_bytes).sum();
        let index_bytes: usize = self
            .media_to_shard
            .keys()
            .map(|(ip, _)| ip.as_str().len() + std::mem::size_of::<((Sym, u64), usize)>())
            .sum();
        shard_bytes + index_bytes
    }

    /// CPU busy time accumulated by the central cost account.
    pub fn cpu_busy(&self) -> SimTime {
        self.cpu.busy()
    }

    /// CPU overhead fraction over an elapsed monitoring interval (§7.3).
    pub fn cpu_overhead(&self, elapsed: SimTime) -> f64 {
        self.cpu.overhead_fraction(elapsed)
    }

    /// Which shard currently owns the given media coordinates, if any call
    /// negotiated them. Exposed for tests of cross-shard RTP routing.
    pub fn media_shard(&self, ip: &str, port: u64) -> Option<usize> {
        let ip = Sym::lookup(ip)?;
        self.media_to_shard.get(&(ip, port)).copied()
    }

    /// Processes a batch of packets, pushing alerts into `sink` (they are
    /// also appended to the persistent log readable via
    /// [`VidsPool::alerts`]).
    ///
    /// Pipeline: one amortized idle-timer sweep per batch, parallel
    /// classification, sequential shard routing, parallel shard drains,
    /// deferred DRDoS counting, deterministic merge.
    pub fn process_batch<S: AlertSink + ?Sized>(
        &mut self,
        packets: &[Packet],
        now: SimTime,
        sink: &mut S,
    ) {
        if let Some(rt) = &self.runtime {
            rt.check_poison();
        }
        let now_ms = now.as_millis();
        let mut tagged = std::mem::take(&mut self.scratch_tagged);

        if let Some(reg) = &self.telemetry {
            reg.pool().inc(Counter::BatchesIngested);
            reg.pool()
                .add(Counter::PacketsIngested, packets.len() as u64);
            reg.pool().record(HistId::BatchSize, packets.len() as u64);
        }

        // Phase 0: at most one sweep per batch (the single engine re-checks
        // the interval on every packet; the pool amortizes that to one
        // barrier here, keyed ahead of every packet of the batch).
        if now_ms.saturating_sub(self.last_sweep_ms) >= SWEEP_INTERVAL_MS {
            self.last_sweep_ms = now_ms;
            // The batch-level sweep is counted once here, on the pool slab:
            // per-shard force_maintain does not count, so the total is the
            // same whatever the shard count.
            if let Some(reg) = &self.telemetry {
                reg.pool().inc(Counter::TimerSweeps);
            }
            self.sweep_shards(now_ms, &mut tagged);
        }

        // Phase 1: classify — pure per-packet work, fanned out to the
        // workers for big batches — into the reusable `classified` buffer.
        self.classify_batch(packets);

        // Phase 2: route. The only sequential pass over the batch: assigns
        // monotonic per-packet times, charges the cost model, publishes
        // media coordinates to the routing index, and queues shard-pinned
        // parts. Malformed/ignored traffic is consumed here — it has no
        // call, destination or media key to shard by.
        let mut queues = std::mem::take(&mut self.queues);
        let mut classified = std::mem::take(&mut self.classified);
        let mut misses = std::mem::take(&mut self.scratch_misses);
        let direct = self.direct_dispatch(packets.len());
        for (idx, (packet, c)) in packets.iter().zip(classified.drain(..)).enumerate() {
            self.cpu.charge(self.cost.cpu_for(packet));
            let t = now_ms
                .max(packet.sent_at.as_millis())
                .max(self.last_packet_ms);
            self.last_packet_ms = t;
            self.route_one(idx, t, c, direct, &mut queues, &mut tagged, &mut misses);
        }
        self.classified = classified;

        // Phases 3–5: drain, deferred DRDoS counting, deterministic merge.
        self.drain_and_merge(queues, tagged, misses, sink);
    }

    /// Processes a batch of wire-classified datagrams, pushing alerts into
    /// `sink`. This is the live-ingestion twin of [`VidsPool::process_batch`]:
    /// the receiver threads already classified each datagram straight off
    /// the socket buffer ([`crate::classify::classify_wire`]), so the pool
    /// skips the classification fan-out and goes straight to routing. The
    /// events are drained out of `events`, leaving its capacity to be
    /// recycled by the caller.
    ///
    /// Given the same traffic, alerts and counters are byte-identical to
    /// the in-process path — the replay differential tests enforce it.
    pub fn process_wire_batch<S: AlertSink + ?Sized>(
        &mut self,
        events: &mut Vec<WireEvent>,
        now: SimTime,
        sink: &mut S,
    ) {
        if let Some(rt) = &self.runtime {
            rt.check_poison();
        }
        let now_ms = now.as_millis();
        let mut tagged = std::mem::take(&mut self.scratch_tagged);

        if let Some(reg) = &self.telemetry {
            reg.pool().inc(Counter::BatchesIngested);
            reg.pool()
                .add(Counter::PacketsIngested, events.len() as u64);
            reg.pool().record(HistId::BatchSize, events.len() as u64);
        }

        // Phase 0: at most one sweep per batch, exactly as in
        // `process_batch`.
        if now_ms.saturating_sub(self.last_sweep_ms) >= SWEEP_INTERVAL_MS {
            self.last_sweep_ms = now_ms;
            if let Some(reg) = &self.telemetry {
                reg.pool().inc(Counter::TimerSweeps);
            }
            self.sweep_shards(now_ms, &mut tagged);
        }

        // Phases 1+2 fused: classification already happened on the wire,
        // so the only per-datagram work left is the sequential routing
        // pass. The cost model charges by what the datagram claimed to be,
        // matching `cpu_for` on the equivalent `Packet`.
        let mut queues = std::mem::take(&mut self.queues);
        let mut misses = std::mem::take(&mut self.scratch_misses);
        let direct = self.direct_dispatch(events.len());
        for (idx, ev) in events.drain(..).enumerate() {
            self.cpu
                .charge(self.cost.cpu_for_classified(&ev.classified));
            let t = now_ms.max(ev.at.as_millis()).max(self.last_packet_ms);
            self.last_packet_ms = t;
            self.route_one(
                idx,
                t,
                ev.classified,
                direct,
                &mut queues,
                &mut tagged,
                &mut misses,
            );
        }

        self.drain_and_merge(queues, tagged, misses, sink);
    }

    /// Whether this batch should bypass the shard queues and ingest parts
    /// during the routing pass. True whenever the drain phase would run on
    /// the calling thread anyway: no worker runtime, a single hardware
    /// thread, a single shard, or a batch too small to amortize a handoff.
    fn direct_dispatch(&self, batch_len: usize) -> bool {
        self.runtime.is_none()
            || self.workers == 1
            || self.shards.len() == 1
            || batch_len < PARALLEL_DRAIN_THRESHOLD
    }

    /// Phase 2 body shared by the packet and wire batch paths: assigns one
    /// routed part per protocol role, publishes media coordinates, and
    /// consumes malformed/ignored traffic (it has no call, destination or
    /// media key to shard by).
    ///
    /// With `direct` set the part skips the shard queue and is ingested
    /// right here: the batch was going to drain on this thread anyway
    /// (single worker, single shard, or below the parallel threshold), so
    /// queueing would only add two ~500-byte `Event` moves per packet.
    /// Per-shard event order is identical either way — routing is the
    /// sequential packet-order pass — and the merge keys make the final
    /// alert order independent of the choice.
    #[allow(clippy::too_many_arguments)]
    fn route_one(
        &mut self,
        idx: usize,
        t: u64,
        c: Classified,
        direct: bool,
        queues: &mut [Vec<Routed>],
        tagged: &mut Vec<(MergeKey, Alert)>,
        misses: &mut Vec<Miss>,
    ) {
        let n = self.shards.len();
        match c {
            Classified::Sip {
                call_id,
                event,
                is_initial_invite,
                is_request,
                dst_ip,
            } => {
                if event.name == sym::SIP_REGISTER {
                    let aor = event.str_arg("aor").unwrap_or("");
                    let shard = self.shard_of(aor.as_bytes());
                    let part = Part::Register(event);
                    if direct {
                        ingest_part(&mut self.shards[shard], idx, t, part, tagged, misses);
                    } else {
                        queues[shard].push((idx, t, part));
                    }
                    return;
                }
                let shard = self.shard_of(call_id.as_str().as_bytes());
                if event.name == sym::SIP_INVITE {
                    let flood_shard = self.shard_of(&dst_ip.to_le_bytes());
                    let part = Part::InviteFlood {
                        event: event.clone(),
                        dst_ip,
                    };
                    if direct {
                        ingest_part(&mut self.shards[flood_shard], idx, t, part, tagged, misses);
                    } else {
                        queues[flood_shard].push((idx, t, part));
                    }
                }
                if n > 1 && event.bool_arg("has_sdp") {
                    if let (Some(ip), Some(port)) =
                        (event.sym_arg(sym::SDP_IP), event.uint_arg(sym::SDP_PORT))
                    {
                        self.media_to_shard.insert((ip, port), shard);
                    }
                }
                let part = Part::Call {
                    call_id,
                    event,
                    is_initial_invite,
                    is_request,
                    dst_ip,
                };
                if direct {
                    ingest_part(&mut self.shards[shard], idx, t, part, tagged, misses);
                } else {
                    queues[shard].push((idx, t, part));
                }
            }
            Classified::Rtp { event } => {
                let shard = if n == 1 {
                    0
                } else {
                    let ip = event.sym_arg(sym::DST_IP).unwrap_or_default();
                    let port = event.uint_arg(sym::DST_PORT).unwrap_or(0);
                    self.media_to_shard
                        .get(&(ip, port))
                        .copied()
                        .unwrap_or_else(|| {
                            // No call negotiated these coordinates: route by
                            // their hash so any shard count flags the same
                            // packet as unassociated exactly once.
                            let mut h = fnv1a(ip.as_str().as_bytes());
                            for byte in port.to_le_bytes() {
                                h = (h ^ byte as u64).wrapping_mul(0x0000_0100_0000_01b3);
                            }
                            (h % n as u64) as usize
                        })
                };
                if direct {
                    ingest_part(
                        &mut self.shards[shard],
                        idx,
                        t,
                        Part::Rtp(event),
                        tagged,
                        misses,
                    );
                } else {
                    queues[shard].push((idx, t, Part::Rtp(event)));
                }
            }
            Classified::Malformed { protocol, reason } => {
                self.extra.malformed += 1;
                if let Some(reg) = &self.telemetry {
                    reg.pool().inc(Counter::Malformed);
                }
                self.pool_raise(
                    tagged,
                    idx,
                    t,
                    format!("malformed-{}", protocol.to_ascii_lowercase()),
                    reason.to_owned(),
                );
            }
            Classified::Ignored => {
                self.extra.ignored += 1;
                if let Some(reg) = &self.telemetry {
                    reg.pool().inc(Counter::Ignored);
                }
            }
        }
    }

    /// Phases 3–5 shared by the packet and wire batch paths.
    fn drain_and_merge<S: AlertSink + ?Sized>(
        &mut self,
        mut queues: Vec<Vec<Routed>>,
        mut tagged: Vec<(MergeKey, Alert)>,
        mut misses: Vec<Miss>,
        sink: &mut S,
    ) {
        // Phase 3: drain every shard's queue — on the persistent workers
        // when the batch is big enough, inline otherwise. Direct-dispatch
        // batches arrive with empty queues and this pass is a no-op.
        self.drain_shards(&mut queues, &mut tagged, &mut misses);
        self.queues = queues;

        // Phase 4: deferred DRDoS reflection counting. The call-owning shard
        // only *detects* the miss; the count belongs to the destination's
        // shard, which may have been busy during the drain. Delivered in
        // packet order with original packet times — flood networks are only
        // touched in this phase and at routing-queue drain, both
        // time-monotonic.
        misses.sort_unstable_by_key(|m| m.idx);
        for miss in misses.drain(..) {
            let shard = self.shard_of(&miss.dst_ip.to_le_bytes());
            let mut tsink = TaggedSink::packet(&mut tagged, miss.idx, 3);
            self.shards[shard].ingest_response_flood(miss.dst_ip, miss.src_ip, miss.t, &mut tsink);
        }
        self.scratch_misses = misses;

        // Phase 5: merge. The key makes this order independent of shard
        // count and thread scheduling.
        let merge_started = self.telemetry.as_ref().map(|_| Instant::now());
        tagged.sort_unstable_by(merge_cmp);
        for (_key, alert) in tagged.drain(..) {
            self.alerts.push(alert.clone());
            sink.accept(alert);
        }
        self.scratch_tagged = tagged;
        if let (Some(reg), Some(started)) = (&self.telemetry, merge_started) {
            let nanos = started.elapsed().as_nanos() as u64;
            reg.pool().add(Counter::MergeNanos, nanos);
            reg.pool().record(HistId::MergeNanos, nanos);
        }
    }

    /// Advances idle timers and evicts finished calls on every shard,
    /// pushing timer-driven alerts into `sink` in deterministic order.
    pub fn tick<S: AlertSink + ?Sized>(&mut self, now: SimTime, sink: &mut S) {
        if let Some(rt) = &self.runtime {
            rt.check_poison();
        }
        let now_ms = now.as_millis();
        if now_ms < SWEEP_INTERVAL_MS {
            return; // mirror Vids::tick's interval gate from time zero
        }
        self.last_sweep_ms = now_ms;
        if let Some(reg) = &self.telemetry {
            reg.pool().inc(Counter::TimerSweeps);
        }
        let mut tagged = std::mem::take(&mut self.scratch_tagged);
        self.sweep_shards(now_ms, &mut tagged);
        tagged.sort_unstable_by(merge_cmp);
        for (_key, alert) in tagged.drain(..) {
            self.alerts.push(alert.clone());
            sink.accept(alert);
        }
        self.scratch_tagged = tagged;
    }

    fn shard_of(&self, bytes: &[u8]) -> usize {
        if self.shards.len() == 1 {
            return 0;
        }
        (fnv1a(bytes) % self.shards.len() as u64) as usize
    }

    /// Pool-level alert with the single engine's dedup semantics for
    /// call-less alerts (scope = detail text).
    fn pool_raise(
        &mut self,
        tagged: &mut Vec<(MergeKey, Alert)>,
        idx: usize,
        t: u64,
        label: String,
        detail: String,
    ) {
        if !self.dedup.insert((detail.clone(), label.clone())) {
            return;
        }
        if let Some(reg) = &self.telemetry {
            reg.pool().inc(Counter::AlertsDeviation);
        }
        let alert = Alert {
            time_ms: t,
            kind: AlertKind::Deviation,
            label,
            call_id: None,
            machine: "classifier".to_owned(),
            detail,
            trace: Vec::new(),
        };
        tagged.push(((idx, 2, sym::EMPTY, 0), alert));
    }

    /// Classifies the batch into `self.classified` (packet order). Big
    /// batches are chunked across the workers; the pool thread classifies
    /// chunk 0 itself while they run.
    fn classify_batch(&mut self, packets: &[Packet]) {
        self.classified.clear();
        let threads = self.shards.len().min(self.workers);
        let parallel =
            self.runtime.is_some() && threads > 1 && packets.len() >= PARALLEL_CLASSIFY_THRESHOLD;
        if !parallel {
            self.classified.extend(packets.iter().map(classify));
            return;
        }
        let rt = self.runtime.as_ref().unwrap();
        let chunk = packets.len().div_ceil(threads);
        let base = packets.as_ptr();
        let jobs = (1..threads).filter(|j| j * chunk < packets.len()).count();
        rt.begin(jobs);
        for j in 1..threads {
            let offset = j * chunk;
            if offset >= packets.len() {
                break;
            }
            // SAFETY: workers are idle (no job pending), so the pool
            // thread owns every mailbox.
            let data = unsafe { &mut *rt.data_ptr(j) };
            data.job = Job::Classify {
                base,
                offset,
                len: chunk.min(packets.len() - offset),
            };
            rt.publish(j);
        }
        self.classified
            .extend(packets[..chunk.min(packets.len())].iter().map(classify));
        rt.wait();
        rt.check_poison();
        if let Some(reg) = &self.telemetry {
            reg.pool().add(Counter::BatchHandoffs, jobs as u64);
        }
        for j in 1..threads {
            if j * chunk >= packets.len() {
                break;
            }
            // SAFETY: `wait` returned, so every mailbox is back with us.
            let data = unsafe { &mut *rt.data_ptr(j) };
            self.classified.append(&mut data.classified);
        }
    }

    /// Drains every shard's routed queue. Small batches run inline; big
    /// ones are handed to the workers, with the busiest queue kept on the
    /// pool thread (the coordinator works instead of idling, and it is one
    /// fewer handoff).
    fn drain_shards(
        &mut self,
        queues: &mut [Vec<Routed>],
        tagged: &mut Vec<(MergeKey, Alert)>,
        misses: &mut Vec<Miss>,
    ) {
        let n = self.shards.len();
        let total: usize = queues.iter().map(Vec::len).sum();
        let parallel = self.runtime.is_some()
            && self.workers > 1
            && n > 1
            && total >= PARALLEL_DRAIN_THRESHOLD;
        if !parallel {
            for (shard, queue) in self.shards.iter_mut().zip(queues.iter_mut()) {
                drain_one(shard, queue, tagged, misses);
            }
            return;
        }
        let rt = self.runtime.as_ref().unwrap();
        let busiest = (0..n).max_by_key(|&i| queues[i].len()).unwrap_or(0);
        let engines: *mut Vids = self.shards.as_mut_ptr();
        let jobs = queues
            .iter()
            .enumerate()
            .filter(|(i, q)| *i != busiest && !q.is_empty())
            .count();
        rt.begin(jobs);
        for (i, queue) in queues.iter_mut().enumerate() {
            if i == busiest || queue.is_empty() {
                continue;
            }
            // SAFETY: workers are idle, so the pool thread owns the
            // mailbox; the engine pointer is disjoint per job and outlives
            // the phase (we block in `wait` below).
            let data = unsafe { &mut *rt.data_ptr(i) };
            std::mem::swap(&mut data.queue, queue);
            data.job = Job::Drain {
                engine: unsafe { engines.add(i) },
            };
            rt.publish(i);
        }
        // SAFETY: `busiest` is published to no worker, so this &mut is the
        // only reference to that engine.
        let own = unsafe { &mut *engines.add(busiest) };
        drain_one(own, &mut queues[busiest], tagged, misses);
        rt.wait();
        rt.check_poison();
        if let Some(reg) = &self.telemetry {
            reg.pool().add(Counter::BatchHandoffs, jobs as u64);
        }
        for (i, queue) in queues.iter_mut().enumerate() {
            if i == busiest {
                continue;
            }
            // SAFETY: `wait` returned; the mailboxes are back with us.
            // Cells that got no job have empty buffers, so gathering from
            // everyone is uniform and a no-op for them.
            let data = unsafe { &mut *rt.data_ptr(i) };
            tagged.append(&mut data.tagged);
            misses.append(&mut data.misses);
            // Swap the (drained) queue buffer back so the next batch's
            // routing reuses its capacity.
            std::mem::swap(&mut data.queue, queue);
        }
    }

    fn sweep_shards(&mut self, now_ms: u64, tagged: &mut Vec<(MergeKey, Alert)>) {
        let n = self.shards.len();
        let parallel = self.runtime.is_some() && self.workers > 1 && n > 1;
        if !parallel {
            for shard in &mut self.shards {
                let mut sink = TaggedSink::sweep(tagged);
                shard.force_maintain(now_ms, &mut sink);
            }
        } else {
            let rt = self.runtime.as_ref().unwrap();
            let engines: *mut Vids = self.shards.as_mut_ptr();
            rt.begin(n - 1);
            for i in 1..n {
                // SAFETY: as in `drain_shards` — idle workers, disjoint
                // engine per job, pool thread blocks before the phase ends.
                let data = unsafe { &mut *rt.data_ptr(i) };
                data.job = Job::Sweep {
                    engine: unsafe { engines.add(i) },
                    now_ms,
                };
                rt.publish(i);
            }
            {
                // Shard 0 sweeps on the pool thread meanwhile.
                // SAFETY: published to no worker.
                let own = unsafe { &mut *engines };
                let mut sink = TaggedSink::sweep(tagged);
                own.force_maintain(now_ms, &mut sink);
            }
            rt.wait();
            rt.check_poison();
            if let Some(reg) = &self.telemetry {
                reg.pool().add(Counter::BatchHandoffs, (n - 1) as u64);
            }
            for i in 1..n {
                // SAFETY: `wait` returned; the mailboxes are back with us.
                let data = unsafe { &mut *rt.data_ptr(i) };
                tagged.append(&mut data.tagged);
            }
        }
        // Drop routing entries for media the shards just evicted, keeping
        // the pool index in lock-step with the per-shard media indexes.
        // Single-shard pools never populate the index, so there is nothing
        // to keep in step.
        if self.shards.len() > 1 {
            let shards = &self.shards;
            self.media_to_shard.retain(|(ip, port), shard| {
                shards[*shard].factbase().media_lookup(*ip, *port).is_some()
            });
        }
    }

    /// Test hook: pretends the host has `workers` hardware threads so the
    /// handoff paths are exercised even on a single-core CI box.
    #[cfg(test)]
    fn force_workers(&mut self, workers: usize) {
        self.workers = workers;
    }

    /// Test hook: runs a panicking job on one worker to exercise poison
    /// propagation end to end.
    #[cfg(test)]
    fn inject_worker_panic(&mut self, shard: usize) {
        let rt = self.runtime.as_ref().expect("multi-shard pool has workers");
        rt.check_poison();
        // SAFETY: no job in flight; the pool thread owns the mailbox.
        let data = unsafe { &mut *rt.data_ptr(shard) };
        data.job = Job::Panic;
        rt.begin(1);
        rt.publish(shard);
        rt.wait();
        rt.check_poison();
    }
}

/// Drains one shard's routed queue (leaving its capacity in place) through
/// the shard engine, on the pool thread or a worker.
fn drain_one(
    vids: &mut Vids,
    queue: &mut Vec<Routed>,
    alerts: &mut Vec<(MergeKey, Alert)>,
    misses: &mut Vec<Miss>,
) {
    for (idx, t, part) in queue.drain(..) {
        ingest_part(vids, idx, t, part, alerts, misses);
    }
}

/// Delivers one routed part to its shard engine, tagging every alert with
/// its merge key. Shared by the queued drain path and the direct-dispatch
/// routing pass; per-shard order is the same under both because routing is
/// the sequential packet-order pass.
fn ingest_part(
    vids: &mut Vids,
    idx: usize,
    t: u64,
    part: Part,
    alerts: &mut Vec<(MergeKey, Alert)>,
    misses: &mut Vec<Miss>,
) {
    match part {
        Part::Register(event) => {
            let mut sink = TaggedSink::packet(alerts, idx, 2);
            vids.ingest_register(event, t, &mut sink);
        }
        Part::InviteFlood { event, dst_ip } => {
            let mut sink = TaggedSink::packet(alerts, idx, 1);
            vids.ingest_invite_flood(event, dst_ip, t, &mut sink);
        }
        Part::Call {
            call_id,
            event,
            is_initial_invite,
            is_request,
            dst_ip,
        } => {
            let mut sink = TaggedSink::packet(alerts, idx, 2);
            if let Some(miss) =
                vids.ingest_call_event(call_id, event, is_initial_invite, is_request, t, &mut sink)
            {
                misses.push(Miss {
                    idx,
                    t,
                    dst_ip,
                    src_ip: miss.src_ip,
                });
            }
        }
        Part::Rtp(event) => {
            let mut sink = TaggedSink::packet(alerts, idx, 2);
            vids.ingest_rtp(event, t, &mut sink);
        }
    }
}

impl Monitor for VidsPool {
    fn process(&mut self, packet: &Packet, now: SimTime, sink: &mut dyn AlertSink) {
        self.process_batch(std::slice::from_ref(packet), now, sink);
    }

    fn tick(&mut self, now: SimTime, sink: &mut dyn AlertSink) {
        self.tick(now, sink);
    }

    fn alerts(&self) -> &[Alert] {
        VidsPool::alerts(self)
    }

    fn counters(&self) -> VidsCounters {
        VidsPool::counters(self)
    }

    fn memory_bytes(&self) -> usize {
        VidsPool::memory_bytes(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sink::{CollectSink, NullSink};
    use vids_netsim::packet::{Address, Payload};
    use vids_sdp::{Codec, SessionDescription};
    use vids_sip::message::Request;
    use vids_sip::{Method, SipUri, StatusCode};

    const CALLER: Address = Address::new(10, 1, 0, 10, 5060);
    const CALLEE: Address = Address::new(10, 2, 0, 10, 5060);

    fn pkt(src: Address, dst: Address, payload: Payload) -> Packet {
        Packet {
            src,
            dst,
            payload,
            id: 0,
            sent_at: SimTime::ZERO,
        }
    }

    fn invite(call_id: &str) -> Request {
        let sdp = SessionDescription::audio_offer("alice", "10.1.0.10", 20_000, &[Codec::G729]);
        Request::invite(
            &SipUri::new("alice", "a.example.com"),
            &SipUri::new("bob", "b.example.com"),
            call_id,
        )
        .with_body(vids_sdp::MIME_TYPE, sdp.to_string())
    }

    /// A small trace exercising floods, unknown calls and junk.
    fn mixed_trace() -> Vec<(Packet, SimTime)> {
        let mut trace = Vec::new();
        for i in 0..12u64 {
            let inv = invite(&format!("mix-{i}"));
            trace.push((
                pkt(CALLER, CALLEE, Payload::Sip(inv.to_string())),
                SimTime::from_millis(i * 5),
            ));
        }
        let ghost = invite("ghost");
        let bye = Request::in_dialog(Method::Bye, &ghost, 2, Some("tt"));
        trace.push((
            pkt(CALLER, CALLEE, Payload::Sip(bye.to_string())),
            SimTime::from_millis(70),
        ));
        let ok = ghost.response(StatusCode::OK);
        for i in 0..12u64 {
            trace.push((
                pkt(CALLEE, CALLER, Payload::Sip(ok.to_string())),
                SimTime::from_millis(80 + i),
            ));
        }
        trace.push((
            pkt(CALLER, CALLEE, Payload::Sip("garbage".to_owned())),
            SimTime::from_millis(95),
        ));
        trace
    }

    fn shards(n: usize) -> Config {
        Config::builder().shards(n).build().unwrap()
    }

    /// What the ingest layer does to a datagram, applied to a simulated
    /// packet: classify the raw payload bytes off the "wire".
    fn wire_events(packets: &[Packet]) -> Vec<WireEvent> {
        use crate::classify::{classify_wire, WireProto};
        packets
            .iter()
            .map(|p| WireEvent {
                classified: match &p.payload {
                    Payload::Sip(text) => {
                        classify_wire(WireProto::Sip, text.as_bytes(), p.src, p.dst)
                    }
                    Payload::Rtp(bytes) => classify_wire(WireProto::Rtp, bytes, p.src, p.dst),
                    Payload::Raw(_) => Classified::Ignored,
                },
                at: p.sent_at,
            })
            .collect()
    }

    #[test]
    fn wire_batch_matches_packet_batch() {
        let packets: Vec<Packet> = mixed_trace()
            .into_iter()
            .map(|(mut p, at)| {
                p.sent_at = at;
                p
            })
            .collect();

        let mut by_packet = VidsPool::new(shards(4));
        let mut packet_sink = CollectSink::new();
        by_packet.process_batch(&packets, SimTime::ZERO, &mut packet_sink);
        by_packet.tick(SimTime::from_secs(30), &mut packet_sink);

        let mut events = wire_events(&packets);
        let mut by_wire = VidsPool::new(shards(4));
        let mut wire_sink = CollectSink::new();
        by_wire.process_wire_batch(&mut events, SimTime::ZERO, &mut wire_sink);
        by_wire.tick(SimTime::from_secs(30), &mut wire_sink);

        assert!(!packet_sink.is_empty(), "trace should raise alerts");
        assert_eq!(packet_sink.alerts(), wire_sink.alerts());
        assert_eq!(by_packet.counters(), by_wire.counters());
        assert_eq!(by_packet.cpu_busy(), by_wire.cpu_busy());
        assert!(events.is_empty(), "wire batch drains the caller's buffer");
    }

    #[test]
    fn pool_matches_plain_vids_packet_for_packet() {
        let mut plain = Vids::new(Config::default());
        let mut pool = VidsPool::new(shards(4));
        let mut plain_sink = CollectSink::new();
        let mut pool_sink = CollectSink::new();
        for (packet, at) in mixed_trace() {
            plain.process(&packet, at, &mut plain_sink);
            Monitor::process(&mut pool, &packet, at, &mut pool_sink);
        }
        plain.tick(SimTime::from_secs(30), &mut plain_sink);
        pool.tick(SimTime::from_secs(30), &mut pool_sink);
        assert!(!plain_sink.is_empty(), "trace should raise alerts");
        assert_eq!(plain_sink.alerts(), pool_sink.alerts());
        assert_eq!(plain.alerts(), pool.alerts());
        assert_eq!(plain.counters(), pool.counters());
    }

    #[test]
    fn shard_count_does_not_change_batched_output() {
        let trace = mixed_trace();
        let packets: Vec<Packet> = trace
            .iter()
            .map(|(p, at)| {
                let mut p = p.clone();
                p.sent_at = *at;
                p
            })
            .collect();
        let mut reference: Option<Vec<Alert>> = None;
        for n in [1usize, 4, 8] {
            let mut pool = VidsPool::new(shards(n));
            let mut sink = CollectSink::new();
            pool.process_batch(&packets, SimTime::ZERO, &mut sink);
            pool.tick(SimTime::from_secs(30), &mut sink);
            let out = sink.into_alerts();
            match &reference {
                None => reference = Some(out),
                Some(expected) => assert_eq!(expected, &out, "{n} shards diverged"),
            }
        }
        assert!(!reference.unwrap().is_empty());
    }

    #[test]
    fn rtp_routes_to_the_call_owning_shard() {
        let mut pool = VidsPool::new(shards(8));
        let inv = invite("routed-1");
        let answer = SessionDescription::audio_offer("bob", "10.2.0.10", 30_000, &[Codec::G729]);
        let ok = inv
            .response(StatusCode::OK)
            .with_to_tag("tt")
            .with_body(vids_sdp::MIME_TYPE, answer.to_string());
        let batch = [
            pkt(CALLER, CALLEE, Payload::Sip(inv.to_string())),
            pkt(CALLEE, CALLER, Payload::Sip(ok.to_string())),
        ];
        pool.process_batch(&batch, SimTime::ZERO, &mut NullSink);

        // Both endpoints' negotiated coordinates point at the shard that owns
        // the call, whatever hash(ip:port) alone would have said.
        let call_shard = pool
            .media_shard("10.2.0.10", 30_000)
            .expect("answer SDP indexed");
        assert_eq!(pool.media_shard("10.1.0.10", 20_000), Some(call_shard));
        assert_eq!(pool.shard(call_shard).monitored_calls(), 1);

        // RTP to those coordinates reaches the call's RTP machine...
        let media = vids_rtp::packet::RtpPacket::new(18, 100, 800, 7).with_payload(vec![0; 10]);
        let rtp = pkt(
            CALLER.with_port(20_000),
            CALLEE.with_port(30_000),
            Payload::Rtp(media.to_bytes()),
        );
        pool.process_batch(&[rtp], SimTime::from_millis(10), &mut NullSink);
        assert_eq!(pool.counters().unassociated_rtp, 0);
        assert_eq!(pool.counters().rtp_packets, 1);

        // ...while RTP to unknown coordinates is flagged, once.
        let stray = pkt(
            CALLER.with_port(20_000),
            Address::new(10, 9, 9, 9, 40_000),
            Payload::Rtp(media.to_bytes()),
        );
        let mut stray_sink = CollectSink::new();
        pool.process_batch(&[stray], SimTime::from_millis(20), &mut stray_sink);
        let alerts = stray_sink.into_alerts();
        assert_eq!(pool.counters().unassociated_rtp, 1);
        assert!(alerts.iter().any(|a| a.label == "unassociated-rtp"));
    }

    #[test]
    fn builder_shards_size_the_pool() {
        let pool = VidsPool::new(shards(6));
        assert_eq!(pool.shards(), 6);
        assert_eq!(pool.monitored_calls(), 0);
        assert!(Config::builder().shards(0).build().is_err());
    }

    /// A batch big enough to cross both handoff thresholds, with calls,
    /// media, floods and strays spread across shards.
    fn big_trace() -> Vec<Packet> {
        let mut packets = Vec::new();
        for i in 0..300u64 {
            let inv = invite(&format!("big-{i:03}"));
            let mut p = pkt(CALLER, CALLEE, Payload::Sip(inv.to_string()));
            p.sent_at = SimTime::from_millis(i);
            packets.push(p);
        }
        packets
    }

    #[test]
    fn worker_handoff_matches_inline_drain() {
        let packets = big_trace();
        // Forced to hand off to the persistent workers (even on a 1-core
        // host, where the default path would drain inline)...
        let mut threaded = VidsPool::new(shards(4));
        threaded.force_workers(4);
        let mut threaded_sink = CollectSink::new();
        threaded.process_batch(&packets, SimTime::ZERO, &mut threaded_sink);
        threaded.tick(SimTime::from_secs(30), &mut threaded_sink);
        // ...versus forced inline on the same shard count.
        let mut inline = VidsPool::new(shards(4));
        inline.force_workers(1);
        let mut inline_sink = CollectSink::new();
        inline.process_batch(&packets, SimTime::ZERO, &mut inline_sink);
        inline.tick(SimTime::from_secs(30), &mut inline_sink);
        assert_eq!(threaded_sink.alerts(), inline_sink.alerts());
        assert_eq!(threaded.counters(), inline.counters());
        assert_eq!(threaded.monitored_calls(), inline.monitored_calls());
    }

    #[test]
    fn worker_panic_propagates_and_drop_joins() {
        // Silence the injected panic's default backtrace print; restore
        // the hook afterwards.
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(|_| {}));
        let mut pool = VidsPool::new(shards(4));
        let first = std::panic::catch_unwind(AssertUnwindSafe(|| pool.inject_worker_panic(2)));
        assert!(first.is_err(), "worker panic must surface on the caller");
        // The pool is poisoned: the next API call re-raises instead of
        // deadlocking on the dead worker.
        let second = std::panic::catch_unwind(AssertUnwindSafe(|| {
            pool.process_batch(&[], SimTime::ZERO, &mut NullSink);
        }));
        assert!(second.is_err(), "poisoned pool must keep failing loudly");
        std::panic::set_hook(prev);
        // Dropping the poisoned pool must join every worker, not hang.
        drop(pool);
    }

    #[test]
    fn pool_drop_joins_workers_after_traffic() {
        let mut pool = VidsPool::new(shards(4));
        pool.force_workers(4);
        pool.process_batch(&big_trace(), SimTime::ZERO, &mut NullSink);
        drop(pool); // joins 4 parked workers; must not hang or leak
    }
}
