//! [`VidsPool`]: the scale-out analysis engine.
//!
//! The paper's engine (§5) is strictly per-call: every packet belongs to one
//! call group (SIP by Call-ID, RTP by the media coordinates the SIP machine
//! published) and each group's machines are independent of every other
//! group's. That independence is exactly a sharding invariant, so the pool
//! hash-partitions the fact base across `Config::shards` private [`Vids`]
//! engines and drains them on scoped threads:
//!
//! * **SIP call traffic** is pinned to `hash(Call-ID) % shards`.
//! * **RTP** is routed through a pool-owned media-coordinate → shard index
//!   that mirrors the per-shard `FactBase::media_lookup` table, so a call's
//!   media always lands on the shard holding its SIP machine — the δ-sync
//!   channels never cross a shard boundary.
//! * **Per-destination flood machines** (INVITE flood, DRDoS reflection) are
//!   pinned by `hash(dst_ip)`, and **registration machines** by
//!   `hash(address-of-record)`.
//!
//! Ingestion is batch-oriented: [`VidsPool::process_batch`] classifies the
//! batch in parallel, routes sequentially (the only globally ordered step),
//! drains every shard concurrently, and then merges shard output on a
//! deterministic key — `(packet index, phase, sweep scope, emission seq)` —
//! so the alert sequence is byte-identical whatever the shard count,
//! including a 1-shard pool vs. a plain [`Vids`]. Idle-timer sweeps are
//! amortized to at most one per batch instead of the single engine's
//! per-packet interval check.
//!
//! Parallel phases run on a **persistent worker runtime** (one long-lived
//! thread per shard, spawned at construction): a batch handoff publishes a
//! job descriptor into the worker's mailbox cell and unparks it — no thread
//! creation, no queue allocation, no channel. Workers write into
//! preallocated per-shard buffers whose capacity is reused across batches,
//! so the steady-state handoff path does not allocate. The pool thread
//! works too (it drains the busiest shard while workers drain the rest),
//! and blocks until every published job completes, which is what keeps the
//! raw pointers inside a job valid and the output merge deterministic: by
//! merge time all shard output is back on one thread, ordered by key. See
//! DESIGN.md §7d for the mailbox protocol and panic/shutdown semantics.
//!
//! For live ingestion there is a second, pipelined runtime: receiver
//! threads pre-compute each datagram's routing hashes ([`route_hint`],
//! carried by [`PreRouted`]) and a [`VidsPool::with_pipeline`] session
//! publishes whole batches as *epochs* into per-shard bounded rings drained
//! by persistent shard workers — the coordinator overlaps routing batch
//! `k+1` with the shards draining batch `k`, instead of blocking at a
//! barrier inside every batch. Alerts still merge in epoch order on the
//! same deterministic key, so the output is byte-identical to calling
//! [`VidsPool::process_wire_batch`] with the same batches. See DESIGN.md
//! §7i for the epoch-ring protocol and why the *residual* routing pass
//! (media index, monotonic clamp, dedup) stays sequential on the
//! coordinator.

use std::any::Any;
use std::cell::UnsafeCell;
use std::cmp::Ordering;
use std::collections::{HashSet, VecDeque};
use std::panic::{self, AssertUnwindSafe};
use std::sync::atomic::Ordering::{AcqRel, Acquire, Relaxed, Release};
use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, AtomicUsize};
use std::sync::{Arc, Mutex};
use std::thread::{self, Thread};
use std::time::{Duration, Instant};

use vids_efsm::{sym, Event, Sym};
use vids_netsim::packet::Packet;
use vids_netsim::time::SimTime;
use vids_scan::fxhash::FxHashMap;
use vids_telemetry::{Counter, Gauge, HistId, Registry, Snapshot};

use crate::alert::{Alert, AlertKind};
use crate::classify::{classify, Classified};
use crate::config::Config;
use crate::cost::{CostModel, CpuAccount};
use crate::engine::{Vids, VidsCounters, SWEEP_INTERVAL_MS};
use crate::factbase::FactBaseStats;
use crate::monitor::Monitor;
use crate::sink::AlertSink;

/// Below this many routed parts a batch is drained on the calling thread;
/// spawning scoped threads costs more than it saves.
const PARALLEL_DRAIN_THRESHOLD: usize = 64;

/// Below this many packets classification stays on the calling thread.
const PARALLEL_CLASSIFY_THRESHOLD: usize = 256;

/// Merge key: (packet index, phase, sweep scope, per-sink emission seq).
///
/// Phases order the parts of one packet the way the single engine would have
/// emitted them: 0 = batch-start sweep (before any packet), 1 = the
/// destination-pinned INVITE-flood part, 2 = the call/register/media part,
/// 3 = the deferred DRDoS reflection count for an unassociated response.
/// The scope is only populated for sweep alerts (phase 0), where different
/// calls' alerts share one key prefix and the single engine sweeps calls in
/// sorted-Call-ID order. It is an interned symbol, not a `String`: tagging
/// an alert never allocates, and the merge compares 4-byte ids' *text*
/// (interner ids depend on arrival order, which varies with shard count).
type MergeKey = (usize, u8, Sym, u32);

/// One shard-pinned routed part, stamped with packet index and clamped time.
type Routed = (usize, u64, Part);

/// Merge order: `(packet idx, phase, scope text, emission seq)`. The scope
/// symbol must be compared by its string — see [`MergeKey`].
fn merge_cmp(a: &(MergeKey, Alert), b: &(MergeKey, Alert)) -> Ordering {
    let (ai, ap, a_scope, a_seq) = &a.0;
    let (bi, bp, b_scope, b_seq) = &b.0;
    (ai, ap, a_scope.as_str(), a_seq).cmp(&(bi, bp, b_scope.as_str(), b_seq))
}

/// FNV-1a: a fixed, platform-independent hash so call→shard placement is
/// deterministic (std's `RandomState` would randomize it per process).
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for &byte in bytes {
        hash ^= byte as u64;
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// Shard placement for a pre-computed key hash. `hash % 1 == 0`, so this
/// agrees with `VidsPool::shard_of`'s single-shard short-circuit too.
#[inline]
fn shard_from_hash(hash: u64, shards: usize) -> usize {
    if shards == 1 {
        0
    } else {
        (hash % shards as u64) as usize
    }
}

/// A sink that tags every alert with the merge key of the part being drained.
struct TaggedSink<'a> {
    out: &'a mut Vec<(MergeKey, Alert)>,
    idx: usize,
    phase: u8,
    /// Sweep mode: scope alerts by their Call-ID so the merge reproduces the
    /// single engine's sorted sweep order across shards.
    scope_from_call: bool,
    seq: u32,
}

impl<'a> TaggedSink<'a> {
    fn packet(out: &'a mut Vec<(MergeKey, Alert)>, idx: usize, phase: u8) -> Self {
        TaggedSink {
            out,
            idx,
            phase,
            scope_from_call: false,
            seq: 0,
        }
    }

    fn sweep(out: &'a mut Vec<(MergeKey, Alert)>) -> Self {
        TaggedSink {
            out,
            idx: 0,
            phase: 0,
            scope_from_call: true,
            seq: 0,
        }
    }
}

impl AlertSink for TaggedSink<'_> {
    fn accept(&mut self, alert: Alert) {
        let scope = if self.scope_from_call {
            // The Call-ID names a monitored call, so it is already interned
            // and `lookup` never allocates (nor grows the interner).
            alert
                .call_id
                .as_deref()
                .and_then(Sym::lookup)
                .unwrap_or(sym::EMPTY)
        } else {
            sym::EMPTY
        };
        self.out
            .push(((self.idx, self.phase, scope, self.seq), alert));
        self.seq += 1;
    }
}

/// One classified datagram plus its receive timestamp, produced by the
/// wire-ingestion layer and consumed by [`VidsPool::process_wire_batch`].
/// The receive timestamp plays the role `Packet::sent_at` plays on the
/// in-process path: it feeds the monotonic per-packet clock that drives
/// the timer sweeps.
#[derive(Debug, Clone, PartialEq)]
pub struct WireEvent {
    /// What the classifier made of the datagram.
    pub classified: Classified,
    /// When the datagram was received.
    pub at: SimTime,
}

/// The shard-routing hashes of one classified datagram, pre-computed on a
/// receiver thread so the pipeline coordinator's sequential pass does no
/// hashing. Pure FNV-1a over the same key bytes `route_one` would hash, so
/// `hash % shards` lands on exactly the shard `shard_of` would pick for any
/// shard count. Constructed only by [`route_hint`], keeping the two in
/// lock-step.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct RouteHint {
    /// Hash of the call-pinned key: the address-of-record for REGISTER, the
    /// Call-ID for other SIP, the media-coordinate fallback for RTP.
    call: u64,
    /// Hash of the destination IP, for the per-destination flood machines.
    /// Zero (unused) for everything but non-REGISTER SIP.
    flood: u64,
}

/// One classified datagram with its receiver-side routing hashes, the unit
/// of work receivers hand to a [`PipelineIngress`] session.
#[derive(Debug, Clone, PartialEq)]
pub struct PreRouted {
    /// What the classifier made of the datagram.
    pub classified: Classified,
    /// When the datagram was received.
    pub at: SimTime,
    hint: RouteHint,
}

impl PreRouted {
    /// Stamps a classified datagram with its routing hashes. Allocation-free
    /// once the classifier has interned the datagram's symbols.
    pub fn new(classified: Classified, at: SimTime) -> Self {
        let hint = route_hint(&classified);
        PreRouted {
            classified,
            at,
            hint,
        }
    }
}

/// Computes the shard-routing hashes for one classified datagram — the
/// receiver-side half of routing. Everything that needs *global* state
/// (media-index probes and inserts, the monotonic clamp, the malformed
/// dedup) stays on the coordinator; the hint carries only pure per-packet
/// hashes.
pub fn route_hint(c: &Classified) -> RouteHint {
    match c {
        Classified::Sip {
            call_id,
            event,
            dst_ip,
            ..
        } => {
            if event.name == sym::SIP_REGISTER {
                let aor = event.str_arg("aor").unwrap_or("");
                RouteHint {
                    call: fnv1a(aor.as_bytes()),
                    flood: 0,
                }
            } else {
                RouteHint {
                    call: fnv1a(call_id.as_str().as_bytes()),
                    flood: fnv1a(&dst_ip.to_le_bytes()),
                }
            }
        }
        Classified::Rtp { event } => {
            // The media-coordinate fallback hash (see `route_one`): used
            // only when no call negotiated these coordinates, which the
            // coordinator decides at its media-index probe.
            let ip = event.sym_arg(sym::DST_IP).unwrap_or_default();
            let port = event.uint_arg(sym::DST_PORT).unwrap_or(0);
            let mut h = fnv1a(ip.as_str().as_bytes());
            for byte in port.to_le_bytes() {
                h = (h ^ byte as u64).wrapping_mul(0x0000_0100_0000_01b3);
            }
            RouteHint { call: h, flood: 0 }
        }
        Classified::Malformed { .. } | Classified::Ignored => RouteHint::default(),
    }
}

impl RouteHint {
    /// The call-pinned key hash: address-of-record for REGISTER, Call-ID
    /// for other SIP, the media-coordinate fallback for RTP. A cluster
    /// gateway uses the same hash the pool shards by to pick the owning
    /// *node* (rendezvous over this value), so moving between one pool and
    /// a federation never re-keys anything.
    pub fn call_hash(&self) -> u64 {
        self.call
    }

    /// The destination-IP hash feeding the per-destination flood machines;
    /// zero (unused) for everything but non-REGISTER SIP.
    pub fn flood_hash(&self) -> u64 {
        self.flood
    }
}

/// The pool's key hash (FNV-1a), public for layers that must agree with
/// shard/node placement — e.g. a cluster gateway hashing a DRDoS miss's
/// destination IP exactly as [`route_hint`] would have.
pub fn key_hash(bytes: &[u8]) -> u64 {
    fnv1a(bytes)
}

/// Which protocol-role parts of one classified datagram a federation
/// member ingests. A single SIP INVITE has a call-pinned part (the per-call
/// machine) and a destination-pinned part (the INVITE-flood machine); a
/// cluster gateway may place those on different nodes, sending the same
/// event to both with complementary masks. The union of masks across nodes
/// is exactly one full ingest, so a federation reproduces the single
/// pool's work with nothing counted twice.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PartMask {
    /// Ingest the call/register/media part (also malformed/ignored
    /// accounting — the gateway routes those to exactly one node).
    pub call: bool,
    /// Ingest the destination-pinned INVITE-flood part.
    pub flood: bool,
}

impl PartMask {
    /// Both parts — what every non-federated path does.
    pub const ALL: PartMask = PartMask {
        call: true,
        flood: true,
    };
}

/// One classified datagram as a federation member receives it from the
/// gateway: pre-clamped time, *global* packet index, and the part mask.
#[derive(Debug, Clone, PartialEq)]
pub struct FedEvent {
    /// What the classifier made of the datagram.
    pub classified: Classified,
    /// The packet clock, already clamped monotonic by the gateway across
    /// the global batch order — so every node's view of packet time agrees
    /// with the single pool's sequential routing pass.
    pub t_ms: u64,
    /// The datagram's index in the gateway's global batch. Merge keys are
    /// built on this, which is what makes alerts from different nodes
    /// interleave exactly as one pool would have emitted them.
    pub idx: usize,
    /// Which parts of the event this pool owns.
    pub mask: PartMask,
}

/// A key-tagged alert exported by a federated batch. The key is the same
/// deterministic merge key the pool uses internally, built on the *global*
/// packet index, so the gateway can sort alerts from every node with
/// [`FedAlert::merge_order`] and obtain the single pool's byte-identical
/// alert sequence.
#[derive(Debug, Clone)]
pub struct FedAlert {
    key: MergeKey,
    /// The alert itself.
    pub alert: Alert,
}

impl FedAlert {
    /// The deterministic merge order — `(packet idx, phase, scope text,
    /// emission seq)`, comparing the scope symbol by its string exactly as
    /// the in-pool merge does.
    pub fn merge_order(a: &FedAlert, b: &FedAlert) -> Ordering {
        let (ai, ap, a_scope, a_seq) = &a.key;
        let (bi, bp, b_scope, b_seq) = &b.key;
        (ai, ap, a_scope.as_str(), a_seq).cmp(&(bi, bp, b_scope.as_str(), b_seq))
    }
}

/// An unassociated SIP response detected by one federation member, to be
/// counted by whichever member owns the destination IP — the cross-node
/// generalization of the pool's deferred DRDoS phase. The gateway sorts
/// all nodes' misses by `idx` and feeds each to
/// [`VidsPool::apply_federated_misses`] on the owning node.
#[derive(Debug, Clone, Copy)]
pub struct FedMiss {
    /// Global packet index of the response.
    pub idx: usize,
    /// Its clamped packet time.
    pub t_ms: u64,
    /// Destination IP the miss counts against; hash with [`key_hash`] over
    /// `dst_ip.to_le_bytes()` to pick the owning node.
    pub dst_ip: u32,
    src_ip: Sym,
}

/// What one federation member produced for one global batch.
#[derive(Debug, Default)]
pub struct FedOutput {
    /// Key-tagged alerts, unsorted; the gateway merges across nodes.
    pub alerts: Vec<FedAlert>,
    /// DRDoS misses for the gateway to route to their destination owners.
    pub misses: Vec<FedMiss>,
}

/// One shard-pinned part of a routed packet.
enum Part {
    Register(Event),
    InviteFlood {
        event: Event,
        dst_ip: u32,
    },
    Call {
        call_id: Sym,
        event: Event,
        is_initial_invite: bool,
        is_request: bool,
        dst_ip: u32,
    },
    Rtp(Event),
}

/// An unassociated SIP response detected on the call-owning shard, to be
/// counted on the destination-owning shard after the parallel drain.
#[derive(Clone, Copy)]
struct Miss {
    idx: usize,
    t: u64,
    dst_ip: u32,
    src_ip: Sym,
}

/// The mailbox protocol's state word and transition functions, split out so
/// the `vids-harness` exhaustive interleaving checker exercises *these*
/// definitions, not a transcription that could drift from the code. The
/// worker side of the protocol ([`worker_loop`]) calls
/// [`mailbox::worker_observe`] / [`mailbox::worker_publish`] verbatim; the
/// coordinator side's steps (arm pending → write job → publish → wait) are
/// modeled against the constants here. Hidden: this is a verification seam,
/// not API.
#[doc(hidden)]
pub mod mailbox {
    /// Mailbox is empty; the pool thread owns the cell's buffers.
    pub const IDLE: u32 = 0;
    /// A job is published; the worker owns the cell's buffers.
    pub const HAS_WORK: u32 = 1;
    /// The runtime is being dropped; the worker must exit its loop.
    pub const SHUTDOWN: u32 = 2;
    /// A job panicked; its payload is parked in the cell.
    pub const POISONED: u32 = 3;

    /// What a worker does after observing the state word.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum WorkerStep {
        /// Take ownership of the mailbox and run the job.
        Run,
        /// Leave the worker loop (runtime shutdown).
        Exit,
        /// Nothing to do: spin, then park.
        Wait,
    }

    /// The worker-side decision on an observed state word.
    #[inline]
    pub fn worker_observe(state: u32) -> WorkerStep {
        match state {
            HAS_WORK => WorkerStep::Run,
            SHUTDOWN => WorkerStep::Exit,
            _ => WorkerStep::Wait,
        }
    }

    /// The state word a worker publishes after finishing a job, handing the
    /// mailbox back to the pool thread.
    #[inline]
    pub fn worker_publish(panicked: bool) -> u32 {
        if panicked {
            POISONED
        } else {
            IDLE
        }
    }
}

use mailbox::{HAS_WORK, IDLE, POISONED, SHUTDOWN};

/// Spins before a worker parks, covering back-to-back phase handoffs of one
/// batch without a syscall round-trip.
const SPIN_LIMIT: u32 = 64;

/// A unit of work published to one worker.
///
/// The raw pointers keep the handoff allocation-free; they are valid for
/// the whole job because the pool thread blocks in [`WorkerRuntime::wait`]
/// before the borrows they were derived from end, and no two concurrent
/// jobs reference the same shard engine.
enum Job {
    Idle,
    /// Drain the cell's routed `queue` through the shard engine.
    Drain {
        engine: *mut Vids,
    },
    /// `force_maintain` the shard engine at `now_ms`.
    Sweep {
        engine: *mut Vids,
        now_ms: u64,
    },
    /// Classify `packets[offset..offset + len]` into the cell's buffer.
    Classify {
        base: *const Packet,
        offset: usize,
        len: usize,
    },
    /// Test hook: panic inside the job to exercise poisoning.
    #[cfg(test)]
    Panic,
}

/// One worker's mailbox: the pending job plus reusable input/output buffers
/// whose capacity persists across batches.
struct ShardData {
    queue: Vec<Routed>,
    tagged: Vec<(MergeKey, Alert)>,
    misses: Vec<Miss>,
    classified: Vec<Classified>,
    job: Job,
}

struct ShardCell {
    /// [`IDLE`] / [`HAS_WORK`] / [`SHUTDOWN`] / [`POISONED`].
    state: AtomicU32,
    data: UnsafeCell<ShardData>,
    /// Payload of a job that panicked, re-thrown on the pool thread.
    panic: Mutex<Option<Box<dyn Any + Send>>>,
}

// SAFETY: `data` is owned by exactly one thread at a time. The worker owns
// it between observing HAS_WORK (Acquire) and publishing IDLE/POISONED
// (Release); the pool thread owns it otherwise, and only touches it while
// no job is pending. The raw pointers inside `Job` are dereferenced only
// during that worker-owned window, while the pool thread is blocked (or
// working a disjoint shard), keeping their referents alive and unaliased.
unsafe impl Send for ShardCell {}
unsafe impl Sync for ShardCell {}

/// State shared between the pool thread and its workers.
struct Shared {
    cells: Vec<ShardCell>,
    /// Jobs published but not yet completed in the current phase.
    pending: AtomicUsize,
    /// The pool thread blocked in `wait()`, unparked when `pending` drains.
    coordinator: Mutex<Option<Thread>>,
    /// Workers currently parked (exported as [`Gauge::WorkerParked`]).
    parked: AtomicU64,
    /// Workers that have finished thread startup and entered their loop.
    /// `spawn` blocks on this so the one-time startup allocations the std
    /// runtime makes on a new thread can never bleed into a caller's
    /// steady-state window (the allocation budget counts every thread).
    started: AtomicUsize,
}

/// The persistent worker threads plus their shared mailboxes. Spawned once
/// at pool construction for multi-shard pools; dropped (joining every
/// worker) with the pool.
struct WorkerRuntime {
    shared: Arc<Shared>,
    handles: Vec<thread::JoinHandle<()>>,
}

impl WorkerRuntime {
    fn spawn(n: usize) -> Self {
        let shared = Arc::new(Shared {
            cells: (0..n)
                .map(|_| ShardCell {
                    state: AtomicU32::new(IDLE),
                    data: UnsafeCell::new(ShardData {
                        queue: Vec::new(),
                        tagged: Vec::new(),
                        misses: Vec::new(),
                        classified: Vec::new(),
                        job: Job::Idle,
                    }),
                    panic: Mutex::new(None),
                })
                .collect(),
            pending: AtomicUsize::new(0),
            coordinator: Mutex::new(None),
            parked: AtomicU64::new(0),
            started: AtomicUsize::new(0),
        });
        let handles = (0..n)
            .map(|i| {
                let shared = Arc::clone(&shared);
                thread::Builder::new()
                    .name(format!("vids-shard-{i}"))
                    .spawn(move || worker_loop(&shared, i))
                    .expect("spawn shard worker")
            })
            .collect();
        while shared.started.load(Acquire) < n {
            thread::yield_now();
        }
        WorkerRuntime { shared, handles }
    }

    /// The cell's mailbox. Dereference only while the owning side holds the
    /// cell (see the `ShardCell` safety note).
    fn data_ptr(&self, i: usize) -> *mut ShardData {
        self.shared.cells[i].data.get()
    }

    /// Registers the pool thread for wakeup and arms the pending count with
    /// the number of jobs the phase will publish. Storing the full count
    /// *before* the first publish means an instantly-finishing worker
    /// cannot drive `pending` to zero early.
    fn begin(&self, jobs: usize) {
        *self.shared.coordinator.lock().unwrap() = Some(thread::current());
        self.shared.pending.store(jobs, Release);
    }

    /// Hands the already-written job in cell `i` to its worker.
    fn publish(&self, i: usize) {
        self.shared.cells[i].state.store(HAS_WORK, Release);
        self.handles[i].thread().unpark();
    }

    /// Blocks until every published job of the phase has completed. The
    /// Acquire load pairs with each worker's Release decrement, so on
    /// return all worker writes (engine state, output buffers) are visible.
    fn wait(&self) {
        while self.shared.pending.load(Acquire) != 0 {
            thread::park();
        }
        *self.shared.coordinator.lock().unwrap() = None;
    }

    /// Re-throws a panic captured on a worker. The runtime stays poisoned:
    /// later calls panic again instead of deadlocking on a dead shard.
    fn check_poison(&self) {
        for cell in &self.shared.cells {
            if cell.state.load(Acquire) == POISONED {
                match cell.panic.lock().unwrap().take() {
                    Some(payload) => panic::resume_unwind(payload),
                    None => panic!("shard worker previously panicked"),
                }
            }
        }
    }
}

impl Drop for WorkerRuntime {
    fn drop(&mut self) {
        for cell in &self.shared.cells {
            cell.state.store(SHUTDOWN, Release);
        }
        for handle in &self.handles {
            handle.thread().unpark();
        }
        for handle in self.handles.drain(..) {
            // A worker that panicked parked its payload in the cell and
            // kept running its loop; never double-panic out of drop.
            let _ = handle.join();
        }
    }
}

fn worker_loop(shared: &Shared, index: usize) {
    let cell = &shared.cells[index];
    shared.started.fetch_add(1, Release);
    loop {
        let mut spins = 0u32;
        loop {
            match mailbox::worker_observe(cell.state.load(Acquire)) {
                mailbox::WorkerStep::Run => break,
                mailbox::WorkerStep::Exit => return,
                mailbox::WorkerStep::Wait => {}
            }
            if spins < SPIN_LIMIT {
                spins += 1;
                std::hint::spin_loop();
            } else {
                shared.parked.fetch_add(1, Relaxed);
                thread::park();
                shared.parked.fetch_sub(1, Relaxed);
            }
        }
        // SAFETY: observing HAS_WORK (Acquire) transferred the mailbox to
        // this worker; it is handed back by the Release store below.
        let data = unsafe { &mut *cell.data.get() };
        let outcome = panic::catch_unwind(AssertUnwindSafe(|| run_job(data)));
        let panicked = outcome.is_err();
        if let Err(payload) = outcome {
            *cell.panic.lock().unwrap() = Some(payload);
        }
        cell.state.store(mailbox::worker_publish(panicked), Release);
        if shared.pending.fetch_sub(1, AcqRel) == 1 {
            // Last job of the phase: wake the pool thread.
            if let Some(coordinator) = shared.coordinator.lock().unwrap().as_ref() {
                coordinator.unpark();
            }
        }
    }
}

fn run_job(data: &mut ShardData) {
    match std::mem::replace(&mut data.job, Job::Idle) {
        Job::Idle => {}
        Job::Drain { engine } => {
            // SAFETY: the pool thread keeps the engine alive and unaliased
            // for the duration of the job (see `ShardCell`).
            let engine = unsafe { &mut *engine };
            drain_one(engine, &mut data.queue, &mut data.tagged, &mut data.misses);
        }
        Job::Sweep { engine, now_ms } => {
            // SAFETY: as above.
            let engine = unsafe { &mut *engine };
            let mut sink = TaggedSink::sweep(&mut data.tagged);
            engine.force_maintain(now_ms, &mut sink);
        }
        Job::Classify { base, offset, len } => {
            // SAFETY: the batch slice outlives the phase (see `ShardCell`).
            let packets = unsafe { std::slice::from_raw_parts(base.add(offset), len) };
            data.classified.clear();
            data.classified.extend(packets.iter().map(classify));
        }
        #[cfg(test)]
        Job::Panic => panic!("injected shard worker panic"),
    }
}

/// The sharded analysis engine. Construct with a [`Config`] whose `shards`
/// field (see [`Config::builder`]) says how many independent [`Vids`]
/// engines to partition monitored calls across, then feed traffic in
/// batches via [`VidsPool::process_batch`] — or packet-at-a-time through
/// the [`Monitor`] trait, which behaves identically to a plain `Vids`.
pub struct VidsPool {
    shards: Vec<Vids>,
    /// Read-mostly mirror of every shard's media index: negotiated media
    /// coordinates → owning shard. Written only during sequential routing;
    /// probed per RTP packet, so the key is an interned symbol and the probe
    /// never allocates. Not maintained for single-shard pools, which route
    /// everything to shard 0 without hashing.
    media_to_shard: FxHashMap<(Sym, u64), usize>,
    config: Config,
    cost: CostModel,
    cpu: CpuAccount,
    alerts: Vec<Alert>,
    /// Dedup for pool-level (shardless) alerts, i.e. malformed traffic.
    dedup: HashSet<(String, String)>,
    /// Counters for traffic that never reaches a shard.
    extra: VidsCounters,
    last_sweep_ms: u64,
    /// Monotonic clamp over packet timestamps: EFSM networks require
    /// non-decreasing time, so a late-stamped packet is processed at the
    /// batch high-water mark, exactly as a single engine would see it.
    last_packet_ms: u64,
    /// Hardware threads available at construction. On a single-core host
    /// every parallel path degrades to the sequential one — same output
    /// (the merge is deterministic either way), none of the thread
    /// overhead.
    workers: usize,
    /// Telemetry registry when enabled: one slab per shard (wired into the
    /// shard engines) plus a pool-level slab for batch/merge metrics.
    telemetry: Option<Arc<Registry>>,
    /// Reusable per-shard routing queues. Their capacity shuttles between
    /// here and the worker mailboxes (a handoff swaps `Vec`s), so
    /// steady-state routing allocates nothing.
    queues: Vec<Vec<Routed>>,
    /// Reusable classification output for the whole batch, in packet order.
    classified: Vec<Classified>,
    /// Reusable merge buffer of `(key, alert)` pairs for the current batch.
    scratch_tagged: Vec<(MergeKey, Alert)>,
    /// Reusable buffer of deferred DRDoS response misses.
    scratch_misses: Vec<Miss>,
    /// Persistent worker threads; `None` for single-shard pools, which
    /// always drain inline. Workers hold no engine references while idle,
    /// so drop order relative to `shards` is immaterial.
    runtime: Option<WorkerRuntime>,
}

impl VidsPool {
    /// Creates a pool with `config.shards` shards and the default cost model.
    pub fn new(config: Config) -> Self {
        VidsPool::with_cost(config, CostModel::default())
    }

    /// Creates a pool with an explicit cost model. The pool charges the
    /// per-packet CPU cost once, centrally, at routing time; shard-internal
    /// accounting stays zero.
    pub fn with_cost(config: Config, cost: CostModel) -> Self {
        let n = config.shards.max(1);
        VidsPool {
            shards: (0..n).map(|_| Vids::with_cost(config, cost)).collect(),
            media_to_shard: FxHashMap::default(),
            config,
            cost,
            cpu: CpuAccount::new(),
            alerts: Vec::new(),
            dedup: HashSet::new(),
            extra: VidsCounters::default(),
            last_sweep_ms: 0,
            last_packet_ms: 0,
            workers: thread::available_parallelism().map_or(1, |p| p.get()),
            telemetry: None,
            queues: (0..n).map(|_| Vec::new()).collect(),
            classified: Vec::new(),
            scratch_tagged: Vec::new(),
            scratch_misses: Vec::new(),
            // Workers are spawned even on a single-core host (they just
            // stay parked there): whether a batch is handed off or drained
            // inline is a per-batch decision, and the panic/shutdown
            // machinery behaves identically everywhere.
            runtime: (n > 1).then(|| WorkerRuntime::spawn(n)),
        }
    }

    /// Enables telemetry: allocates a [`Registry`] with one slab per shard
    /// plus a pool slab, attaches each shard engine to its slab (with a
    /// transition ring of `ring_capacity` records per shard), and returns
    /// the registry. Call before feeding traffic; recording from then on is
    /// allocation-free.
    pub fn enable_telemetry(&mut self, ring_capacity: usize) -> Arc<Registry> {
        let registry = Arc::new(Registry::new(self.shards.len()));
        for (i, shard) in self.shards.iter_mut().enumerate() {
            shard.attach_telemetry(registry.shard_slab(i), ring_capacity);
        }
        self.telemetry = Some(Arc::clone(&registry));
        registry
    }

    /// A snapshot of the pool's registry at monitor time `now`, when
    /// telemetry is enabled. Refreshes the per-shard gauges (live calls,
    /// fact-base memory) and the pool slab's routing-index memory gauge
    /// before copying.
    pub fn telemetry_snapshot(&self, now: SimTime) -> Option<Snapshot> {
        let registry = self.telemetry.as_ref()?;
        for shard in &self.shards {
            shard.refresh_telemetry_gauges();
        }
        let index_bytes: usize = self
            .media_to_shard
            .keys()
            .map(|(ip, _)| ip.as_str().len() + std::mem::size_of::<((Sym, u64), usize)>())
            .sum();
        registry
            .pool()
            .set_gauge(Gauge::MemoryBytes, index_bytes as u64);
        if let Some(rt) = &self.runtime {
            registry
                .pool()
                .set_gauge(Gauge::WorkerParked, rt.shared.parked.load(Relaxed));
        }
        Some(registry.snapshot(now.as_millis()))
    }

    /// The active configuration.
    pub fn config(&self) -> &Config {
        &self.config
    }

    /// Number of shards.
    pub fn shards(&self) -> usize {
        self.shards.len()
    }

    /// Read access to one shard's engine, for introspection.
    pub fn shard(&self, index: usize) -> &Vids {
        &self.shards[index]
    }

    /// Freezes the EFSM state of one monitored call, whichever shard owns
    /// it. See [`Vids::call_snapshot`].
    pub fn call_snapshot(&self, call_id: &str) -> Option<crate::snapshot::CallSnapshot> {
        self.shards.iter().find_map(|s| s.call_snapshot(call_id))
    }

    /// Every alert raised so far, in deterministic merge order.
    pub fn alerts(&self) -> &[Alert] {
        &self.alerts
    }

    /// Aggregate traffic counters across all shards.
    pub fn counters(&self) -> VidsCounters {
        let mut total = self.extra;
        for shard in &self.shards {
            total += shard.counters();
        }
        total
    }

    /// Calls currently monitored, summed across shards.
    pub fn monitored_calls(&self) -> usize {
        self.shards.iter().map(Vids::monitored_calls).sum()
    }

    /// Aggregate fact-base lifetime statistics. `peak_concurrent` is the sum
    /// of per-shard peaks — an upper bound on the true pool-wide peak, since
    /// the shards need not have peaked simultaneously.
    pub fn factbase_stats(&self) -> FactBaseStats {
        let mut total = FactBaseStats::default();
        for shard in &self.shards {
            let s = shard.factbase_stats();
            total.calls_created += s.calls_created;
            total.calls_evicted += s.calls_evicted;
            total.peak_concurrent += s.peak_concurrent;
        }
        total
    }

    /// Fact-base memory footprint summed across shards, plus the pool's own
    /// media routing index.
    pub fn memory_bytes(&self) -> usize {
        let shard_bytes: usize = self.shards.iter().map(Vids::memory_bytes).sum();
        let index_bytes: usize = self
            .media_to_shard
            .keys()
            .map(|(ip, _)| ip.as_str().len() + std::mem::size_of::<((Sym, u64), usize)>())
            .sum();
        shard_bytes + index_bytes
    }

    /// CPU busy time accumulated by the central cost account.
    pub fn cpu_busy(&self) -> SimTime {
        self.cpu.busy()
    }

    /// CPU overhead fraction over an elapsed monitoring interval (§7.3).
    pub fn cpu_overhead(&self, elapsed: SimTime) -> f64 {
        self.cpu.overhead_fraction(elapsed)
    }

    /// Which shard currently owns the given media coordinates, if any call
    /// negotiated them. Exposed for tests of cross-shard RTP routing.
    pub fn media_shard(&self, ip: &str, port: u64) -> Option<usize> {
        let ip = Sym::lookup(ip)?;
        self.media_to_shard.get(&(ip, port)).copied()
    }

    /// Processes a batch of packets, pushing alerts into `sink` (they are
    /// also appended to the persistent log readable via
    /// [`VidsPool::alerts`]).
    ///
    /// Pipeline: one amortized idle-timer sweep per batch, parallel
    /// classification, sequential shard routing, parallel shard drains,
    /// deferred DRDoS counting, deterministic merge.
    pub fn process_batch<S: AlertSink + ?Sized>(
        &mut self,
        packets: &[Packet],
        now: SimTime,
        sink: &mut S,
    ) {
        if let Some(rt) = &self.runtime {
            rt.check_poison();
        }
        let now_ms = now.as_millis();
        let mut tagged = std::mem::take(&mut self.scratch_tagged);

        if let Some(reg) = &self.telemetry {
            reg.pool().inc(Counter::BatchesIngested);
            reg.pool()
                .add(Counter::PacketsIngested, packets.len() as u64);
            reg.pool().record(HistId::BatchSize, packets.len() as u64);
        }

        // Phase 0: at most one sweep per batch (the single engine re-checks
        // the interval on every packet; the pool amortizes that to one
        // barrier here, keyed ahead of every packet of the batch).
        if now_ms.saturating_sub(self.last_sweep_ms) >= SWEEP_INTERVAL_MS {
            self.last_sweep_ms = now_ms;
            // The batch-level sweep is counted once here, on the pool slab:
            // per-shard force_maintain does not count, so the total is the
            // same whatever the shard count.
            if let Some(reg) = &self.telemetry {
                reg.pool().inc(Counter::TimerSweeps);
            }
            self.sweep_shards(now_ms, &mut tagged);
        }

        // Phase 1: classify — pure per-packet work, fanned out to the
        // workers for big batches — into the reusable `classified` buffer.
        self.classify_batch(packets);

        // Phase 2: route. The only sequential pass over the batch: assigns
        // monotonic per-packet times, charges the cost model, publishes
        // media coordinates to the routing index, and queues shard-pinned
        // parts. Malformed/ignored traffic is consumed here — it has no
        // call, destination or media key to shard by.
        let mut queues = std::mem::take(&mut self.queues);
        let mut classified = std::mem::take(&mut self.classified);
        let mut misses = std::mem::take(&mut self.scratch_misses);
        let direct = self.direct_dispatch(packets.len());
        for (idx, (packet, c)) in packets.iter().zip(classified.drain(..)).enumerate() {
            self.cpu.charge(self.cost.cpu_for(packet));
            let t = now_ms
                .max(packet.sent_at.as_millis())
                .max(self.last_packet_ms);
            self.last_packet_ms = t;
            self.route_one(
                idx,
                t,
                c,
                None,
                PartMask::ALL,
                direct,
                &mut queues,
                &mut tagged,
                &mut misses,
            );
        }
        self.classified = classified;

        // Phases 3–5: drain, deferred DRDoS counting, deterministic merge.
        self.drain_and_merge(queues, tagged, misses, sink);
    }

    /// Processes a batch of wire-classified datagrams, pushing alerts into
    /// `sink`. This is the live-ingestion twin of [`VidsPool::process_batch`]:
    /// the receiver threads already classified each datagram straight off
    /// the socket buffer ([`crate::classify::classify_wire`]), so the pool
    /// skips the classification fan-out and goes straight to routing. The
    /// events are drained out of `events`, leaving its capacity to be
    /// recycled by the caller.
    ///
    /// Given the same traffic, alerts and counters are byte-identical to
    /// the in-process path — the replay differential tests enforce it.
    pub fn process_wire_batch<S: AlertSink + ?Sized>(
        &mut self,
        events: &mut Vec<WireEvent>,
        now: SimTime,
        sink: &mut S,
    ) {
        if let Some(rt) = &self.runtime {
            rt.check_poison();
        }
        let now_ms = now.as_millis();
        let mut tagged = std::mem::take(&mut self.scratch_tagged);

        if let Some(reg) = &self.telemetry {
            reg.pool().inc(Counter::BatchesIngested);
            reg.pool()
                .add(Counter::PacketsIngested, events.len() as u64);
            reg.pool().record(HistId::BatchSize, events.len() as u64);
        }

        // Phase 0: at most one sweep per batch, exactly as in
        // `process_batch`.
        if now_ms.saturating_sub(self.last_sweep_ms) >= SWEEP_INTERVAL_MS {
            self.last_sweep_ms = now_ms;
            if let Some(reg) = &self.telemetry {
                reg.pool().inc(Counter::TimerSweeps);
            }
            self.sweep_shards(now_ms, &mut tagged);
        }

        // Phases 1+2 fused: classification already happened on the wire,
        // so the only per-datagram work left is the sequential routing
        // pass. The cost model charges by what the datagram claimed to be,
        // matching `cpu_for` on the equivalent `Packet`.
        let mut queues = std::mem::take(&mut self.queues);
        let mut misses = std::mem::take(&mut self.scratch_misses);
        let direct = self.direct_dispatch(events.len());
        for (idx, ev) in events.drain(..).enumerate() {
            self.cpu
                .charge(self.cost.cpu_for_classified(&ev.classified));
            let t = now_ms.max(ev.at.as_millis()).max(self.last_packet_ms);
            self.last_packet_ms = t;
            self.route_one(
                idx,
                t,
                ev.classified,
                None,
                PartMask::ALL,
                direct,
                &mut queues,
                &mut tagged,
                &mut misses,
            );
        }

        self.drain_and_merge(queues, tagged, misses, sink);
    }

    /// Processes this member's share of one *global* batch in a cluster
    /// federation. The cluster gateway splits each classified datagram
    /// into its protocol-role parts, routes each part to the owning node
    /// ([`PartMask`]), pre-clamps timestamps across the global batch order,
    /// and calls this on every node with the same `now` — empty shares
    /// included, so the sweep-interval clock stays in lock-step and sweeps
    /// fire on every node at the same instant, exactly as one pool's
    /// single sweep would have covered all calls.
    ///
    /// Differences from [`VidsPool::process_wire_batch`], all of them the
    /// gateway's job instead:
    ///
    /// * batch-level telemetry (`BatchesIngested`, `PacketsIngested`,
    ///   `BatchSize`, `TimerSweeps`, merge timing) is *not* recorded here —
    ///   the gateway records it exactly once per global batch, so the
    ///   merged cluster snapshot equals the single pool's;
    /// * alerts are returned key-tagged ([`FedAlert`]) instead of sunk and
    ///   logged — the gateway merges across nodes with
    ///   [`FedAlert::merge_order`] and keeps the cluster-wide log;
    /// * DRDoS misses are exported ([`FedMiss`]) instead of self-applied —
    ///   the destination-owning pool may be another node.
    pub fn process_federated_batch(
        &mut self,
        events: &mut Vec<FedEvent>,
        now: SimTime,
    ) -> FedOutput {
        if let Some(rt) = &self.runtime {
            rt.check_poison();
        }
        let now_ms = now.as_millis();
        let mut tagged = std::mem::take(&mut self.scratch_tagged);

        // Phase 0: the same once-per-batch sweep rule as every other path.
        if now_ms.saturating_sub(self.last_sweep_ms) >= SWEEP_INTERVAL_MS {
            self.last_sweep_ms = now_ms;
            self.sweep_shards(now_ms, &mut tagged);
        }

        let mut queues = std::mem::take(&mut self.queues);
        let mut misses = std::mem::take(&mut self.scratch_misses);
        let direct = self.direct_dispatch(events.len());
        for ev in events.drain(..) {
            // CPU is charged on the call-owning node only, so a SIP INVITE
            // split across two nodes costs the federation what it costs a
            // single pool.
            if ev.mask.call {
                self.cpu
                    .charge(self.cost.cpu_for_classified(&ev.classified));
            }
            // `t_ms` is already clamped against the global batch order;
            // track the local high-water mark only for `tick` consistency.
            self.last_packet_ms = self.last_packet_ms.max(ev.t_ms);
            self.route_one(
                ev.idx,
                ev.t_ms,
                ev.classified,
                None,
                ev.mask,
                direct,
                &mut queues,
                &mut tagged,
                &mut misses,
            );
        }

        self.drain_shards(&mut queues, &mut tagged, &mut misses);
        self.queues = queues;

        let fed_misses = misses
            .drain(..)
            .map(|m| FedMiss {
                idx: m.idx,
                t_ms: m.t,
                dst_ip: m.dst_ip,
                src_ip: m.src_ip,
            })
            .collect();
        self.scratch_misses = misses;

        let alerts = tagged
            .drain(..)
            .map(|(key, alert)| FedAlert { key, alert })
            .collect();
        self.scratch_tagged = tagged;
        FedOutput {
            alerts,
            misses: fed_misses,
        }
    }

    /// Applies DRDoS misses this pool's destinations own — the federated
    /// spelling of the deferred phase 4 in [`VidsPool::process_batch`].
    /// The gateway must pass misses in ascending global `idx` order,
    /// merged across every node that exported some.
    pub fn apply_federated_misses(&mut self, misses: &[FedMiss]) -> Vec<FedAlert> {
        let mut tagged = std::mem::take(&mut self.scratch_tagged);
        for miss in misses {
            let shard = self.shard_of(&miss.dst_ip.to_le_bytes());
            let mut tsink = TaggedSink::packet(&mut tagged, miss.idx, 3);
            self.shards[shard].ingest_response_flood(
                miss.dst_ip,
                miss.src_ip,
                miss.t_ms,
                &mut tsink,
            );
        }
        let out = tagged
            .drain(..)
            .map(|(key, alert)| FedAlert { key, alert })
            .collect();
        self.scratch_tagged = tagged;
        out
    }

    /// The federated spelling of [`VidsPool::tick`]: advances idle timers
    /// and evicts finished calls, returning key-tagged alerts for the
    /// gateway's cluster-wide merge instead of sinking and logging them.
    /// The gateway calls this on every node with the same `now` and counts
    /// the sweep once.
    pub fn federated_tick(&mut self, now: SimTime) -> Vec<FedAlert> {
        if let Some(rt) = &self.runtime {
            rt.check_poison();
        }
        let now_ms = now.as_millis();
        if now_ms < SWEEP_INTERVAL_MS {
            return Vec::new(); // mirror Vids::tick's interval gate from time zero
        }
        self.last_sweep_ms = now_ms;
        let mut tagged = std::mem::take(&mut self.scratch_tagged);
        self.sweep_shards(now_ms, &mut tagged);
        let out = tagged
            .drain(..)
            .map(|(key, alert)| FedAlert { key, alert })
            .collect();
        self.scratch_tagged = tagged;
        out
    }

    /// Whether any call on any shard currently has these media coordinates
    /// negotiated. A cluster gateway uses this to expire entries of its
    /// node-level media routing index, exactly as the pool expires its own
    /// shard-level index after each sweep.
    pub fn media_negotiated(&self, ip: &str, port: u64) -> bool {
        let Some(ip) = Sym::lookup(ip) else {
            return false;
        };
        self.shards
            .iter()
            .any(|s| s.factbase().media_lookup(ip, port).is_some())
    }

    /// Whether this batch should bypass the shard queues and ingest parts
    /// during the routing pass. True whenever the drain phase would run on
    /// the calling thread anyway: no worker runtime, a single hardware
    /// thread, a single shard, or a batch too small to amortize a handoff.
    fn direct_dispatch(&self, batch_len: usize) -> bool {
        self.runtime.is_none()
            || self.workers == 1
            || self.shards.len() == 1
            || batch_len < PARALLEL_DRAIN_THRESHOLD
    }

    /// Phase 2 body shared by the packet, wire batch and pipeline paths:
    /// assigns one routed part per protocol role, publishes media
    /// coordinates, and consumes malformed/ignored traffic (it has no call,
    /// destination or media key to shard by).
    ///
    /// With `direct` set the part skips the shard queue and is ingested
    /// right here: the batch was going to drain on this thread anyway
    /// (single worker, single shard, or below the parallel threshold), so
    /// queueing would only add two ~500-byte `Event` moves per packet.
    /// Per-shard event order is identical either way — routing is the
    /// sequential packet-order pass — and the merge keys make the final
    /// alert order independent of the choice.
    ///
    /// A `hint` carries the FNV-1a key hashes pre-computed on a receiver
    /// thread ([`route_hint`]); without one the hashes are computed here,
    /// lazily, exactly as before. Both spellings place every part on the
    /// same shard.
    ///
    /// `mask` selects which protocol-role parts to ingest — always
    /// [`PartMask::ALL`] except on the federated path, where the gateway
    /// may have placed a packet's call and flood parts on different nodes.
    #[allow(clippy::too_many_arguments)]
    fn route_one(
        &mut self,
        idx: usize,
        t: u64,
        c: Classified,
        hint: Option<RouteHint>,
        mask: PartMask,
        direct: bool,
        queues: &mut [Vec<Routed>],
        tagged: &mut Vec<(MergeKey, Alert)>,
        misses: &mut Vec<Miss>,
    ) {
        let n = self.shards.len();
        match c {
            Classified::Sip {
                call_id,
                event,
                is_initial_invite,
                is_request,
                dst_ip,
            } => {
                if event.name == sym::SIP_REGISTER {
                    if !mask.call {
                        return;
                    }
                    let shard = match hint {
                        Some(h) => shard_from_hash(h.call, n),
                        None => {
                            let aor = event.str_arg("aor").unwrap_or("");
                            self.shard_of(aor.as_bytes())
                        }
                    };
                    let part = Part::Register(event);
                    if direct {
                        ingest_part(&mut self.shards[shard], idx, t, part, tagged, misses);
                    } else {
                        queues[shard].push((idx, t, part));
                    }
                    return;
                }
                if mask.flood && event.name == sym::SIP_INVITE {
                    let flood_shard = match hint {
                        Some(h) => shard_from_hash(h.flood, n),
                        None => self.shard_of(&dst_ip.to_le_bytes()),
                    };
                    let part = Part::InviteFlood {
                        event: event.clone(),
                        dst_ip,
                    };
                    if direct {
                        ingest_part(&mut self.shards[flood_shard], idx, t, part, tagged, misses);
                    } else {
                        queues[flood_shard].push((idx, t, part));
                    }
                }
                if !mask.call {
                    return;
                }
                let shard = match hint {
                    Some(h) => shard_from_hash(h.call, n),
                    None => self.shard_of(call_id.as_str().as_bytes()),
                };
                if n > 1 && event.bool_arg("has_sdp") {
                    if let (Some(ip), Some(port)) =
                        (event.sym_arg(sym::SDP_IP), event.uint_arg(sym::SDP_PORT))
                    {
                        self.media_to_shard.insert((ip, port), shard);
                    }
                }
                let part = Part::Call {
                    call_id,
                    event,
                    is_initial_invite,
                    is_request,
                    dst_ip,
                };
                if direct {
                    ingest_part(&mut self.shards[shard], idx, t, part, tagged, misses);
                } else {
                    queues[shard].push((idx, t, part));
                }
            }
            Classified::Rtp { event } if mask.call => {
                let shard = if n == 1 {
                    0
                } else {
                    let ip = event.sym_arg(sym::DST_IP).unwrap_or_default();
                    let port = event.uint_arg(sym::DST_PORT).unwrap_or(0);
                    self.media_to_shard
                        .get(&(ip, port))
                        .copied()
                        .unwrap_or_else(|| {
                            // No call negotiated these coordinates: route by
                            // their hash so any shard count flags the same
                            // packet as unassociated exactly once.
                            if let Some(h) = hint {
                                return shard_from_hash(h.call, n);
                            }
                            let mut h = fnv1a(ip.as_str().as_bytes());
                            for byte in port.to_le_bytes() {
                                h = (h ^ byte as u64).wrapping_mul(0x0000_0100_0000_01b3);
                            }
                            (h % n as u64) as usize
                        })
                };
                if direct {
                    ingest_part(
                        &mut self.shards[shard],
                        idx,
                        t,
                        Part::Rtp(event),
                        tagged,
                        misses,
                    );
                } else {
                    queues[shard].push((idx, t, Part::Rtp(event)));
                }
            }
            Classified::Malformed { protocol, reason } if mask.call => {
                self.extra.malformed += 1;
                if let Some(reg) = &self.telemetry {
                    reg.pool().inc(Counter::Malformed);
                }
                self.pool_raise(
                    tagged,
                    idx,
                    t,
                    format!("malformed-{}", protocol.to_ascii_lowercase()),
                    reason.to_owned(),
                );
            }
            Classified::Ignored if mask.call => {
                self.extra.ignored += 1;
                if let Some(reg) = &self.telemetry {
                    reg.pool().inc(Counter::Ignored);
                }
            }
            // Parts this pool does not own (federated mask excludes them).
            Classified::Rtp { .. } | Classified::Malformed { .. } | Classified::Ignored => {}
        }
    }

    /// Phases 3–5 shared by the packet and wire batch paths.
    fn drain_and_merge<S: AlertSink + ?Sized>(
        &mut self,
        mut queues: Vec<Vec<Routed>>,
        mut tagged: Vec<(MergeKey, Alert)>,
        mut misses: Vec<Miss>,
        sink: &mut S,
    ) {
        // Phase 3: drain every shard's queue — on the persistent workers
        // when the batch is big enough, inline otherwise. Direct-dispatch
        // batches arrive with empty queues and this pass is a no-op.
        self.drain_shards(&mut queues, &mut tagged, &mut misses);
        self.queues = queues;

        // Phase 4: deferred DRDoS reflection counting. The call-owning shard
        // only *detects* the miss; the count belongs to the destination's
        // shard, which may have been busy during the drain. Delivered in
        // packet order with original packet times — flood networks are only
        // touched in this phase and at routing-queue drain, both
        // time-monotonic.
        misses.sort_unstable_by_key(|m| m.idx);
        for miss in misses.drain(..) {
            let shard = self.shard_of(&miss.dst_ip.to_le_bytes());
            let mut tsink = TaggedSink::packet(&mut tagged, miss.idx, 3);
            self.shards[shard].ingest_response_flood(miss.dst_ip, miss.src_ip, miss.t, &mut tsink);
        }
        self.scratch_misses = misses;

        // Phase 5: merge. The key makes this order independent of shard
        // count and thread scheduling.
        let merge_started = self.telemetry.as_ref().map(|_| Instant::now());
        tagged.sort_unstable_by(merge_cmp);
        for (_key, alert) in tagged.drain(..) {
            self.alerts.push(alert.clone());
            sink.accept(alert);
        }
        self.scratch_tagged = tagged;
        if let (Some(reg), Some(started)) = (&self.telemetry, merge_started) {
            let nanos = started.elapsed().as_nanos() as u64;
            reg.pool().add(Counter::MergeNanos, nanos);
            reg.pool().record(HistId::MergeNanos, nanos);
        }
    }

    /// Advances idle timers and evicts finished calls on every shard,
    /// pushing timer-driven alerts into `sink` in deterministic order.
    pub fn tick<S: AlertSink + ?Sized>(&mut self, now: SimTime, sink: &mut S) {
        if let Some(rt) = &self.runtime {
            rt.check_poison();
        }
        let now_ms = now.as_millis();
        if now_ms < SWEEP_INTERVAL_MS {
            return; // mirror Vids::tick's interval gate from time zero
        }
        self.last_sweep_ms = now_ms;
        if let Some(reg) = &self.telemetry {
            reg.pool().inc(Counter::TimerSweeps);
        }
        let mut tagged = std::mem::take(&mut self.scratch_tagged);
        self.sweep_shards(now_ms, &mut tagged);
        tagged.sort_unstable_by(merge_cmp);
        for (_key, alert) in tagged.drain(..) {
            self.alerts.push(alert.clone());
            sink.accept(alert);
        }
        self.scratch_tagged = tagged;
    }

    fn shard_of(&self, bytes: &[u8]) -> usize {
        if self.shards.len() == 1 {
            return 0; // don't hash what can only land on shard 0
        }
        shard_from_hash(fnv1a(bytes), self.shards.len())
    }

    /// Pool-level alert with the single engine's dedup semantics for
    /// call-less alerts (scope = detail text).
    fn pool_raise(
        &mut self,
        tagged: &mut Vec<(MergeKey, Alert)>,
        idx: usize,
        t: u64,
        label: String,
        detail: String,
    ) {
        if !self.dedup.insert((detail.clone(), label.clone())) {
            return;
        }
        if let Some(reg) = &self.telemetry {
            reg.pool().inc(Counter::AlertsDeviation);
        }
        let alert = Alert {
            time_ms: t,
            kind: AlertKind::Deviation,
            label,
            call_id: None,
            machine: "classifier".to_owned(),
            detail,
            trace: Vec::new(),
        };
        tagged.push(((idx, 2, sym::EMPTY, 0), alert));
    }

    /// Classifies the batch into `self.classified` (packet order). Big
    /// batches are chunked across the workers; the pool thread classifies
    /// chunk 0 itself while they run.
    fn classify_batch(&mut self, packets: &[Packet]) {
        self.classified.clear();
        let threads = self.shards.len().min(self.workers);
        let parallel =
            self.runtime.is_some() && threads > 1 && packets.len() >= PARALLEL_CLASSIFY_THRESHOLD;
        if !parallel {
            self.classified.extend(packets.iter().map(classify));
            return;
        }
        let rt = self.runtime.as_ref().unwrap();
        let chunk = packets.len().div_ceil(threads);
        let base = packets.as_ptr();
        let jobs = (1..threads).filter(|j| j * chunk < packets.len()).count();
        rt.begin(jobs);
        for j in 1..threads {
            let offset = j * chunk;
            if offset >= packets.len() {
                break;
            }
            // SAFETY: workers are idle (no job pending), so the pool
            // thread owns every mailbox.
            let data = unsafe { &mut *rt.data_ptr(j) };
            data.job = Job::Classify {
                base,
                offset,
                len: chunk.min(packets.len() - offset),
            };
            rt.publish(j);
        }
        self.classified
            .extend(packets[..chunk.min(packets.len())].iter().map(classify));
        rt.wait();
        rt.check_poison();
        if let Some(reg) = &self.telemetry {
            reg.pool().add(Counter::BatchHandoffs, jobs as u64);
        }
        for j in 1..threads {
            if j * chunk >= packets.len() {
                break;
            }
            // SAFETY: `wait` returned, so every mailbox is back with us.
            let data = unsafe { &mut *rt.data_ptr(j) };
            self.classified.append(&mut data.classified);
        }
    }

    /// Drains every shard's routed queue. Small batches run inline; big
    /// ones are handed to the workers, with the busiest queue kept on the
    /// pool thread (the coordinator works instead of idling, and it is one
    /// fewer handoff).
    fn drain_shards(
        &mut self,
        queues: &mut [Vec<Routed>],
        tagged: &mut Vec<(MergeKey, Alert)>,
        misses: &mut Vec<Miss>,
    ) {
        let n = self.shards.len();
        let total: usize = queues.iter().map(Vec::len).sum();
        let parallel = self.runtime.is_some()
            && self.workers > 1
            && n > 1
            && total >= PARALLEL_DRAIN_THRESHOLD;
        if !parallel {
            for (shard, queue) in self.shards.iter_mut().zip(queues.iter_mut()) {
                drain_one(shard, queue, tagged, misses);
            }
            return;
        }
        let rt = self.runtime.as_ref().unwrap();
        let busiest = (0..n).max_by_key(|&i| queues[i].len()).unwrap_or(0);
        let engines: *mut Vids = self.shards.as_mut_ptr();
        let jobs = queues
            .iter()
            .enumerate()
            .filter(|(i, q)| *i != busiest && !q.is_empty())
            .count();
        rt.begin(jobs);
        for (i, queue) in queues.iter_mut().enumerate() {
            if i == busiest || queue.is_empty() {
                continue;
            }
            // SAFETY: workers are idle, so the pool thread owns the
            // mailbox; the engine pointer is disjoint per job and outlives
            // the phase (we block in `wait` below).
            let data = unsafe { &mut *rt.data_ptr(i) };
            std::mem::swap(&mut data.queue, queue);
            data.job = Job::Drain {
                engine: unsafe { engines.add(i) },
            };
            rt.publish(i);
        }
        // SAFETY: `busiest` is published to no worker, so this &mut is the
        // only reference to that engine.
        let own = unsafe { &mut *engines.add(busiest) };
        drain_one(own, &mut queues[busiest], tagged, misses);
        rt.wait();
        rt.check_poison();
        if let Some(reg) = &self.telemetry {
            reg.pool().add(Counter::BatchHandoffs, jobs as u64);
        }
        for (i, queue) in queues.iter_mut().enumerate() {
            if i == busiest {
                continue;
            }
            // SAFETY: `wait` returned; the mailboxes are back with us.
            // Cells that got no job have empty buffers, so gathering from
            // everyone is uniform and a no-op for them.
            let data = unsafe { &mut *rt.data_ptr(i) };
            tagged.append(&mut data.tagged);
            misses.append(&mut data.misses);
            // Swap the (drained) queue buffer back so the next batch's
            // routing reuses its capacity.
            std::mem::swap(&mut data.queue, queue);
        }
    }

    fn sweep_shards(&mut self, now_ms: u64, tagged: &mut Vec<(MergeKey, Alert)>) {
        let n = self.shards.len();
        let parallel = self.runtime.is_some() && self.workers > 1 && n > 1;
        if !parallel {
            for shard in &mut self.shards {
                let mut sink = TaggedSink::sweep(tagged);
                shard.force_maintain(now_ms, &mut sink);
            }
        } else {
            let rt = self.runtime.as_ref().unwrap();
            let engines: *mut Vids = self.shards.as_mut_ptr();
            rt.begin(n - 1);
            for i in 1..n {
                // SAFETY: as in `drain_shards` — idle workers, disjoint
                // engine per job, pool thread blocks before the phase ends.
                let data = unsafe { &mut *rt.data_ptr(i) };
                data.job = Job::Sweep {
                    engine: unsafe { engines.add(i) },
                    now_ms,
                };
                rt.publish(i);
            }
            {
                // Shard 0 sweeps on the pool thread meanwhile.
                // SAFETY: published to no worker.
                let own = unsafe { &mut *engines };
                let mut sink = TaggedSink::sweep(tagged);
                own.force_maintain(now_ms, &mut sink);
            }
            rt.wait();
            rt.check_poison();
            if let Some(reg) = &self.telemetry {
                reg.pool().add(Counter::BatchHandoffs, (n - 1) as u64);
            }
            for i in 1..n {
                // SAFETY: `wait` returned; the mailboxes are back with us.
                let data = unsafe { &mut *rt.data_ptr(i) };
                tagged.append(&mut data.tagged);
            }
        }
        // Drop routing entries for media the shards just evicted, keeping
        // the pool index in lock-step with the per-shard media indexes.
        // Single-shard pools never populate the index, so there is nothing
        // to keep in step.
        if self.shards.len() > 1 {
            let shards = &self.shards;
            self.media_to_shard.retain(|(ip, port), shard| {
                shards[*shard].factbase().media_lookup(*ip, *port).is_some()
            });
        }
    }

    /// Runs `f` with a pipelined ingest session: one dedicated worker
    /// thread per shard, fed through per-shard bounded epoch rings. Inside
    /// the closure, [`PipelineIngress::submit`] publishes pre-routed
    /// batches without waiting for the shards to drain them — the
    /// coordinator's sequential routing pass for batch `k+1` overlaps the
    /// shard drains of batch `k`, up to [`EPOCH_RING_DEPTH`] batches deep.
    ///
    /// Output is byte-identical to feeding the same batches through
    /// [`VidsPool::process_wire_batch`]: alerts merge per epoch on the same
    /// deterministic key, cross-shard DRDoS misses apply in packet order,
    /// and sweeps run on the same batch-clock rule. Workers join when the
    /// closure returns (or unwinds); anything left unflushed is merged into
    /// the pool's alert log on the way out.
    pub fn with_pipeline<R>(&mut self, f: impl FnOnce(&mut PipelineIngress<'_, '_>) -> R) -> R {
        if let Some(rt) = &self.runtime {
            rt.check_poison();
        }
        let n = self.shards.len();
        let shared = PipelineShared {
            lanes: (0..n).map(|_| Lane::new()).collect(),
            engines: AtomicUsize::new(self.shards.as_mut_ptr() as usize),
            stop: AtomicBool::new(false),
            poisoned: AtomicBool::new(false),
            panic: Mutex::new(None),
            #[cfg(test)]
            panic_epoch: AtomicU64::new(u64::MAX),
        };
        thread::scope(|scope| {
            for i in 0..n {
                let shared = &shared;
                thread::Builder::new()
                    .name(format!("vids-pipe-{i}"))
                    .spawn_scoped(scope, move || pipeline_worker(shared, i))
                    .expect("spawn pipeline worker");
            }
            // Workers exit once `stop` is set and every published epoch is
            // processed. The guard sets it even when `f` unwinds, so the
            // scope's implicit join cannot deadlock.
            let _stop = StopGuard(&shared);
            let mut ingress = PipelineIngress {
                pool: self,
                shared: &shared,
                next_epoch: 0,
                harvested: 0,
                coord: VecDeque::new(),
                spare: Vec::new(),
                refresh_engines: false,
            };
            let result = f(&mut ingress);
            // Merge whatever the caller left in flight so the engines and
            // the pool's alert log end consistent. Drivers flush (tick)
            // before returning, so their sink missed nothing.
            ingress.flush(&mut crate::sink::NullSink);
            result
        })
    }

    /// Test hook: pretends the host has `workers` hardware threads so the
    /// handoff paths are exercised even on a single-core CI box.
    #[cfg(test)]
    fn force_workers(&mut self, workers: usize) {
        self.workers = workers;
    }

    /// Test hook: runs a panicking job on one worker to exercise poison
    /// propagation end to end.
    #[cfg(test)]
    fn inject_worker_panic(&mut self, shard: usize) {
        let rt = self.runtime.as_ref().expect("multi-shard pool has workers");
        rt.check_poison();
        // SAFETY: no job in flight; the pool thread owns the mailbox.
        let data = unsafe { &mut *rt.data_ptr(shard) };
        data.job = Job::Panic;
        rt.begin(1);
        rt.publish(shard);
        rt.wait();
        rt.check_poison();
    }
}

/// Drains one shard's routed queue (leaving its capacity in place) through
/// the shard engine, on the pool thread or a worker.
fn drain_one(
    vids: &mut Vids,
    queue: &mut Vec<Routed>,
    alerts: &mut Vec<(MergeKey, Alert)>,
    misses: &mut Vec<Miss>,
) {
    for (idx, t, part) in queue.drain(..) {
        ingest_part(vids, idx, t, part, alerts, misses);
    }
}

/// Delivers one routed part to its shard engine, tagging every alert with
/// its merge key. Shared by the queued drain path and the direct-dispatch
/// routing pass; per-shard order is the same under both because routing is
/// the sequential packet-order pass.
fn ingest_part(
    vids: &mut Vids,
    idx: usize,
    t: u64,
    part: Part,
    alerts: &mut Vec<(MergeKey, Alert)>,
    misses: &mut Vec<Miss>,
) {
    match part {
        Part::Register(event) => {
            let mut sink = TaggedSink::packet(alerts, idx, 2);
            vids.ingest_register(event, t, &mut sink);
        }
        Part::InviteFlood { event, dst_ip } => {
            let mut sink = TaggedSink::packet(alerts, idx, 1);
            vids.ingest_invite_flood(event, dst_ip, t, &mut sink);
        }
        Part::Call {
            call_id,
            event,
            is_initial_invite,
            is_request,
            dst_ip,
        } => {
            let mut sink = TaggedSink::packet(alerts, idx, 2);
            if let Some(miss) =
                vids.ingest_call_event(call_id, event, is_initial_invite, is_request, t, &mut sink)
            {
                misses.push(Miss {
                    idx,
                    t,
                    dst_ip,
                    src_ip: miss.src_ip,
                });
            }
        }
        Part::Rtp(event) => {
            let mut sink = TaggedSink::packet(alerts, idx, 2);
            vids.ingest_rtp(event, t, &mut sink);
        }
    }
}

/// How many epochs (published batches) a pipeline lane can hold before the
/// coordinator must wait for the shard workers. Power of two; deep enough
/// to ride out one slow shard, shallow enough that a stalled worker
/// backpressures receivers instead of buffering unbounded work.
const EPOCH_RING_DEPTH: u64 = 4;

/// Backoff for the pipeline's wait loops: spin briefly (covering the
/// epoch-to-epoch handoff), then sleep-poll. Nobody unparks anybody — a
/// bounded timed park cannot miss a wakeup, and the added worst-case
/// latency is invisible next to a batch of traffic.
const PIPELINE_PARK: Duration = Duration::from_micros(100);

#[inline]
fn pipeline_backoff(spins: &mut u32) {
    if *spins < SPIN_LIMIT {
        *spins += 1;
        std::hint::spin_loop();
    } else {
        thread::park_timeout(PIPELINE_PARK);
    }
}

/// One epoch's routed work and outputs for one shard lane.
#[derive(Default)]
struct EpochSlot {
    /// Routed parts for this shard, in packet order. Written by the
    /// coordinator, drained (emptied) by the lane's worker.
    queue: Vec<Routed>,
    /// Key-tagged alerts the drain produced; collected at harvest.
    tagged: Vec<(MergeKey, Alert)>,
    /// Cross-shard DRDoS misses this shard *detected*; frozen after the
    /// drain so every worker can read every lane's list, cleared at
    /// harvest.
    misses: Vec<Miss>,
}

/// One shard's bounded epoch ring. The three counters are monotone epoch
/// counts, so slot `e % EPOCH_RING_DEPTH` has a single owner at every
/// instant: the coordinator before `tail` passes `e` and after harvest,
/// the worker in between (with the `misses` field read-shared between
/// `drained` and harvest).
struct Lane {
    slots: [UnsafeCell<EpochSlot>; EPOCH_RING_DEPTH as usize],
    /// Epochs published to this lane's worker.
    tail: AtomicU64,
    /// Epochs whose queue this worker has fully drained (misses frozen).
    drained: AtomicU64,
    /// Epochs fully finished (drain + cross-shard miss application).
    applied: AtomicU64,
}

impl Lane {
    fn new() -> Self {
        Lane {
            slots: std::array::from_fn(|_| UnsafeCell::new(EpochSlot::default())),
            tail: AtomicU64::new(0),
            drained: AtomicU64::new(0),
            applied: AtomicU64::new(0),
        }
    }
}

// SAFETY: slot ownership follows the lane counters as documented on
// `Lane`; every handoff is a Release store observed by an Acquire load.
unsafe impl Send for Lane {}
unsafe impl Sync for Lane {}

/// State shared between a pipeline session's coordinator and its workers.
struct PipelineShared {
    lanes: Vec<Lane>,
    /// Base pointer to the shard engines (`*mut Vids` as `usize`). The
    /// coordinator re-derives and re-publishes it after any quiesced
    /// direct use of `VidsPool::shards` (sweeps, snapshots), so a worker
    /// always dereferences a freshly derived pointer.
    engines: AtomicUsize,
    /// Session shutdown; workers exit once no published epoch is pending.
    stop: AtomicBool,
    /// A worker panicked; everyone winds down and the coordinator rethrows.
    poisoned: AtomicBool,
    /// First captured panic payload, rethrown on the coordinator.
    panic: Mutex<Option<Box<dyn Any + Send>>>,
    /// Test hook: worker 0 panics when it reaches this epoch.
    #[cfg(test)]
    panic_epoch: AtomicU64,
}

/// Sets `stop` on drop, so scoped workers exit (and the scope's implicit
/// join returns) even when the coordinator unwinds.
struct StopGuard<'a>(&'a PipelineShared);

impl Drop for StopGuard<'_> {
    fn drop(&mut self) {
        self.0.stop.store(true, Release);
    }
}

/// One pipeline worker: drain own lane's epoch, barrier with peers, apply
/// this shard's share of the cross-shard misses, publish completion —
/// epoch by epoch until shutdown.
fn pipeline_worker(shared: &PipelineShared, index: usize) {
    let lane = &shared.lanes[index];
    let n = shared.lanes.len();
    let mut scratch: Vec<Miss> = Vec::new();
    let mut epoch = 0u64;
    loop {
        // Wait for the coordinator to publish this epoch. `stop` is only
        // honored here: a published epoch is always completed, so the
        // coordinator can flush deterministically before shutting down.
        let mut spins = 0u32;
        loop {
            if shared.poisoned.load(Acquire) {
                return;
            }
            if lane.tail.load(Acquire) > epoch {
                break;
            }
            if shared.stop.load(Acquire) {
                return;
            }
            pipeline_backoff(&mut spins);
        }
        let slot = (epoch % EPOCH_RING_DEPTH) as usize;
        let outcome = panic::catch_unwind(AssertUnwindSafe(|| {
            #[cfg(test)]
            if index == 0 && shared.panic_epoch.load(Relaxed) == epoch {
                panic!("injected pipeline worker panic");
            }
            // SAFETY: observing `tail > epoch` (Acquire) transferred this
            // slot to the worker; the `applied` store below hands it back.
            let data = unsafe { &mut *lane.slots[slot].get() };
            // SAFETY: engine `index` is touched by this worker only, and
            // by the coordinator only while the pipeline is quiesced; the
            // pointer is (re-)derived by the coordinator and published
            // before the epochs that use it.
            let engine = unsafe { &mut *(shared.engines.load(Acquire) as *mut Vids).add(index) };
            drain_one(engine, &mut data.queue, &mut data.tagged, &mut data.misses);
            lane.drained.store(epoch + 1, Release);
            // Barrier: wait for every lane to finish draining this epoch.
            // From each peer's `drained` store to the coordinator's
            // harvest, the epoch's miss lists are frozen and readable by
            // all.
            for peer in &shared.lanes {
                let mut spins = 0u32;
                while peer.drained.load(Acquire) <= epoch {
                    if shared.poisoned.load(Acquire) || shared.stop.load(Acquire) {
                        // A peer died or the coordinator abandoned the
                        // session mid-epoch; neither happens on the normal
                        // flush-then-stop path.
                        panic!("pipeline torn down during epoch barrier");
                    }
                    pipeline_backoff(&mut spins);
                }
            }
            // Phase 4, shard-local: this destination shard's share of the
            // deferred DRDoS counts, in packet order. Sorting the global
            // miss list by idx and filtering to one shard (the sequential
            // path) yields the same per-engine sequence as filtering then
            // sorting here.
            scratch.clear();
            for (j, peer) in shared.lanes.iter().enumerate() {
                let misses: &[Miss] = if j == index {
                    &data.misses
                } else {
                    // SAFETY: frozen read-only window, see the barrier
                    // comment above.
                    unsafe { &(*peer.slots[slot].get()).misses }
                };
                for m in misses {
                    if shard_from_hash(fnv1a(&m.dst_ip.to_le_bytes()), n) == index {
                        scratch.push(*m);
                    }
                }
            }
            scratch.sort_unstable_by_key(|m| m.idx);
            for m in &scratch {
                let mut tsink = TaggedSink::packet(&mut data.tagged, m.idx, 3);
                engine.ingest_response_flood(m.dst_ip, m.src_ip, m.t, &mut tsink);
            }
        }));
        match outcome {
            Ok(()) => {
                lane.applied.store(epoch + 1, Release);
                epoch += 1;
            }
            Err(payload) => {
                let mut first = shared.panic.lock().unwrap();
                if first.is_none() {
                    *first = Some(payload);
                }
                drop(first);
                shared.poisoned.store(true, Release);
                return;
            }
        }
    }
}

/// A live pipelined-ingest session over a [`VidsPool`], handed to the
/// closure of [`VidsPool::with_pipeline`]. Exclusively borrows the pool:
/// while the session lives, all traffic flows through [`submit`] and all
/// timer work through [`tick`].
///
/// [`submit`]: PipelineIngress::submit
/// [`tick`]: PipelineIngress::tick
pub struct PipelineIngress<'pool, 'sh> {
    pool: &'pool mut VidsPool,
    shared: &'sh PipelineShared,
    /// Epochs published so far.
    next_epoch: u64,
    /// Epochs harvested (merged and emitted) so far.
    harvested: u64,
    /// Coordinator-side tagged alerts (sweeps, malformed) per published
    /// but unharvested epoch; front = oldest.
    coord: VecDeque<Vec<(MergeKey, Alert)>>,
    /// Recycled coordinator alert buffers.
    spare: Vec<Vec<(MergeKey, Alert)>>,
    /// `pool.shards` was used directly while quiesced; re-derive the
    /// engines pointer before publishing the next epoch.
    refresh_engines: bool,
}

impl PipelineIngress<'_, '_> {
    /// Epochs published but not yet merged.
    pub fn in_flight(&self) -> u64 {
        self.next_epoch - self.harvested
    }

    /// Rethrows a worker panic on the coordinator. The session is torn
    /// down by the unwind: the stop guard releases the workers and the
    /// scope joins them.
    fn check_poison(&self) {
        if self.shared.poisoned.load(Acquire) {
            match self.shared.panic.lock().unwrap().take() {
                Some(payload) => panic::resume_unwind(payload),
                None => panic!("pipeline worker previously panicked"),
            }
        }
    }

    /// Publishes one batch of pre-routed events as an epoch. Runs the
    /// residual sequential routing pass (cost charge, monotonic clamp,
    /// media index, malformed dedup) and hands the per-shard queues to the
    /// workers; returns without waiting for the drains unless the rings
    /// are full. Same batch-clock semantics as
    /// [`VidsPool::process_wire_batch`]: `now` should be the batch's first
    /// receive timestamp.
    pub fn submit<S: AlertSink + ?Sized>(
        &mut self,
        events: &mut Vec<PreRouted>,
        now: SimTime,
        sink: &mut S,
    ) {
        self.check_poison();
        let now_ms = now.as_millis();
        if let Some(reg) = &self.pool.telemetry {
            reg.pool().inc(Counter::BatchesIngested);
            reg.pool()
                .add(Counter::PacketsIngested, events.len() as u64);
            reg.pool().record(HistId::BatchSize, events.len() as u64);
        }

        let mut coord_tagged = self.spare.pop().unwrap_or_default();

        // Phase 0: at most one sweep per batch, on the same clock rule as
        // the synchronous paths. Sweeps read and mutate every shard, so
        // the pipeline quiesces first — they are interval-gated, so this
        // barrier is rare by construction.
        if now_ms.saturating_sub(self.pool.last_sweep_ms) >= SWEEP_INTERVAL_MS {
            self.flush(sink);
            self.pool.last_sweep_ms = now_ms;
            if let Some(reg) = &self.pool.telemetry {
                reg.pool().inc(Counter::TimerSweeps);
            }
            self.pool.sweep_shards(now_ms, &mut coord_tagged);
            self.refresh_engines = true;
        }
        if self.refresh_engines {
            debug_assert_eq!(
                self.next_epoch, self.harvested,
                "refresh requires quiescence"
            );
            self.shared
                .engines
                .store(self.pool.shards.as_mut_ptr() as usize, Release);
            self.refresh_engines = false;
        }

        // Phase 2: the residual sequential routing pass, using the
        // receiver-computed hashes. Always queued (never direct): the
        // engines belong to the workers while epochs are in flight.
        let mut queues = std::mem::take(&mut self.pool.queues);
        let mut misses = std::mem::take(&mut self.pool.scratch_misses);
        for (idx, ev) in events.drain(..).enumerate() {
            self.pool
                .cpu
                .charge(self.pool.cost.cpu_for_classified(&ev.classified));
            let t = now_ms.max(ev.at.as_millis()).max(self.pool.last_packet_ms);
            self.pool.last_packet_ms = t;
            self.pool.route_one(
                idx,
                t,
                ev.classified,
                Some(ev.hint),
                PartMask::ALL,
                false,
                &mut queues,
                &mut coord_tagged,
                &mut misses,
            );
        }
        debug_assert!(misses.is_empty(), "queued routing produces no misses");
        self.pool.scratch_misses = misses;

        // Backpressure: when the rings are full, merge the oldest epoch
        // (blocking on its workers) before publishing this one.
        while self.in_flight() >= EPOCH_RING_DEPTH {
            if let Some(reg) = &self.pool.telemetry {
                reg.pool().inc(Counter::PipelineStalls);
            }
            self.harvest_one(sink);
        }

        // Publish epoch `next_epoch` to every lane — uniformly, including
        // empty queues, so the lane counters advance in lock-step and the
        // workers' cross-lane barrier lines up.
        let e = self.next_epoch;
        let slot = (e % EPOCH_RING_DEPTH) as usize;
        for (lane, queue) in self.shared.lanes.iter().zip(queues.iter_mut()) {
            // SAFETY: epoch `e - EPOCH_RING_DEPTH` is harvested (enforced
            // above), so the coordinator owns this slot; the Release store
            // below hands it to the worker.
            let data = unsafe { &mut *lane.slots[slot].get() };
            debug_assert!(data.queue.is_empty());
            std::mem::swap(&mut data.queue, queue);
            lane.tail.store(e + 1, Release);
        }
        self.pool.queues = queues;
        self.coord.push_back(coord_tagged);
        self.next_epoch = e + 1;
        if let Some(reg) = &self.pool.telemetry {
            reg.pool().set_gauge(Gauge::PipelineDepth, self.in_flight());
        }
    }

    /// Merges the oldest in-flight epoch: waits for every worker to finish
    /// it, gathers the tagged alerts from all lanes plus the coordinator's
    /// own, sorts on the merge key, and emits — exactly the phase-5 merge
    /// of the synchronous paths, per epoch.
    fn harvest_one<S: AlertSink + ?Sized>(&mut self, sink: &mut S) {
        debug_assert!(self.harvested < self.next_epoch);
        let e = self.harvested;
        for lane in &self.shared.lanes {
            let mut spins = 0u32;
            while lane.applied.load(Acquire) <= e {
                self.check_poison();
                pipeline_backoff(&mut spins);
            }
        }
        let merge_started = self.pool.telemetry.as_ref().map(|_| Instant::now());
        let mut tagged = self.coord.pop_front().unwrap_or_default();
        let slot = (e % EPOCH_RING_DEPTH) as usize;
        for lane in &self.shared.lanes {
            // SAFETY: every lane's `applied` passed `e` (Acquire above),
            // handing the epoch's slots back to the coordinator.
            let data = unsafe { &mut *lane.slots[slot].get() };
            debug_assert!(data.queue.is_empty());
            tagged.append(&mut data.tagged);
            data.misses.clear();
        }
        tagged.sort_unstable_by(merge_cmp);
        for (_key, alert) in tagged.drain(..) {
            self.pool.alerts.push(alert.clone());
            sink.accept(alert);
        }
        self.spare.push(tagged);
        self.harvested = e + 1;
        if let (Some(reg), Some(started)) = (&self.pool.telemetry, merge_started) {
            let nanos = started.elapsed().as_nanos() as u64;
            reg.pool().add(Counter::MergeNanos, nanos);
            reg.pool().record(HistId::MergeNanos, nanos);
        }
    }

    /// Merges every in-flight epoch, emitting alerts into `sink`. On
    /// return the pipeline is quiescent: workers are idle and every alert
    /// submitted so far has been emitted.
    pub fn flush<S: AlertSink + ?Sized>(&mut self, sink: &mut S) {
        self.check_poison();
        while self.harvested < self.next_epoch {
            self.harvest_one(sink);
        }
        if let Some(reg) = &self.pool.telemetry {
            reg.pool().set_gauge(Gauge::PipelineDepth, 0);
        }
    }

    /// Flushes, then advances idle timers on every shard — the session's
    /// version of [`VidsPool::tick`], with identical output.
    pub fn tick<S: AlertSink + ?Sized>(&mut self, now: SimTime, sink: &mut S) {
        self.flush(sink);
        self.pool.tick(now, sink);
        self.refresh_engines = true;
    }

    /// Read access to the underlying pool while quiescent (for snapshots
    /// and forensic dumps). Call [`flush`] or [`tick`] first; panics if
    /// epochs are still in flight, because the workers would be mutating
    /// the shards being read.
    ///
    /// [`flush`]: PipelineIngress::flush
    /// [`tick`]: PipelineIngress::tick
    pub fn pool(&mut self) -> &VidsPool {
        assert_eq!(
            self.next_epoch, self.harvested,
            "flush the pipeline before inspecting the pool"
        );
        self.refresh_engines = true;
        &*self.pool
    }

    /// Test hook: makes pipeline worker 0 panic when it reaches the next
    /// epoch to be published.
    #[cfg(test)]
    fn inject_panic_next_epoch(&self) {
        self.shared.panic_epoch.store(self.next_epoch, Relaxed);
    }
}

impl Monitor for VidsPool {
    fn process(&mut self, packet: &Packet, now: SimTime, sink: &mut dyn AlertSink) {
        self.process_batch(std::slice::from_ref(packet), now, sink);
    }

    fn tick(&mut self, now: SimTime, sink: &mut dyn AlertSink) {
        self.tick(now, sink);
    }

    fn alerts(&self) -> &[Alert] {
        VidsPool::alerts(self)
    }

    fn counters(&self) -> VidsCounters {
        VidsPool::counters(self)
    }

    fn memory_bytes(&self) -> usize {
        VidsPool::memory_bytes(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sink::{CollectSink, NullSink};
    use vids_netsim::packet::{Address, Payload};
    use vids_sdp::{Codec, SessionDescription};
    use vids_sip::message::Request;
    use vids_sip::{Method, SipUri, StatusCode};

    const CALLER: Address = Address::new(10, 1, 0, 10, 5060);
    const CALLEE: Address = Address::new(10, 2, 0, 10, 5060);

    fn pkt(src: Address, dst: Address, payload: Payload) -> Packet {
        Packet {
            src,
            dst,
            payload,
            id: 0,
            sent_at: SimTime::ZERO,
        }
    }

    fn invite(call_id: &str) -> Request {
        let sdp = SessionDescription::audio_offer("alice", "10.1.0.10", 20_000, &[Codec::G729]);
        Request::invite(
            &SipUri::new("alice", "a.example.com"),
            &SipUri::new("bob", "b.example.com"),
            call_id,
        )
        .with_body(vids_sdp::MIME_TYPE, sdp.to_string())
    }

    /// A small trace exercising floods, unknown calls and junk.
    fn mixed_trace() -> Vec<(Packet, SimTime)> {
        let mut trace = Vec::new();
        for i in 0..12u64 {
            let inv = invite(&format!("mix-{i}"));
            trace.push((
                pkt(CALLER, CALLEE, Payload::Sip(inv.to_string())),
                SimTime::from_millis(i * 5),
            ));
        }
        let ghost = invite("ghost");
        let bye = Request::in_dialog(Method::Bye, &ghost, 2, Some("tt"));
        trace.push((
            pkt(CALLER, CALLEE, Payload::Sip(bye.to_string())),
            SimTime::from_millis(70),
        ));
        let ok = ghost.response(StatusCode::OK);
        for i in 0..12u64 {
            trace.push((
                pkt(CALLEE, CALLER, Payload::Sip(ok.to_string())),
                SimTime::from_millis(80 + i),
            ));
        }
        trace.push((
            pkt(CALLER, CALLEE, Payload::Sip("garbage".to_owned())),
            SimTime::from_millis(95),
        ));
        trace
    }

    fn shards(n: usize) -> Config {
        Config::builder().shards(n).build().unwrap()
    }

    /// What the ingest layer does to a datagram, applied to a simulated
    /// packet: classify the raw payload bytes off the "wire".
    fn wire_events(packets: &[Packet]) -> Vec<WireEvent> {
        use crate::classify::{classify_wire, WireProto};
        packets
            .iter()
            .map(|p| WireEvent {
                classified: match &p.payload {
                    Payload::Sip(text) => {
                        classify_wire(WireProto::Sip, text.as_bytes(), p.src, p.dst)
                    }
                    Payload::Rtp(bytes) => classify_wire(WireProto::Rtp, bytes, p.src, p.dst),
                    Payload::Raw(_) => Classified::Ignored,
                },
                at: p.sent_at,
            })
            .collect()
    }

    #[test]
    fn wire_batch_matches_packet_batch() {
        let packets: Vec<Packet> = mixed_trace()
            .into_iter()
            .map(|(mut p, at)| {
                p.sent_at = at;
                p
            })
            .collect();

        let mut by_packet = VidsPool::new(shards(4));
        let mut packet_sink = CollectSink::new();
        by_packet.process_batch(&packets, SimTime::ZERO, &mut packet_sink);
        by_packet.tick(SimTime::from_secs(30), &mut packet_sink);

        let mut events = wire_events(&packets);
        let mut by_wire = VidsPool::new(shards(4));
        let mut wire_sink = CollectSink::new();
        by_wire.process_wire_batch(&mut events, SimTime::ZERO, &mut wire_sink);
        by_wire.tick(SimTime::from_secs(30), &mut wire_sink);

        assert!(!packet_sink.is_empty(), "trace should raise alerts");
        assert_eq!(packet_sink.alerts(), wire_sink.alerts());
        assert_eq!(by_packet.counters(), by_wire.counters());
        assert_eq!(by_packet.cpu_busy(), by_wire.cpu_busy());
        assert!(events.is_empty(), "wire batch drains the caller's buffer");
    }

    #[test]
    fn pool_matches_plain_vids_packet_for_packet() {
        let mut plain = Vids::new(Config::default());
        let mut pool = VidsPool::new(shards(4));
        let mut plain_sink = CollectSink::new();
        let mut pool_sink = CollectSink::new();
        for (packet, at) in mixed_trace() {
            plain.process(&packet, at, &mut plain_sink);
            Monitor::process(&mut pool, &packet, at, &mut pool_sink);
        }
        plain.tick(SimTime::from_secs(30), &mut plain_sink);
        pool.tick(SimTime::from_secs(30), &mut pool_sink);
        assert!(!plain_sink.is_empty(), "trace should raise alerts");
        assert_eq!(plain_sink.alerts(), pool_sink.alerts());
        assert_eq!(plain.alerts(), pool.alerts());
        assert_eq!(plain.counters(), pool.counters());
    }

    #[test]
    fn shard_count_does_not_change_batched_output() {
        let trace = mixed_trace();
        let packets: Vec<Packet> = trace
            .iter()
            .map(|(p, at)| {
                let mut p = p.clone();
                p.sent_at = *at;
                p
            })
            .collect();
        let mut reference: Option<Vec<Alert>> = None;
        for n in [1usize, 4, 8] {
            let mut pool = VidsPool::new(shards(n));
            let mut sink = CollectSink::new();
            pool.process_batch(&packets, SimTime::ZERO, &mut sink);
            pool.tick(SimTime::from_secs(30), &mut sink);
            let out = sink.into_alerts();
            match &reference {
                None => reference = Some(out),
                Some(expected) => assert_eq!(expected, &out, "{n} shards diverged"),
            }
        }
        assert!(!reference.unwrap().is_empty());
    }

    #[test]
    fn rtp_routes_to_the_call_owning_shard() {
        let mut pool = VidsPool::new(shards(8));
        let inv = invite("routed-1");
        let answer = SessionDescription::audio_offer("bob", "10.2.0.10", 30_000, &[Codec::G729]);
        let ok = inv
            .response(StatusCode::OK)
            .with_to_tag("tt")
            .with_body(vids_sdp::MIME_TYPE, answer.to_string());
        let batch = [
            pkt(CALLER, CALLEE, Payload::Sip(inv.to_string())),
            pkt(CALLEE, CALLER, Payload::Sip(ok.to_string())),
        ];
        pool.process_batch(&batch, SimTime::ZERO, &mut NullSink);

        // Both endpoints' negotiated coordinates point at the shard that owns
        // the call, whatever hash(ip:port) alone would have said.
        let call_shard = pool
            .media_shard("10.2.0.10", 30_000)
            .expect("answer SDP indexed");
        assert_eq!(pool.media_shard("10.1.0.10", 20_000), Some(call_shard));
        assert_eq!(pool.shard(call_shard).monitored_calls(), 1);

        // RTP to those coordinates reaches the call's RTP machine...
        let media = vids_rtp::packet::RtpPacket::new(18, 100, 800, 7).with_payload(vec![0; 10]);
        let rtp = pkt(
            CALLER.with_port(20_000),
            CALLEE.with_port(30_000),
            Payload::Rtp(media.to_bytes()),
        );
        pool.process_batch(&[rtp], SimTime::from_millis(10), &mut NullSink);
        assert_eq!(pool.counters().unassociated_rtp, 0);
        assert_eq!(pool.counters().rtp_packets, 1);

        // ...while RTP to unknown coordinates is flagged, once.
        let stray = pkt(
            CALLER.with_port(20_000),
            Address::new(10, 9, 9, 9, 40_000),
            Payload::Rtp(media.to_bytes()),
        );
        let mut stray_sink = CollectSink::new();
        pool.process_batch(&[stray], SimTime::from_millis(20), &mut stray_sink);
        let alerts = stray_sink.into_alerts();
        assert_eq!(pool.counters().unassociated_rtp, 1);
        assert!(alerts.iter().any(|a| a.label == "unassociated-rtp"));
    }

    #[test]
    fn builder_shards_size_the_pool() {
        let pool = VidsPool::new(shards(6));
        assert_eq!(pool.shards(), 6);
        assert_eq!(pool.monitored_calls(), 0);
        assert!(Config::builder().shards(0).build().is_err());
    }

    /// A batch big enough to cross both handoff thresholds, with calls,
    /// media, floods and strays spread across shards.
    fn big_trace() -> Vec<Packet> {
        let mut packets = Vec::new();
        for i in 0..300u64 {
            let inv = invite(&format!("big-{i:03}"));
            let mut p = pkt(CALLER, CALLEE, Payload::Sip(inv.to_string()));
            p.sent_at = SimTime::from_millis(i);
            packets.push(p);
        }
        packets
    }

    #[test]
    fn worker_handoff_matches_inline_drain() {
        let packets = big_trace();
        // Forced to hand off to the persistent workers (even on a 1-core
        // host, where the default path would drain inline)...
        let mut threaded = VidsPool::new(shards(4));
        threaded.force_workers(4);
        let mut threaded_sink = CollectSink::new();
        threaded.process_batch(&packets, SimTime::ZERO, &mut threaded_sink);
        threaded.tick(SimTime::from_secs(30), &mut threaded_sink);
        // ...versus forced inline on the same shard count.
        let mut inline = VidsPool::new(shards(4));
        inline.force_workers(1);
        let mut inline_sink = CollectSink::new();
        inline.process_batch(&packets, SimTime::ZERO, &mut inline_sink);
        inline.tick(SimTime::from_secs(30), &mut inline_sink);
        assert_eq!(threaded_sink.alerts(), inline_sink.alerts());
        assert_eq!(threaded.counters(), inline.counters());
        assert_eq!(threaded.monitored_calls(), inline.monitored_calls());
    }

    #[test]
    fn worker_panic_propagates_and_drop_joins() {
        // Silence the injected panic's default backtrace print; restore
        // the hook afterwards.
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(|_| {}));
        let mut pool = VidsPool::new(shards(4));
        let first = std::panic::catch_unwind(AssertUnwindSafe(|| pool.inject_worker_panic(2)));
        assert!(first.is_err(), "worker panic must surface on the caller");
        // The pool is poisoned: the next API call re-raises instead of
        // deadlocking on the dead worker.
        let second = std::panic::catch_unwind(AssertUnwindSafe(|| {
            pool.process_batch(&[], SimTime::ZERO, &mut NullSink);
        }));
        assert!(second.is_err(), "poisoned pool must keep failing loudly");
        std::panic::set_hook(prev);
        // Dropping the poisoned pool must join every worker, not hang.
        drop(pool);
    }

    #[test]
    fn pool_drop_joins_workers_after_traffic() {
        let mut pool = VidsPool::new(shards(4));
        pool.force_workers(4);
        pool.process_batch(&big_trace(), SimTime::ZERO, &mut NullSink);
        drop(pool); // joins 4 parked workers; must not hang or leak
    }

    /// A wire trace with calls, negotiated media, in-call and stray RTP, a
    /// REGISTER, floods, ghosts and junk — timestamps crossing several
    /// sweep intervals so multi-batch runs exercise the batch-clock sweep
    /// rule.
    fn pipeline_trace() -> Vec<WireEvent> {
        use vids_sip::headers::{CSeq as SipCSeq, Header, NameAddr, Via};

        let mut packets: Vec<Packet> = mixed_trace()
            .into_iter()
            .map(|(mut p, at)| {
                p.sent_at = at;
                p
            })
            .collect();
        let mut push = |src, dst, payload, ms| {
            let mut p = pkt(src, dst, payload);
            p.sent_at = SimTime::from_millis(ms);
            packets.push(p);
        };

        // A REGISTER, pinned by address-of-record.
        let aor = SipUri::new("roamer", "b.example.com");
        let mut reg = vids_sip::Request::new(Method::Register, SipUri::host_only("b.example.com"));
        reg.headers.push(Header::Via(Via::udp(
            "10.1.0.10".to_owned(),
            5060,
            "z9hG4bK-r1",
        )));
        reg.headers
            .push(Header::From(NameAddr::new(aor.clone()).with_tag("rt")));
        reg.headers.push(Header::To(NameAddr::new(aor)));
        reg.headers.push(Header::CallId("reg-roamer".to_owned()));
        reg.headers
            .push(Header::CSeq(SipCSeq::new(1, Method::Register)));
        reg.headers.push(Header::Contact(NameAddr::new(SipUri::new(
            "roamer",
            "10.1.0.10",
        ))));
        reg.headers.push(Header::Expires(3600));
        reg.headers.push(Header::ContentLength(0));
        push(CALLER, CALLEE, Payload::Sip(reg.to_string()), 98);

        // A full call with negotiated media and in-call RTP.
        let inv = invite("pipe-media");
        let answer = SessionDescription::audio_offer("bob", "10.2.0.10", 30_000, &[Codec::G729]);
        let ok = inv
            .response(StatusCode::OK)
            .with_to_tag("tt")
            .with_body(vids_sdp::MIME_TYPE, answer.to_string());
        let ack = Request::in_dialog(Method::Ack, &inv, 1, Some("tt"));
        push(CALLER, CALLEE, Payload::Sip(inv.to_string()), 100);
        push(CALLEE, CALLER, Payload::Sip(ok.to_string()), 120);
        push(CALLER, CALLEE, Payload::Sip(ack.to_string()), 140);
        let media = vids_rtp::packet::RtpPacket::new(18, 100, 800, 7).with_payload(vec![0; 10]);
        for i in 0..4u64 {
            push(
                CALLER.with_port(20_000),
                CALLEE.with_port(30_000),
                Payload::Rtp(media.to_bytes()),
                160 + i * 20,
            );
        }
        // Stray RTP: routed by the media-coordinate fallback hash.
        push(
            CALLER.with_port(20_000),
            Address::new(10, 9, 9, 9, 40_000),
            Payload::Rtp(media.to_bytes()),
            250,
        );

        // A later ghost-response wave (unassociated responses = deferred
        // cross-shard DRDoS misses) after more sweep windows elapsed.
        let ghost = invite("pipe-ghost");
        let ghost_ok = ghost.response(StatusCode::OK);
        for i in 0..12u64 {
            push(CALLEE, CALLER, Payload::Sip(ghost_ok.to_string()), 480 + i);
        }

        wire_events(&packets)
    }

    /// Feeds `events` through `process_wire_batch` in fixed-size chunks,
    /// clocked by each batch's first timestamp, then ticks.
    fn run_wire_batches(pool: &mut VidsPool, events: &[WireEvent], chunk: usize) -> Vec<Alert> {
        let mut sink = CollectSink::new();
        for chunk_events in events.chunks(chunk) {
            let mut batch: Vec<WireEvent> = chunk_events.to_vec();
            let now = chunk_events.first().map(|e| e.at).unwrap_or(SimTime::ZERO);
            pool.process_wire_batch(&mut batch, now, &mut sink);
        }
        pool.tick(SimTime::from_secs(30), &mut sink);
        sink.into_alerts()
    }

    /// The same batches through a pipelined session.
    fn run_pipeline_batches(pool: &mut VidsPool, events: &[WireEvent], chunk: usize) -> Vec<Alert> {
        let mut sink = CollectSink::new();
        pool.with_pipeline(|p| {
            let mut batch: Vec<PreRouted> = Vec::new();
            for chunk_events in events.chunks(chunk) {
                batch.extend(
                    chunk_events
                        .iter()
                        .map(|e| PreRouted::new(e.classified.clone(), e.at)),
                );
                let now = chunk_events.first().map(|e| e.at).unwrap_or(SimTime::ZERO);
                p.submit(&mut batch, now, &mut sink);
            }
            p.tick(SimTime::from_secs(30), &mut sink);
        });
        sink.into_alerts()
    }

    #[test]
    fn pipeline_matches_wire_batches_across_shard_counts() {
        let events = pipeline_trace();
        // Chunk 3 pushes well past EPOCH_RING_DEPTH epochs (backpressure
        // path); chunk 64 covers few-epoch sessions.
        for n in [1usize, 4, 8] {
            for chunk in [3usize, 7, 64] {
                let mut by_wire = VidsPool::new(shards(n));
                let wire = run_wire_batches(&mut by_wire, &events, chunk);
                let mut by_pipe = VidsPool::new(shards(n));
                let pipe = run_pipeline_batches(&mut by_pipe, &events, chunk);
                assert!(!wire.is_empty(), "trace should raise alerts");
                assert_eq!(wire, pipe, "{n} shards, chunk {chunk} diverged");
                assert_eq!(by_wire.alerts(), by_pipe.alerts());
                assert_eq!(by_wire.counters(), by_pipe.counters());
                assert_eq!(by_wire.cpu_busy(), by_pipe.cpu_busy());
                assert_eq!(by_wire.monitored_calls(), by_pipe.monitored_calls());
            }
        }
    }

    #[test]
    fn route_hint_hashes_agree_with_shard_of() {
        let events = pipeline_trace();
        let pool = VidsPool::new(shards(8));
        let mut sip = 0usize;
        let mut rtp = 0usize;
        for ev in &events {
            let hint = route_hint(&ev.classified);
            match &ev.classified {
                Classified::Sip {
                    call_id,
                    event,
                    dst_ip,
                    ..
                } => {
                    sip += 1;
                    if event.name == sym::SIP_REGISTER {
                        let aor = event.str_arg("aor").unwrap_or("");
                        assert_eq!(shard_from_hash(hint.call, 8), pool.shard_of(aor.as_bytes()));
                    } else {
                        assert_eq!(
                            shard_from_hash(hint.call, 8),
                            pool.shard_of(call_id.as_str().as_bytes())
                        );
                        assert_eq!(
                            shard_from_hash(hint.flood, 8),
                            pool.shard_of(&dst_ip.to_le_bytes())
                        );
                    }
                }
                Classified::Rtp { event } => {
                    rtp += 1;
                    let ip = event.sym_arg(sym::DST_IP).unwrap_or_default();
                    let port = event.uint_arg(sym::DST_PORT).unwrap_or(0);
                    let mut h = fnv1a(ip.as_str().as_bytes());
                    for byte in port.to_le_bytes() {
                        h = (h ^ byte as u64).wrapping_mul(0x0000_0100_0000_01b3);
                    }
                    assert_eq!(hint.call, h, "RTP fallback hash diverged");
                }
                _ => assert_eq!(hint, RouteHint::default()),
            }
        }
        assert!(sip > 0 && rtp > 0, "trace must cover both protocols");
    }

    #[test]
    fn pipeline_survives_quiesced_inspection() {
        let events = pipeline_trace();
        let split = 10usize;

        let mut reference = VidsPool::new(shards(4));
        let mut ref_sink = CollectSink::new();
        for part in [&events[..split], &events[split..]] {
            let mut batch: Vec<WireEvent> = part.to_vec();
            let now = part.first().map(|e| e.at).unwrap_or(SimTime::ZERO);
            reference.process_wire_batch(&mut batch, now, &mut ref_sink);
        }
        reference.tick(SimTime::from_secs(30), &mut ref_sink);

        let mut pool = VidsPool::new(shards(4));
        let mut sink = CollectSink::new();
        pool.with_pipeline(|p| {
            let mut batch: Vec<PreRouted> = events[..split]
                .iter()
                .map(|e| PreRouted::new(e.classified.clone(), e.at))
                .collect();
            p.submit(&mut batch, events[0].at, &mut sink);
            p.flush(&mut sink);
            // Mid-session, quiesced: reading the pool (as the serve tier
            // does for forensic dumps) must not disturb the epochs that
            // follow.
            assert!(p.pool().monitored_calls() > 0);
            assert_eq!(p.in_flight(), 0);
            batch.extend(
                events[split..]
                    .iter()
                    .map(|e| PreRouted::new(e.classified.clone(), e.at)),
            );
            p.submit(&mut batch, events[split].at, &mut sink);
            p.tick(SimTime::from_secs(30), &mut sink);
        });

        assert_eq!(ref_sink.alerts(), sink.alerts());
        assert_eq!(reference.counters(), pool.counters());
    }

    #[test]
    fn pipeline_worker_panic_propagates_and_joins() {
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(|_| {}));
        let events = pipeline_trace();
        let mut pool = VidsPool::new(shards(4));
        let outcome = std::panic::catch_unwind(AssertUnwindSafe(|| {
            pool.with_pipeline(|p| {
                p.inject_panic_next_epoch();
                let mut batch: Vec<PreRouted> = events
                    .iter()
                    .map(|e| PreRouted::new(e.classified.clone(), e.at))
                    .collect();
                p.submit(&mut batch, SimTime::ZERO, &mut NullSink);
                p.flush(&mut NullSink);
            });
        }));
        std::panic::set_hook(prev);
        assert!(outcome.is_err(), "worker panic must surface on the caller");
        // The scoped session joined its workers on the way out; the pool
        // (and its mailbox runtime) is still usable and droppable.
        pool.process_batch(&[], SimTime::ZERO, &mut NullSink);
        drop(pool);
    }
}
