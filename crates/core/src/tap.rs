//! Inline deployment: vids as a [`Tap`] on the Fig. 7 topology's tap node
//! ("the online vids is located strategically between the edge router and
//! the firewall, monitoring all traffic traveling to and from both DMZ and
//! the internal network to the Internet", §2.2).

use vids_netsim::node::Tap;
use vids_netsim::packet::Packet;
use vids_netsim::time::SimTime;

use crate::alert::Alert;
use crate::config::Config;
use crate::cost::CostModel;
use crate::engine::{Vids, VidsCounters};
use crate::monitor::Monitor;
use crate::sink::{AlertSink, NullSink};

/// The inline vids monitor: observes every packet, charges the cost-model
/// hold (which the tap node applies before forwarding), and accumulates
/// alerts for post-run analysis.
pub struct VidsTap {
    vids: Vids,
    packets_seen: u64,
    started_at: Option<SimTime>,
    last_seen: SimTime,
}

impl VidsTap {
    /// Creates an inline monitor with the default cost model.
    pub fn new(config: Config) -> Self {
        VidsTap::with_cost(config, CostModel::default())
    }

    /// Creates an inline monitor with an explicit cost model (use
    /// [`CostModel::free`] to measure pure detection without QoS impact).
    pub fn with_cost(config: Config, cost: CostModel) -> Self {
        VidsTap {
            vids: Vids::with_cost(config, cost),
            packets_seen: 0,
            started_at: None,
            last_seen: SimTime::ZERO,
        }
    }

    /// The monitor itself (alert log, counters, fact base).
    pub fn vids(&self) -> &Vids {
        &self.vids
    }

    /// Mutable access (to flush timers at the end of a run).
    pub fn vids_mut(&mut self) -> &mut Vids {
        &mut self.vids
    }

    /// Enables telemetry on the wrapped engine; see
    /// [`Vids::enable_telemetry`].
    pub fn enable_telemetry(
        &mut self,
        ring_capacity: usize,
    ) -> std::sync::Arc<vids_telemetry::Registry> {
        self.vids.enable_telemetry(ring_capacity)
    }

    /// A telemetry snapshot at monitor time `now`; see
    /// [`Vids::telemetry_snapshot`].
    pub fn telemetry_snapshot(&self, now: SimTime) -> Option<vids_telemetry::Snapshot> {
        self.vids.telemetry_snapshot(now)
    }

    /// All alerts raised so far.
    pub fn alerts(&self) -> &[Alert] {
        self.vids.alerts()
    }

    /// Packets observed.
    pub fn packets_seen(&self) -> u64 {
        self.packets_seen
    }

    /// CPU overhead over the observed interval (§7.3's 3.6 %).
    pub fn cpu_overhead(&self) -> f64 {
        match self.started_at {
            Some(start) if self.last_seen > start => {
                self.vids.cpu_overhead(self.last_seen.saturating_sub(start))
            }
            _ => 0.0,
        }
    }
}

impl Tap for VidsTap {
    fn observe(&mut self, packet: &Packet, now: SimTime) -> SimTime {
        // Route through the Monitor impl so the observation-window
        // bookkeeping (started_at / last_seen) is identical whichever way
        // the tap is driven. Alerts stay in the persistent log.
        Monitor::process(self, packet, now, &mut NullSink);
        self.vids.cost().hold_for(packet)
    }
}

impl Monitor for VidsTap {
    fn process(&mut self, packet: &Packet, now: SimTime, sink: &mut dyn AlertSink) {
        self.packets_seen += 1;
        self.started_at.get_or_insert(now);
        self.last_seen = now;
        self.vids.process(packet, now, sink);
    }

    fn tick(&mut self, now: SimTime, sink: &mut dyn AlertSink) {
        // Flushes timer-driven detections; the observation window stays at
        // the last packet so cpu_overhead keeps §7.3's traffic-interval
        // denominator.
        self.vids.tick(now, sink);
    }

    fn alerts(&self) -> &[Alert] {
        self.vids.alerts()
    }

    fn counters(&self) -> VidsCounters {
        self.vids.counters()
    }

    fn memory_bytes(&self) -> usize {
        self.vids.memory_bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vids_netsim::packet::{Address, Payload};

    fn sip_packet(text: &str) -> Packet {
        Packet {
            src: Address::new(10, 1, 0, 10, 5060),
            dst: Address::new(10, 2, 0, 10, 5060),
            payload: Payload::Sip(text.to_owned()),
            id: 0,
            sent_at: SimTime::ZERO,
        }
    }

    #[test]
    fn observe_charges_the_configured_hold() {
        let mut tap = VidsTap::new(Config::default());
        let invite = "INVITE sip:bob@b.example.com SIP/2.0\r\n\
                      Via: SIP/2.0/UDP 10.1.0.10:5060;branch=z9hG4bK1\r\n\
                      From: <sip:alice@a.example.com>;tag=1\r\n\
                      To: <sip:bob@b.example.com>\r\n\
                      Call-ID: tap-1\r\nCSeq: 1 INVITE\r\nContent-Length: 0\r\n\r\n";
        let hold = tap.observe(&sip_packet(invite), SimTime::from_millis(5));
        assert_eq!(hold, CostModel::default().sip_hold);
        assert_eq!(tap.packets_seen(), 1);
        assert_eq!(tap.vids().monitored_calls(), 1);
    }

    #[test]
    fn free_model_holds_nothing() {
        let mut tap = VidsTap::with_cost(Config::default(), CostModel::free());
        let hold = tap.observe(&sip_packet("junk"), SimTime::ZERO);
        assert_eq!(hold, SimTime::ZERO);
        // Junk still produced a malformed-traffic alert.
        assert_eq!(tap.alerts().len(), 1);
    }

    #[test]
    fn cpu_overhead_reported_over_observed_window() {
        let mut tap = VidsTap::new(Config::default());
        let rtp = Packet {
            src: Address::new(10, 1, 0, 10, 20_000),
            dst: Address::new(10, 2, 0, 10, 30_000),
            payload: Payload::Rtp(
                vids_rtp::packet::RtpPacket::new(18, 1, 0, 7)
                    .with_payload(vec![0; 10])
                    .to_bytes(),
            ),
            id: 0,
            sent_at: SimTime::ZERO,
        };
        // 1000 RTP packets across 1 second of monitor time.
        for i in 0..1_000u64 {
            tap.observe(&rtp, SimTime::from_millis(i));
        }
        let overhead = tap.cpu_overhead();
        // 1000 packets × 6 µs over ~1 s ≈ 0.6 %.
        assert!((0.001..0.05).contains(&overhead), "overhead {overhead}");
    }
}
