//! Forensic call-state snapshots.
//!
//! When the flight recorder serializes an alert window it captures the
//! triggering call's EFSM state — per-machine current state and local
//! variables plus the call-global variables — as plain strings, so the
//! dump stays self-describing without the reader needing the machine
//! definitions. Variables are rendered through [`Value`]'s `Display` and
//! sorted by name: the underlying `VarMap` iterates in insertion order,
//! which is deterministic for one run but not a stable wire format.
//!
//! [`Value`]: vids_efsm::value::Value

use vids_efsm::network::Network;
use vids_efsm::value::VarMap;

/// One machine of a call network, frozen at snapshot time.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MachineSnapshot {
    /// Definition name (`"sip"`, `"rtp"`).
    pub name: String,
    /// Current state name.
    pub state: String,
    /// Local variables, sorted by name, values rendered to text.
    pub locals: Vec<(String, String)>,
}

/// The triggering call's full EFSM state at dump time.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CallSnapshot {
    /// The call's Call-ID.
    pub call_id: String,
    /// Every machine of the call network, in definition order.
    pub machines: Vec<MachineSnapshot>,
    /// Call-global shared variables, sorted by name.
    pub globals: Vec<(String, String)>,
}

impl CallSnapshot {
    /// Freezes one call network.
    pub fn of_network(call_id: &str, network: &Network) -> CallSnapshot {
        CallSnapshot {
            call_id: call_id.to_owned(),
            machines: network
                .machines()
                .map(|(def, inst)| MachineSnapshot {
                    name: def.name().to_owned(),
                    state: inst.state_name(def).to_owned(),
                    locals: sorted_vars(inst.locals()),
                })
                .collect(),
            globals: sorted_vars(network.globals()),
        }
    }
}

fn sorted_vars(vars: &VarMap) -> Vec<(String, String)> {
    let mut out: Vec<(String, String)> = vars
        .iter()
        .map(|(k, v)| (k.to_owned(), v.to_string()))
        .collect();
    out.sort();
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use vids_efsm::machine::MachineDef;

    #[test]
    fn snapshot_renders_states_and_sorted_vars() {
        let mut b = MachineDef::new("toy");
        let s = b.add_state("idle");
        b.mark_final(s);
        let def = Arc::new(b.build().unwrap());
        let mut net = Network::new();
        let id = net.add_machine(def);
        net.instance_mut(id).locals_mut().set("zeta", 9u64);
        net.instance_mut(id).locals_mut().set("alpha", 1u64);
        net.globals_mut().set("g", true);

        let snap = CallSnapshot::of_network("call-1", &net);
        assert_eq!(snap.call_id, "call-1");
        assert_eq!(snap.machines.len(), 1);
        assert_eq!(snap.machines[0].name, "toy");
        assert_eq!(snap.machines[0].state, "idle");
        let names: Vec<&str> = snap.machines[0]
            .locals
            .iter()
            .map(|(k, _)| k.as_str())
            .collect();
        assert_eq!(names, ["alpha", "zeta"], "locals sorted by name");
        assert_eq!(snap.globals.len(), 1);
    }
}
