//! The [`Monitor`] trait: one interface over every deployment shape of the
//! analysis engine — a single-threaded [`crate::engine::Vids`], a sharded
//! [`crate::pool::VidsPool`], or the inline [`crate::tap::VidsTap`].
//!
//! Harness code (the scenario runner, benches, examples) programs against
//! this trait so the same driver can exercise any engine; swapping a
//! 1-shard `Vids` for an 8-shard pool is a constructor change only.

use vids_netsim::packet::Packet;
use vids_netsim::time::SimTime;

use crate::alert::Alert;
use crate::engine::VidsCounters;
use crate::sink::AlertSink;

/// A packet-fed intrusion monitor.
pub trait Monitor {
    /// Feeds one packet observed at monitor time `now`, pushing any alerts
    /// it raises into `sink` (they are also appended to the persistent
    /// log readable via [`Monitor::alerts`]).
    fn process(&mut self, packet: &Packet, now: SimTime, sink: &mut dyn AlertSink);

    /// Advances timers and evicts finished calls; call at the end of a run
    /// (or periodically when no traffic flows) to flush timer-driven
    /// detections.
    fn tick(&mut self, now: SimTime, sink: &mut dyn AlertSink);

    /// Every alert raised so far, in raise order.
    fn alerts(&self) -> &[Alert];

    /// Aggregate traffic counters (summed across shards for pools).
    fn counters(&self) -> VidsCounters;

    /// Current fact-base memory footprint in bytes (summed across shards).
    fn memory_bytes(&self) -> usize;
}
