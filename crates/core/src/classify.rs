//! The Packet Classifier / Event Distributor (Fig. 3).
//!
//! "vids conducts the state transition analysis of packet streams on call by
//! call basis. All the packets belonging to one particular call are assigned
//! to one group. In the group, packets are further classified into subgroups
//! based on the specific protocols." (§5)
//!
//! This module converts wire packets into EFSM events with the argument
//! vector `x̄` the predicates inspect; the per-call grouping (Call-ID for
//! SIP, negotiated media coordinates for RTP) happens in the engine against
//! the fact base.

use vids_efsm::event::Event;
use vids_netsim::packet::{Packet, Payload};
use vids_rtp::packet::RtpPacket;
use vids_sdp::SessionDescription;
use vids_sip::message::Message;
use vids_sip::parse::parse_message;
use vids_sip::Method;

/// The result of classifying one packet.
#[derive(Debug, Clone, PartialEq)]
pub enum Classified {
    /// A parsed SIP message, ready for the per-call SIP machine.
    Sip {
        /// The grouping key.
        call_id: String,
        /// The EFSM event (named `SIP.<METHOD>` / `SIP.<class>xx`).
        event: Event,
        /// Whether this is a dialog-forming INVITE (no To tag yet): it may
        /// instantiate a new call in the fact base.
        is_initial_invite: bool,
        /// Whether the message is a request.
        is_request: bool,
        /// Destination ip (flood machines group by destination).
        dst_ip: u32,
    },
    /// A parsed RTP packet, ready for a per-call RTP machine.
    Rtp {
        /// The EFSM event (named `RTP.Packet`).
        event: Event,
    },
    /// Unparseable traffic claiming to be SIP or RTP.
    Malformed {
        /// `"SIP"` or `"RTP"`.
        protocol: &'static str,
        /// Parser diagnosis.
        reason: String,
    },
    /// Traffic vids does not monitor (raw background payloads).
    Ignored,
}

/// Classifies one packet into an EFSM event.
pub fn classify(packet: &Packet) -> Classified {
    match &packet.payload {
        Payload::Sip(text) => match parse_message(text) {
            Ok(msg) => sip_event(&msg, packet),
            Err(e) => Classified::Malformed {
                protocol: "SIP",
                reason: e.to_string(),
            },
        },
        Payload::Rtp(bytes) => match RtpPacket::parse(bytes) {
            Ok(rtp) => Classified::Rtp {
                event: rtp_event(&rtp, packet),
            },
            Err(e) => Classified::Malformed {
                protocol: "RTP",
                reason: e.to_string(),
            },
        },
        Payload::Raw(_) => Classified::Ignored,
    }
}

/// The EFSM event name for a SIP message: requests map to their method,
/// responses to their class (`SIP.1xx`, `SIP.2xx`, `SIP.failure`).
pub fn sip_event_name(msg: &Message) -> String {
    match msg {
        Message::Request(req) => format!("SIP.{}", req.method),
        Message::Response(resp) => {
            if resp.status.is_provisional() {
                "SIP.1xx".to_owned()
            } else if resp.status.is_success() {
                "SIP.2xx".to_owned()
            } else if resp.status.is_redirect() {
                "SIP.3xx".to_owned()
            } else {
                "SIP.failure".to_owned()
            }
        }
    }
}

fn sip_event(msg: &Message, packet: &Packet) -> Classified {
    let headers = msg.headers();
    let call_id = msg.call_id().to_owned();
    let mut event = Event::data(sip_event_name(msg))
        .with_str("src_ip", packet.src.ip_string())
        .with_str("dst_ip", packet.dst.ip_string())
        .with_str("call_id", call_id.clone())
        .with_str(
            "from_tag",
            headers.from_header().and_then(|f| f.tag()).unwrap_or(""),
        )
        .with_str(
            "to_tag",
            headers.to_header().and_then(|t| t.tag()).unwrap_or(""),
        )
        .with_str(
            "branch",
            headers.top_via().and_then(|v| v.branch()).unwrap_or(""),
        );
    if let Some(cseq) = headers.cseq() {
        event = event
            .with_uint("cseq", cseq.seq as u64)
            .with_str("cseq_method", cseq.method.as_str());
    }
    if let Some(status) = msg.status() {
        event = event.with_uint("status", status.as_u16() as u64);
    }

    // REGISTER: arguments for the registration-monitoring machine.
    if msg.method() == Some(Method::Register) {
        if let Some(to) = headers.to_header() {
            event = event.with_str(
                "aor",
                format!("{}@{}", to.uri().user().unwrap_or(""), to.uri().host()),
            );
        }
        if let Some(contact) = headers.contact() {
            event = event.with_str("contact_ip", contact.uri().host());
        }
        let expires = headers
            .iter()
            .find_map(|h| match h {
                vids_sip::headers::Header::Expires(v) => Some(*v as u64),
                _ => None,
            })
            .unwrap_or(3600);
        event = event.with_uint("expires", expires);
    }

    // SDP bodies feed the RTP machine's media coordinates.
    if headers.content_type() == Some(vids_sdp::MIME_TYPE) {
        if let Ok(sdp) = msg.body().parse::<SessionDescription>() {
            if let Some(audio) = sdp.first_audio() {
                event = event
                    .with_bool("has_sdp", true)
                    .with_str("sdp_ip", sdp.media_addr())
                    .with_uint("sdp_port", audio.port as u64);
                if let Some(pt) = audio.formats.first() {
                    event = event.with_uint("sdp_pt", pt.0 as u64);
                }
            }
        }
    }

    let is_initial_invite = msg.method() == Some(Method::Invite)
        && headers.to_header().and_then(|t| t.tag()).is_none();
    Classified::Sip {
        call_id,
        event,
        is_initial_invite,
        is_request: msg.is_request(),
        dst_ip: packet.dst.ip,
    }
}

fn rtp_event(rtp: &RtpPacket, packet: &Packet) -> Event {
    Event::data("RTP.Packet")
        .with_str("src_ip", packet.src.ip_string())
        .with_uint("src_port", packet.src.port as u64)
        .with_str("dst_ip", packet.dst.ip_string())
        .with_uint("dst_port", packet.dst.port as u64)
        .with_uint("ssrc", rtp.ssrc as u64)
        .with_uint("seq", rtp.sequence_number as u64)
        .with_uint("ts", rtp.timestamp as u64)
        .with_uint("pt", rtp.payload_type as u64)
        .with_uint("size", packet.wire_bytes() as u64)
}

#[cfg(test)]
mod tests {
    use super::*;
    use vids_netsim::packet::Address;
    use vids_netsim::time::SimTime;
    use vids_sdp::Codec;
    use vids_sip::message::Request;
    use vids_sip::{SipUri, StatusCode};

    fn packet(payload: Payload) -> Packet {
        Packet {
            src: Address::new(10, 1, 0, 10, 5060),
            dst: Address::new(10, 2, 0, 10, 5060),
            payload,
            id: 1,
            sent_at: SimTime::ZERO,
        }
    }

    fn invite_with_sdp() -> Request {
        let sdp = SessionDescription::audio_offer("alice", "10.1.0.10", 20_000, &[Codec::G729]);
        Request::invite(
            &SipUri::new("alice", "a.example.com"),
            &SipUri::new("bob", "b.example.com"),
            "cls-1",
        )
        .with_body(vids_sdp::MIME_TYPE, sdp.to_string())
    }

    #[test]
    fn classifies_initial_invite_with_sdp() {
        let pkt = packet(Payload::Sip(invite_with_sdp().to_string()));
        let Classified::Sip {
            call_id,
            event,
            is_initial_invite,
            is_request,
            dst_ip,
        } = classify(&pkt)
        else {
            panic!("expected SIP");
        };
        assert_eq!(call_id, "cls-1");
        assert!(is_initial_invite);
        assert!(is_request);
        assert_eq!(dst_ip, Address::new(10, 2, 0, 10, 0).ip);
        assert_eq!(event.name, "SIP.INVITE");
        assert_eq!(event.str_arg("src_ip"), Some("10.1.0.10"));
        assert!(event.bool_arg("has_sdp"));
        assert_eq!(event.str_arg("sdp_ip"), Some("10.1.0.10"));
        assert_eq!(event.uint_arg("sdp_port"), Some(20_000));
        assert_eq!(event.uint_arg("sdp_pt"), Some(18));
        assert_eq!(event.uint_arg("cseq"), Some(1));
    }

    #[test]
    fn response_classes_map_to_event_names() {
        let inv = invite_with_sdp();
        for (status, name) in [
            (StatusCode::RINGING, "SIP.1xx"),
            (StatusCode::OK, "SIP.2xx"),
            (StatusCode::MOVED_TEMPORARILY, "SIP.3xx"),
            (StatusCode::BUSY_HERE, "SIP.failure"),
        ] {
            let resp = inv.response(status);
            let pkt = packet(Payload::Sip(resp.to_string()));
            let Classified::Sip { event, .. } = classify(&pkt) else {
                panic!("expected SIP");
            };
            assert_eq!(event.name, name);
            assert_eq!(event.uint_arg("status"), Some(status.as_u16() as u64));
        }
    }

    #[test]
    fn reinvite_is_not_initial() {
        let mut inv = invite_with_sdp();
        inv.headers.to_header_mut().unwrap().set_tag("established");
        let pkt = packet(Payload::Sip(inv.to_string()));
        let Classified::Sip {
            is_initial_invite, ..
        } = classify(&pkt)
        else {
            panic!("expected SIP");
        };
        assert!(!is_initial_invite);
    }

    #[test]
    fn classifies_rtp() {
        let rtp = RtpPacket::new(18, 42, 3360, 0xABCD).with_payload(vec![0; 10]);
        let mut pkt = packet(Payload::Rtp(rtp.to_bytes()));
        pkt.src = Address::new(10, 1, 0, 10, 20_000);
        pkt.dst = Address::new(10, 2, 0, 10, 30_000);
        let Classified::Rtp { event } = classify(&pkt) else {
            panic!("expected RTP");
        };
        assert_eq!(event.name, "RTP.Packet");
        assert_eq!(event.uint_arg("ssrc"), Some(0xABCD));
        assert_eq!(event.uint_arg("seq"), Some(42));
        assert_eq!(event.uint_arg("ts"), Some(3360));
        assert_eq!(event.uint_arg("pt"), Some(18));
        assert_eq!(event.uint_arg("dst_port"), Some(30_000));
    }

    #[test]
    fn malformed_traffic_is_flagged() {
        let pkt = packet(Payload::Sip("NOT SIP AT ALL".to_owned()));
        assert!(matches!(
            classify(&pkt),
            Classified::Malformed { protocol: "SIP", .. }
        ));
        let pkt = packet(Payload::Rtp(vec![0x00, 0x01]));
        assert!(matches!(
            classify(&pkt),
            Classified::Malformed { protocol: "RTP", .. }
        ));
    }

    #[test]
    fn register_carries_registration_args() {
        use vids_sip::headers::{CSeq, Header, NameAddr, Via};
        let aor = SipUri::new("roamer", "b.example.com");
        let mut req = Request::new(vids_sip::Method::Register, SipUri::host_only("b.example.com"));
        req.headers.push(Header::Via(Via::udp("10.0.0.20", 5060, "z9hG4bK-r")));
        req.headers.push(Header::From(NameAddr::new(aor.clone()).with_tag("t")));
        req.headers.push(Header::To(NameAddr::new(aor)));
        req.headers.push(Header::CallId("reg-1".to_owned()));
        req.headers.push(Header::CSeq(CSeq::new(1, vids_sip::Method::Register)));
        req.headers.push(Header::Contact(NameAddr::new(SipUri::new("roamer", "10.0.0.20"))));
        req.headers.push(Header::Expires(600));
        let pkt = packet(Payload::Sip(req.to_string()));
        let Classified::Sip { event, .. } = classify(&pkt) else {
            panic!("expected SIP");
        };
        assert_eq!(event.name, "SIP.REGISTER");
        assert_eq!(event.str_arg("aor"), Some("roamer@b.example.com"));
        assert_eq!(event.str_arg("contact_ip"), Some("10.0.0.20"));
        assert_eq!(event.uint_arg("expires"), Some(600));
    }

    #[test]
    fn register_without_expires_defaults_to_3600() {
        use vids_sip::headers::{Header, NameAddr};
        let aor = SipUri::new("u", "b.example.com");
        let mut req = Request::new(vids_sip::Method::Register, SipUri::host_only("b.example.com"));
        req.headers.push(Header::To(NameAddr::new(aor)));
        req.headers.push(Header::CallId("reg-2".to_owned()));
        let pkt = packet(Payload::Sip(req.to_string()));
        let Classified::Sip { event, .. } = classify(&pkt) else {
            panic!("expected SIP");
        };
        assert_eq!(event.uint_arg("expires"), Some(3_600));
    }

    #[test]
    fn raw_traffic_is_ignored() {
        let pkt = packet(Payload::Raw(vec![1, 2, 3]));
        assert_eq!(classify(&pkt), Classified::Ignored);
    }
}
