//! The Packet Classifier / Event Distributor (Fig. 3).
//!
//! "vids conducts the state transition analysis of packet streams on call by
//! call basis. All the packets belonging to one particular call are assigned
//! to one group. In the group, packets are further classified into subgroups
//! based on the specific protocols." (§5)
//!
//! This module converts wire packets into EFSM events with the argument
//! vector `x̄` the predicates inspect; the per-call grouping (Call-ID for
//! SIP, negotiated media coordinates for RTP) happens in the engine against
//! the fact base.
//!
//! This is the engine's interning boundary: SIP fields are borrowed as
//! `&str` slices straight out of the datagram (via [`vids_sip::view`]),
//! interned exactly once, and everything downstream — fact base, shard
//! router, EFSM predicates — keys on the resulting copyable [`Sym`]s. A
//! steady-state packet whose strings have been seen before allocates
//! nothing here.

use std::cell::RefCell;

use vids_efsm::intern::sym;
use vids_efsm::{Event, Sym};
use vids_netsim::packet::{Address, Packet, Payload, UDP_IP_OVERHEAD};
use vids_rtp::packet::{ParseRtpError, RtpHeader};
use vids_scan::fxhash::FxHashMap;
use vids_sip::view::{parse_view, SipView, StartLine};
use vids_sip::Method;

/// The result of classifying one packet.
#[derive(Debug, Clone, PartialEq)]
pub enum Classified {
    /// A parsed SIP message, ready for the per-call SIP machine.
    Sip {
        /// The grouping key, interned.
        call_id: Sym,
        /// The EFSM event (named `SIP.<METHOD>` / `SIP.<class>xx`).
        event: Event,
        /// Whether this is a dialog-forming INVITE (no To tag yet): it may
        /// instantiate a new call in the fact base.
        is_initial_invite: bool,
        /// Whether the message is a request.
        is_request: bool,
        /// Destination ip (flood machines group by destination).
        dst_ip: u32,
    },
    /// A parsed RTP packet, ready for a per-call RTP machine.
    Rtp {
        /// The EFSM event (named `RTP.Packet`).
        event: Event,
    },
    /// Unparseable traffic claiming to be SIP or RTP.
    Malformed {
        /// `"SIP"` or `"RTP"`.
        protocol: &'static str,
        /// Parser diagnosis; static so flagging damage never allocates.
        reason: &'static str,
    },
    /// Traffic vids does not monitor (raw background payloads).
    Ignored,
}

/// Classifies one packet into an EFSM event.
pub fn classify(packet: &Packet) -> Classified {
    match &packet.payload {
        Payload::Sip(text) => classify_sip_text(text, packet.src, packet.dst),
        Payload::Rtp(bytes) => classify_rtp_bytes(bytes, packet.src, packet.dst),
        Payload::Raw(_) => Classified::Ignored,
    }
}

/// The protocol the wire demultiplexer decided a datagram carries. The
/// third demux outcome — traffic vids does not monitor — never reaches
/// classification; the ingest layer maps it to [`Classified::Ignored`]
/// directly, mirroring [`Payload::Raw`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum WireProto {
    /// Treat the payload as a SIP message (UTF-8 text).
    Sip,
    /// Treat the payload as an RTP packet (binary header).
    Rtp,
}

/// Classifies one datagram payload straight off the wire, without
/// materializing a [`Packet`]. Produces exactly what [`classify`] would
/// for the equivalent `Payload::Sip`/`Payload::Rtp` packet — the replay
/// differential tests depend on that equivalence byte for byte.
pub fn classify_wire(proto: WireProto, payload: &[u8], src: Address, dst: Address) -> Classified {
    match proto {
        WireProto::Sip => match std::str::from_utf8(payload) {
            Ok(text) => classify_sip_text(text, src, dst),
            // `Payload::Sip` holds a `String`, so the in-process path can
            // never see this reason; real sockets can.
            Err(_) => Classified::Malformed {
                protocol: "SIP",
                reason: "SIP datagram is not valid UTF-8",
            },
        },
        WireProto::Rtp => classify_rtp_bytes(payload, src, dst),
    }
}

fn classify_sip_text(text: &str, src: Address, dst: Address) -> Classified {
    match parse_view(text) {
        Ok(view) => sip_event(&view, src, dst),
        Err(e) => Classified::Malformed {
            protocol: "SIP",
            reason: e.reason(),
        },
    }
}

fn classify_rtp_bytes(bytes: &[u8], src: Address, dst: Address) -> Classified {
    match RtpHeader::parse(bytes) {
        Ok(header) => Classified::Rtp {
            event: rtp_event(&header, src, dst, (bytes.len() + UDP_IP_OVERHEAD) as u64),
        },
        Err(e) => Classified::Malformed {
            protocol: "RTP",
            reason: rtp_reason(e),
        },
    }
}

/// Interns the dotted-quad text of a numeric ip, with a thread-local cache
/// keyed on the `u32` so the steady-state path neither formats, hashes a
/// string, nor takes any lock. The interner dedups across threads, so each
/// worker's cache converges on the same `Sym` for the same address.
pub fn ip_sym(ip: u32) -> Sym {
    thread_local! {
        static CACHE: RefCell<FxHashMap<u32, Sym>> =
            RefCell::new(FxHashMap::with_capacity_and_hasher(64, Default::default()));
    }
    CACHE.with(|cache| {
        if let Some(&s) = cache.borrow().get(&ip) {
            return s;
        }
        let [a, b, c, d] = ip.to_be_bytes();
        let s = Sym::intern(&format!("{a}.{b}.{c}.{d}"));
        cache.borrow_mut().insert(ip, s);
        s
    })
}

/// The pre-seeded EFSM event name for a request method: `SIP.<METHOD>`.
pub fn method_event_sym(method: Method) -> Sym {
    match method {
        Method::Invite => sym::SIP_INVITE,
        Method::Ack => sym::SIP_ACK,
        Method::Bye => sym::SIP_BYE,
        Method::Cancel => sym::SIP_CANCEL,
        Method::Register => sym::SIP_REGISTER,
        Method::Options => sym::SIP_OPTIONS,
        Method::Info => sym::SIP_INFO,
        Method::Update => sym::SIP_UPDATE,
        Method::Prack => sym::SIP_PRACK,
        Method::Subscribe => sym::SIP_SUBSCRIBE,
        Method::Notify => sym::SIP_NOTIFY,
        Method::Refer => sym::SIP_REFER,
        Method::MessageMethod => sym::SIP_MESSAGE,
    }
}

fn rtp_reason(e: ParseRtpError) -> &'static str {
    match e {
        ParseRtpError::TooShort { .. } => "RTP packet too short",
        ParseRtpError::BadVersion { .. } => "unsupported RTP version",
        ParseRtpError::UnsupportedCsrc { .. } => "unsupported CSRC count",
        ParseRtpError::UnsupportedExtension => "unsupported header extension",
    }
}

fn sip_event(view: &SipView<'_>, src: Address, dst: Address) -> Classified {
    let call_id = Sym::intern(view.call_id);
    let name = match view.start {
        StartLine::Request { method, .. } => method_event_sym(method),
        StartLine::Response { status } => {
            if status.is_provisional() {
                sym::SIP_1XX
            } else if status.is_success() {
                sym::SIP_2XX
            } else if status.is_redirect() {
                sym::SIP_3XX
            } else {
                sym::SIP_FAILURE
            }
        }
    };
    let to_tag = view.to.and_then(|t| t.tag);
    let mut event = Event::data(name)
        .with_sym(sym::SRC_IP, ip_sym(src.ip))
        .with_sym(sym::DST_IP, ip_sym(dst.ip))
        .with_sym(sym::CALL_ID, call_id)
        .with_sym(
            sym::FROM_TAG,
            Sym::intern(view.from.and_then(|f| f.tag).unwrap_or("")),
        )
        .with_sym(sym::TO_TAG, Sym::intern(to_tag.unwrap_or("")))
        .with_sym(sym::BRANCH, Sym::intern(view.branch.unwrap_or("")));
    if let Some((seq, method)) = view.cseq {
        event = event
            .with_uint(sym::CSEQ, seq as u64)
            .with_sym(sym::CSEQ_METHOD, Sym::intern(method.as_str()));
    }
    if let Some(status) = view.status() {
        event = event.with_uint(sym::STATUS, status.as_u16() as u64);
    }

    // REGISTER: arguments for the registration-monitoring machine. AORs
    // are interned like Call-IDs; the format! is off the steady-state path.
    if view.method() == Some(Method::Register) {
        if let Some(to) = view.to {
            let aor = format!("{}@{}", to.user().unwrap_or(""), to.host());
            event = event.with_sym(sym::AOR, Sym::intern(&aor));
        }
        if let Some(contact) = view.contact {
            event = event.with_sym(sym::CONTACT_IP, Sym::intern(contact.host()));
        }
        event = event.with_uint(sym::EXPIRES, view.expires.map_or(3_600, u64::from));
    }

    // SDP bodies feed the RTP machine's media coordinates.
    if view.content_type == Some(vids_sdp::MIME_TYPE) {
        if let Some(sdp) = scan_sdp(view.body) {
            event = event
                .with_bool(sym::HAS_SDP, true)
                .with_sym(sym::SDP_IP, Sym::intern(sdp.ip))
                .with_uint(sym::SDP_PORT, sdp.port);
            if let Some(pt) = sdp.pt {
                event = event.with_uint(sym::SDP_PT, pt);
            }
        }
    }

    let is_initial_invite = view.method() == Some(Method::Invite) && to_tag.is_none();
    Classified::Sip {
        call_id,
        event,
        is_initial_invite,
        is_request: view.is_request(),
        dst_ip: dst.ip,
    }
}

struct SdpScan<'a> {
    ip: &'a str,
    port: u64,
    pt: Option<u64>,
}

/// Scans an SDP body for the effective connection address and the first
/// `m=audio` section, borrowing slices instead of building a
/// [`vids_sdp::SessionDescription`]. Session-level `c=` wins over the
/// origin address, matching `SessionDescription::media_addr`.
fn scan_sdp(body: &str) -> Option<SdpScan<'_>> {
    let mut origin = "";
    let mut connection = "";
    for line in body.lines() {
        if let Some(rest) = line.strip_prefix("o=") {
            origin = rest.split_whitespace().next_back().unwrap_or("");
        } else if let Some(rest) = line.strip_prefix("c=") {
            connection = rest.strip_prefix("IN IP4 ")?.trim();
        } else if let Some(rest) = line.strip_prefix("m=audio ") {
            let mut tokens = rest.split_whitespace();
            let port: u16 = tokens.next()?.parse().ok()?;
            if tokens.next()? != "RTP/AVP" {
                return None;
            }
            let pt = tokens
                .next()
                .and_then(|t| t.parse::<u8>().ok())
                .map(u64::from);
            let ip = if connection.is_empty() {
                origin
            } else {
                connection
            };
            return Some(SdpScan {
                ip,
                port: port as u64,
                pt,
            });
        }
    }
    None
}

fn rtp_event(header: &RtpHeader, src: Address, dst: Address, wire_bytes: u64) -> Event {
    // Arguments in ascending pre-seeded symbol-id order, so every sorted
    // VarMap insert is an append rather than a probe-and-shift.
    Event::data(sym::RTP_PACKET)
        .with_sym(sym::SRC_IP, ip_sym(src.ip))
        .with_sym(sym::DST_IP, ip_sym(dst.ip))
        .with_uint(sym::SRC_PORT, src.port as u64)
        .with_uint(sym::DST_PORT, dst.port as u64)
        .with_uint(sym::SSRC, header.ssrc as u64)
        .with_uint(sym::SEQ, header.sequence_number as u64)
        .with_uint(sym::TS, header.timestamp as u64)
        .with_uint(sym::PT, header.payload_type as u64)
        .with_uint(sym::SIZE, wire_bytes)
}

#[cfg(test)]
mod tests {
    use super::*;
    use vids_netsim::packet::Address;
    use vids_netsim::time::SimTime;
    use vids_rtp::packet::RtpPacket;
    use vids_sdp::{Codec, SessionDescription};
    use vids_sip::message::Request;
    use vids_sip::{SipUri, StatusCode};

    fn packet(payload: Payload) -> Packet {
        Packet {
            src: Address::new(10, 1, 0, 10, 5060),
            dst: Address::new(10, 2, 0, 10, 5060),
            payload,
            id: 1,
            sent_at: SimTime::ZERO,
        }
    }

    fn invite_with_sdp() -> Request {
        let sdp = SessionDescription::audio_offer("alice", "10.1.0.10", 20_000, &[Codec::G729]);
        Request::invite(
            &SipUri::new("alice", "a.example.com"),
            &SipUri::new("bob", "b.example.com"),
            "cls-1",
        )
        .with_body(vids_sdp::MIME_TYPE, sdp.to_string())
    }

    #[test]
    fn classifies_initial_invite_with_sdp() {
        let pkt = packet(Payload::Sip(invite_with_sdp().to_string()));
        let Classified::Sip {
            call_id,
            event,
            is_initial_invite,
            is_request,
            dst_ip,
        } = classify(&pkt)
        else {
            panic!("expected SIP");
        };
        assert_eq!(call_id, "cls-1");
        assert!(is_initial_invite);
        assert!(is_request);
        assert_eq!(dst_ip, Address::new(10, 2, 0, 10, 0).ip);
        assert_eq!(event.name, "SIP.INVITE");
        assert_eq!(event.str_arg("src_ip"), Some("10.1.0.10"));
        assert!(event.bool_arg("has_sdp"));
        assert_eq!(event.str_arg("sdp_ip"), Some("10.1.0.10"));
        assert_eq!(event.uint_arg("sdp_port"), Some(20_000));
        assert_eq!(event.uint_arg("sdp_pt"), Some(18));
        assert_eq!(event.uint_arg("cseq"), Some(1));
    }

    #[test]
    fn response_classes_map_to_event_names() {
        let inv = invite_with_sdp();
        for (status, name) in [
            (StatusCode::RINGING, "SIP.1xx"),
            (StatusCode::OK, "SIP.2xx"),
            (StatusCode::MOVED_TEMPORARILY, "SIP.3xx"),
            (StatusCode::BUSY_HERE, "SIP.failure"),
        ] {
            let resp = inv.response(status);
            let pkt = packet(Payload::Sip(resp.to_string()));
            let Classified::Sip { event, .. } = classify(&pkt) else {
                panic!("expected SIP");
            };
            assert_eq!(event.name, name);
            assert_eq!(event.uint_arg("status"), Some(status.as_u16() as u64));
        }
    }

    #[test]
    fn reinvite_is_not_initial() {
        let mut inv = invite_with_sdp();
        inv.headers.to_header_mut().unwrap().set_tag("established");
        let pkt = packet(Payload::Sip(inv.to_string()));
        let Classified::Sip {
            is_initial_invite, ..
        } = classify(&pkt)
        else {
            panic!("expected SIP");
        };
        assert!(!is_initial_invite);
    }

    #[test]
    fn classifies_rtp() {
        let rtp = RtpPacket::new(18, 42, 3360, 0xABCD).with_payload(vec![0; 10]);
        let mut pkt = packet(Payload::Rtp(rtp.to_bytes()));
        pkt.src = Address::new(10, 1, 0, 10, 20_000);
        pkt.dst = Address::new(10, 2, 0, 10, 30_000);
        let Classified::Rtp { event } = classify(&pkt) else {
            panic!("expected RTP");
        };
        assert_eq!(event.name, "RTP.Packet");
        assert_eq!(event.uint_arg("ssrc"), Some(0xABCD));
        assert_eq!(event.uint_arg("seq"), Some(42));
        assert_eq!(event.uint_arg("ts"), Some(3360));
        assert_eq!(event.uint_arg("pt"), Some(18));
        assert_eq!(event.uint_arg("dst_port"), Some(30_000));
    }

    #[test]
    fn malformed_traffic_is_flagged() {
        let pkt = packet(Payload::Sip("NOT SIP AT ALL".to_owned()));
        assert!(matches!(
            classify(&pkt),
            Classified::Malformed {
                protocol: "SIP",
                ..
            }
        ));
        let pkt = packet(Payload::Rtp(vec![0x00, 0x01]));
        assert!(matches!(
            classify(&pkt),
            Classified::Malformed {
                protocol: "RTP",
                ..
            }
        ));
    }

    #[test]
    fn register_carries_registration_args() {
        use vids_sip::headers::{CSeq, Header, NameAddr, Via};
        let aor = SipUri::new("roamer", "b.example.com");
        let mut req = Request::new(
            vids_sip::Method::Register,
            SipUri::host_only("b.example.com"),
        );
        req.headers
            .push(Header::Via(Via::udp("10.0.0.20", 5060, "z9hG4bK-r")));
        req.headers
            .push(Header::From(NameAddr::new(aor.clone()).with_tag("t")));
        req.headers.push(Header::To(NameAddr::new(aor)));
        req.headers.push(Header::CallId("reg-1".to_owned()));
        req.headers
            .push(Header::CSeq(CSeq::new(1, vids_sip::Method::Register)));
        req.headers.push(Header::Contact(NameAddr::new(SipUri::new(
            "roamer",
            "10.0.0.20",
        ))));
        req.headers.push(Header::Expires(600));
        let pkt = packet(Payload::Sip(req.to_string()));
        let Classified::Sip { event, .. } = classify(&pkt) else {
            panic!("expected SIP");
        };
        assert_eq!(event.name, "SIP.REGISTER");
        assert_eq!(event.str_arg("aor"), Some("roamer@b.example.com"));
        assert_eq!(event.str_arg("contact_ip"), Some("10.0.0.20"));
        assert_eq!(event.uint_arg("expires"), Some(600));
    }

    #[test]
    fn register_without_expires_defaults_to_3600() {
        use vids_sip::headers::{Header, NameAddr};
        let aor = SipUri::new("u", "b.example.com");
        let mut req = Request::new(
            vids_sip::Method::Register,
            SipUri::host_only("b.example.com"),
        );
        req.headers.push(Header::To(NameAddr::new(aor)));
        req.headers.push(Header::CallId("reg-2".to_owned()));
        let pkt = packet(Payload::Sip(req.to_string()));
        let Classified::Sip { event, .. } = classify(&pkt) else {
            panic!("expected SIP");
        };
        assert_eq!(event.uint_arg("expires"), Some(3_600));
    }

    #[test]
    fn raw_traffic_is_ignored() {
        let pkt = packet(Payload::Raw(vec![1, 2, 3]));
        assert_eq!(classify(&pkt), Classified::Ignored);
    }

    #[test]
    fn classify_wire_matches_in_process_classification() {
        let src = Address::new(10, 1, 0, 10, 5060);
        let dst = Address::new(10, 2, 0, 10, 5060);
        let text = invite_with_sdp().to_string();
        assert_eq!(
            classify_wire(WireProto::Sip, text.as_bytes(), src, dst),
            classify(&packet(Payload::Sip(text.clone())))
        );

        let rtp = RtpPacket::new(18, 42, 3360, 0xABCD)
            .with_payload(vec![0; 10])
            .to_bytes();
        let mut pkt = packet(Payload::Rtp(rtp.clone()));
        pkt.src = Address::new(10, 1, 0, 10, 20_000);
        pkt.dst = Address::new(10, 2, 0, 10, 30_000);
        assert_eq!(
            classify_wire(WireProto::Rtp, &rtp, pkt.src, pkt.dst),
            classify(&pkt)
        );

        assert_eq!(
            classify_wire(WireProto::Sip, b"NOT SIP AT ALL", src, dst),
            classify(&packet(Payload::Sip("NOT SIP AT ALL".to_owned())))
        );
        assert_eq!(
            classify_wire(WireProto::Rtp, &[0x00, 0x01], src, dst),
            classify(&packet(Payload::Rtp(vec![0x00, 0x01])))
        );
    }

    #[test]
    fn non_utf8_sip_datagram_is_malformed() {
        let src = Address::new(10, 1, 0, 10, 5060);
        let dst = Address::new(10, 2, 0, 10, 5060);
        assert!(matches!(
            classify_wire(WireProto::Sip, &[0xFF, 0xFE, 0x00], src, dst),
            Classified::Malformed {
                protocol: "SIP",
                ..
            }
        ));
    }

    #[test]
    fn ip_sym_is_stable_and_matches_dotted_quad() {
        let addr = Address::new(192, 168, 7, 9, 0);
        assert_eq!(ip_sym(addr.ip).as_str(), addr.ip_string());
        assert_eq!(ip_sym(addr.ip), ip_sym(addr.ip));
    }
}
