//! Alerts raised by the analysis engine.

use std::fmt;

use serde::{Deserialize, Serialize};

/// How the suspicious behavior was recognized.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum AlertKind {
    /// A protocol machine entered an annotated attack state (known
    /// attack-pattern match — misuse detection with zero false positives
    /// per §7.5).
    Attack,
    /// An event matched no transition of the specification machine
    /// (anomaly detection: possibly an unknown attack).
    Deviation,
    /// Multiple transitions were simultaneously enabled — a bug in the
    /// deployed machine definitions, surfaced rather than hidden.
    Nondeterminism,
}

impl fmt::Display for AlertKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AlertKind::Attack => f.write_str("ATTACK"),
            AlertKind::Deviation => f.write_str("DEVIATION"),
            AlertKind::Nondeterminism => f.write_str("NONDETERMINISM"),
        }
    }
}

/// One alert, as handed to the administrator (§5: "vids raises an alert
/// flag and notifies administrators for further analysis").
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Alert {
    /// Monitor time in milliseconds.
    pub time_ms: u64,
    /// Detection kind.
    pub kind: AlertKind,
    /// Attack label (e.g. `"invite-flood"`) or deviation summary.
    pub label: String,
    /// The Call-ID of the affected call, when the alert is call-scoped.
    pub call_id: Option<String>,
    /// Which protocol machine fired (`"sip"`, `"rtp"`, `"flood"`, …).
    pub machine: String,
    /// Free-text detail (offending event, addresses).
    pub detail: String,
    /// Forensic context: the most recent EFSM transitions recorded for the
    /// alert's scope (rendered oldest → newest), when telemetry is enabled
    /// with a transition ring. Empty otherwise.
    pub trace: Vec<String>,
}

impl fmt::Display for Alert {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "[{:>9} ms] {} {} ({})",
            self.time_ms, self.kind, self.label, self.machine
        )?;
        if let Some(call) = &self.call_id {
            write!(f, " call={call}")?;
        }
        if !self.detail.is_empty() {
            write!(f, " — {}", self.detail)?;
        }
        if !self.trace.is_empty() {
            write!(f, " [{} trace lines]", self.trace.len())?;
        }
        Ok(())
    }
}

/// Attack labels used by the built-in patterns (the Attack Scenario
/// database of Fig. 3). Scenario code and tests match on these.
pub mod labels {
    /// Fig. 4: INVITE request flooding.
    pub const INVITE_FLOOD: &str = "invite-flood";
    /// Fig. 5: RTP still arriving after the BYE + timer T — raised for both
    /// the BYE DoS (spoofed BYE) and billing fraud (own BYE, media
    /// continues), which share the signature.
    pub const RTP_AFTER_BYE: &str = "rtp-after-bye";
    /// Fig. 6: media spamming (same SSRC, sequence/timestamp gap).
    pub const MEDIA_SPAM: &str = "media-spam";
    /// An RTP stream with an SSRC never seen in this session's direction.
    pub const RTP_UNKNOWN_SSRC: &str = "rtp-unknown-ssrc";
    /// RTP with a payload type other than the negotiated codec.
    pub const RTP_CODEC_VIOLATION: &str = "rtp-codec-violation";
    /// RTP from a source that is neither negotiated endpoint.
    pub const RTP_FOREIGN_SOURCE: &str = "rtp-foreign-source";
    /// One direction exceeding the packet-rate budget.
    pub const RTP_FLOOD: &str = "rtp-flood";
    /// In-dialog re-INVITE redirecting media off the negotiated parties.
    pub const CALL_HIJACK: &str = "call-hijack";
    /// A BYE whose dialog tags do not match the monitored dialog.
    pub const SPOOFED_BYE: &str = "spoofed-bye";
    /// A CANCEL for a dialog already past the setup phase, or with foreign
    /// tags.
    pub const SPOOFED_CANCEL: &str = "spoofed-cancel";
    /// Response flood toward one destination with no matching calls (DRDoS
    /// reflection).
    pub const RESPONSE_FLOOD: &str = "response-flood";
    /// A registration binding changed or removed by a foreign source
    /// (extension: the unregister/registration-hijack attack).
    pub const REGISTRATION_HIJACK: &str = "registration-hijack";
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let a = Alert {
            time_ms: 1234,
            kind: AlertKind::Attack,
            label: labels::INVITE_FLOOD.to_owned(),
            call_id: None,
            machine: "flood".to_owned(),
            detail: "dst=10.2.0.10".to_owned(),
            trace: vec!["t=0ms flood INVITE: counting -> counting".to_owned()],
        };
        let text = a.to_string();
        assert!(text.contains("ATTACK"));
        assert!(text.contains("invite-flood"));
        assert!(text.contains("dst=10.2.0.10"));
    }

    #[test]
    fn serde_round_trip() {
        let a = Alert {
            time_ms: 9,
            kind: AlertKind::Deviation,
            label: "x".to_owned(),
            call_id: Some("c1".to_owned()),
            machine: "sip".to_owned(),
            detail: String::new(),
            trace: Vec::new(),
        };
        let json = serde_json_like(&a);
        assert!(json.contains("Deviation"));
        assert!(json.contains("c1"));
    }

    // serde_json is not a permitted dependency; a smoke check through the
    // Debug of the Serialize impl is enough to pin the derive exists.
    fn serde_json_like(a: &Alert) -> String {
        format!("{a:?}")
    }
}
