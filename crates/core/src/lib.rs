//! # vids-core — VoIP intrusion detection through interacting protocol state machines
//!
//! The paper's contribution (Sengar, Wijesekera, Wang, Jajodia — DSN 2006):
//! an online, specification-based VoIP IDS that tracks every monitored call
//! with a pair of **communicating extended finite state machines** — one for
//! SIP signaling, one for the RTP media session — synchronized through FIFO
//! δ-message channels and shared per-call global variables.
//!
//! Architecture (paper Fig. 3), module by module:
//!
//! * [`classify`] — the *Packet Classifier / Event Distributor*: groups
//!   packets per call (SIP by Call-ID, RTP by the media coordinates the SIP
//!   machine published) and converts them to EFSM events.
//! * [`factbase`] — the *Call State Fact Base*: one EFSM network per
//!   ongoing call plus per-destination flood machines; evicts calls whose
//!   machines all reached final states; accounts per-call memory (§7.3).
//! * [`machines`] — the protocol state machines of Figs. 2, 4, 5, 6 and
//!   the *Attack Scenario* annotations (attack states).
//! * [`engine`] — the *Analysis Engine*: [`engine::Vids::process`] feeds
//!   each packet through the machinery and returns the raised [`Alert`]s.
//! * [`cost`] — the per-packet processing-delay model calibrated to §7's
//!   measurements (+100 ms call setup, +1.5 ms RTP, 3.6 % CPU).
//! * [`tap`] — [`tap::VidsTap`]: mounts the IDS inline on a
//!   [`vids_netsim::node::TapNode`] between edge router and hub (Fig. 1).
//! * [`sink`] — push-based alert delivery ([`sink::AlertSink`]); the engine
//!   raises alerts into a sink instead of allocating a `Vec` per packet.
//! * [`monitor`] — the [`monitor::Monitor`] trait unifying [`engine::Vids`],
//!   [`pool::VidsPool`] and [`tap::VidsTap`] behind one driver interface.
//! * [`pool`] — [`pool::VidsPool`]: the scale-out engine; hash-partitions
//!   monitored calls across independent shards and ingests packets in
//!   batches with parallel shard execution.
//!
//! Observability comes from the `vids-telemetry` crate (re-exported here as
//! [`telemetry`]): enable it with [`engine::Vids::enable_telemetry`] /
//! [`pool::VidsPool::enable_telemetry`] and read back merged snapshots of
//! per-shard counters, gauges and histograms; alerts then also carry the
//! recent EFSM transitions of their call (the `trace` field).
//!
//! ```
//! use vids_core::prelude::*;
//! use vids_netsim::packet::{Address, Packet, Payload};
//! use vids_netsim::time::SimTime;
//!
//! let mut vids = Vids::new(Config::default());
//! let invite = "INVITE sip:bob@b.example.com SIP/2.0\r\n\
//!               Via: SIP/2.0/UDP 10.1.0.10:5060;branch=z9hG4bK1\r\n\
//!               From: <sip:alice@a.example.com>;tag=1\r\n\
//!               To: <sip:bob@b.example.com>\r\n\
//!               Call-ID: quickstart-1\r\nCSeq: 1 INVITE\r\nContent-Length: 0\r\n\r\n";
//! let pkt = Packet {
//!     src: Address::new(10, 1, 0, 10, 5060),
//!     dst: Address::new(10, 2, 0, 10, 5060),
//!     payload: Payload::Sip(invite.to_owned()),
//!     id: 0,
//!     sent_at: SimTime::ZERO,
//! };
//! let mut alerts = CollectSink::new();
//! vids.process(&pkt, SimTime::ZERO, &mut alerts);
//! assert!(alerts.is_empty(), "a clean INVITE raises nothing");
//! assert_eq!(vids.monitored_calls(), 1);
//! ```

pub mod alert;
pub mod classify;
pub mod config;
pub mod cost;
pub mod engine;
pub mod factbase;
pub mod machines;
pub mod monitor;
pub mod pool;
pub mod report;
pub mod sink;
pub mod snapshot;
pub mod tap;

pub use vids_telemetry as telemetry;

/// The one-stop import for driving the IDS:
/// `use vids_core::prelude::*;`.
pub mod prelude {
    pub use crate::alert::{Alert, AlertKind};
    pub use crate::classify::{classify_wire, Classified, WireProto};
    pub use crate::config::{Config, ConfigBuilder, ConfigError};
    pub use crate::engine::{Vids, VidsCounters};
    pub use crate::monitor::Monitor;
    pub use crate::pool::{
        key_hash, route_hint, FedAlert, FedEvent, FedMiss, FedOutput, PartMask, PipelineIngress,
        PreRouted, RouteHint, VidsPool, WireEvent,
    };
    pub use crate::sink::{AlertSink, CollectSink, NullSink};
    pub use crate::tap::VidsTap;
}

pub use alert::{Alert, AlertKind};
pub use classify::{classify_wire, Classified, WireProto};
pub use config::{Config, ConfigBuilder, ConfigError};
pub use cost::CostModel;
pub use engine::{Vids, VidsCounters};
pub use monitor::Monitor;
pub use pool::{
    key_hash, route_hint, FedAlert, FedEvent, FedMiss, FedOutput, PartMask, PipelineIngress,
    PreRouted, RouteHint, VidsPool, WireEvent,
};
pub use report::AlertReport;
pub use sink::{AlertSink, CollectSink, FnSink, NullSink};
pub use snapshot::{CallSnapshot, MachineSnapshot};
pub use tap::VidsTap;
