//! Push-based alert delivery.
//!
//! The original `Vids::process` returned a freshly allocated `Vec<Alert>`
//! per packet — an allocation on the hot path even for the overwhelmingly
//! common no-alert case. The sink API inverts control: callers hand the
//! engine an [`AlertSink`] and alerts are pushed as they are raised.
//! [`CollectSink`] recovers the old collect-into-a-vec behaviour where a
//! caller really wants it; [`NullSink`] is for callers that only read the
//! persistent alert log afterwards.

use crate::alert::Alert;

/// Receives alerts as the engine raises them.
///
/// Implementations must be cheap: the engine calls [`AlertSink::accept`]
/// inline from the packet path.
pub trait AlertSink {
    /// Delivers one alert.
    fn accept(&mut self, alert: Alert);
}

/// Collects alerts into a `Vec`, preserving raise order.
#[derive(Debug, Default, Clone)]
pub struct CollectSink {
    alerts: Vec<Alert>,
}

impl CollectSink {
    /// An empty collector.
    pub fn new() -> Self {
        CollectSink::default()
    }

    /// The alerts collected so far.
    pub fn alerts(&self) -> &[Alert] {
        &self.alerts
    }

    /// Whether nothing has been collected.
    pub fn is_empty(&self) -> bool {
        self.alerts.is_empty()
    }

    /// Number of collected alerts.
    pub fn len(&self) -> usize {
        self.alerts.len()
    }

    /// Consumes the collector, yielding its alerts.
    pub fn into_alerts(self) -> Vec<Alert> {
        self.alerts
    }

    /// Removes and returns everything collected so far.
    pub fn drain(&mut self) -> Vec<Alert> {
        std::mem::take(&mut self.alerts)
    }
}

impl AlertSink for CollectSink {
    fn accept(&mut self, alert: Alert) {
        self.alerts.push(alert);
    }
}

/// Appending straight into a caller-owned vector.
impl AlertSink for Vec<Alert> {
    fn accept(&mut self, alert: Alert) {
        self.push(alert);
    }
}

/// Discards every alert. The engine's persistent log (`Monitor::alerts`)
/// still records them; this sink just skips per-packet delivery.
#[derive(Debug, Default, Clone, Copy)]
pub struct NullSink;

impl AlertSink for NullSink {
    fn accept(&mut self, _alert: Alert) {}
}

/// Adapts a closure into a sink.
pub struct FnSink<F: FnMut(Alert)>(pub F);

impl<F: FnMut(Alert)> AlertSink for FnSink<F> {
    fn accept(&mut self, alert: Alert) {
        (self.0)(alert);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::alert::AlertKind;

    fn alert(label: &str) -> Alert {
        Alert {
            time_ms: 1,
            kind: AlertKind::Attack,
            label: label.to_owned(),
            call_id: None,
            machine: "test".to_owned(),
            detail: String::new(),
            trace: Vec::new(),
        }
    }

    #[test]
    fn collect_sink_preserves_order() {
        let mut sink = CollectSink::new();
        sink.accept(alert("a"));
        sink.accept(alert("b"));
        assert_eq!(sink.len(), 2);
        let labels: Vec<&str> = sink.alerts().iter().map(|a| a.label.as_str()).collect();
        assert_eq!(labels, ["a", "b"]);
        assert_eq!(sink.drain().len(), 2);
        assert!(sink.is_empty());
    }

    #[test]
    fn vec_and_fn_sinks_deliver() {
        let mut v: Vec<Alert> = Vec::new();
        v.accept(alert("x"));
        assert_eq!(v.len(), 1);

        let mut count = 0;
        {
            let mut f = FnSink(|_a| count += 1);
            f.accept(alert("y"));
            f.accept(alert("z"));
        }
        assert_eq!(count, 2);
    }
}
