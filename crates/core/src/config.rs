//! Detection thresholds and timers (§6 and §7.5), plus the live-ingestion
//! knobs the `vids-ingest` receiver pool reads.

use std::net::SocketAddr;

use vids_netsim::time::SimTime;

/// Tunable parameters of the attack-detection patterns.
///
/// The paper leaves the concrete values operator-tunable and discusses the
/// trade-offs in §7.5 ("the intrusion detection delay is mainly determined
/// by the various timers in attack patterns"); the defaults here are the
/// values used throughout the reproduction's experiments.
///
/// Construct with [`Config::default`] and adjust fields, or use the
/// validating [`Config::builder`]. The struct is `#[non_exhaustive]`:
/// downstream crates cannot build it literally, so fields can be added
/// without a breaking release.
#[derive(Debug, Clone, Copy, PartialEq)]
#[non_exhaustive]
pub struct Config {
    /// INVITE flooding (Fig. 4): alert when more than `invite_flood_n`
    /// INVITEs hit one destination within `invite_flood_t1`. "The setting of
    /// threshold N depends upon the up-limit that a particular type of a
    /// phone can handle."
    pub invite_flood_n: u64,
    /// The T1 window of Fig. 4.
    pub invite_flood_t1: SimTime,
    /// BYE DoS (Fig. 5): how long in-flight RTP may trail a BYE. "Setting
    /// timer T to one round trip time should be long enough" (§7.5); the
    /// testbed RTT is ≈110 ms.
    pub bye_dos_t: SimTime,
    /// Media spamming (Fig. 6): alert when the sequence number jumps by
    /// more than `spam_seq_gap` between consecutive packets of a stream.
    pub spam_seq_gap: i64,
    /// Media spamming: alert when the RTP timestamp jumps by more than this
    /// many codec clock ticks.
    pub spam_ts_gap: i64,
    /// RTP flooding: alert when one direction of a session carries more
    /// than this many packets within `rtp_flood_window`. G.729 legitimately
    /// produces 100 packets/s.
    pub rtp_flood_max_packets: u64,
    /// The RTP-flood counting window.
    pub rtp_flood_window: SimTime,
    /// DRDoS reflection: alert when a destination receives more than this
    /// many responses that belong to no monitored call within
    /// `response_flood_window`.
    pub response_flood_n: u64,
    /// The response-flood counting window.
    pub response_flood_window: SimTime,
    /// Teardown linger: a call whose BYE's 200 never appears is force-
    /// terminated after this long so its machines can be evicted.
    pub teardown_linger: SimTime,
    /// How long a terminated call's machines stay in memory to absorb
    /// retransmissions before eviction (§7.3: "once the calls have
    /// successfully reached the final state, the corresponding protocol
    /// state machines will be deleted from the memory").
    pub eviction_delay: SimTime,
    /// Ablation switch (experiment E8): disable the δ synchronization
    /// channels between the SIP and RTP machines.
    pub cross_protocol_sync: bool,
    /// How many independent engine shards a [`crate::pool::VidsPool`]
    /// partitions monitored calls across. A plain [`crate::engine::Vids`]
    /// ignores this.
    pub shards: usize,
    /// Address the live-ingestion receiver pool binds (`vids serve
    /// --listen`). `None` outside of live capture; the in-process and
    /// replay paths ignore it.
    pub listen: Option<SocketAddr>,
    /// Live ingestion: a receiver flushes its accumulated batch to the
    /// pool once it holds this many datagrams, even if the flush interval
    /// has not elapsed.
    pub batch_flush_packets: usize,
    /// Live ingestion: a receiver flushes its accumulated batch after
    /// this long, even if it is smaller than `batch_flush_packets`.
    pub batch_flush_interval: SimTime,
    /// Offline replay: how far past the last captured packet the final
    /// timer sweep runs, so hanging-call and media-silence timers near the
    /// end of a capture still fire. The historical hard-coded value (30 s)
    /// is the default.
    pub replay_grace: SimTime,
    /// Ceiling on concurrently tracked calls per engine. `0` (the default)
    /// keeps the historical unbounded behaviour. When the ceiling is hit,
    /// new call creation is refused (counted as
    /// `Counter::CallQuotaDrops`); existing calls keep progressing. Used
    /// by the cluster layer to give each tenant a bounded state budget.
    pub max_tracked_calls: usize,
}

impl Default for Config {
    fn default() -> Self {
        Config {
            invite_flood_n: 10,
            invite_flood_t1: SimTime::from_secs(1),
            bye_dos_t: SimTime::from_millis(200),
            spam_seq_gap: 50,
            spam_ts_gap: 4_000,
            rtp_flood_max_packets: 300,
            rtp_flood_window: SimTime::from_secs(1),
            response_flood_n: 10,
            response_flood_window: SimTime::from_secs(1),
            teardown_linger: SimTime::from_secs(8),
            eviction_delay: SimTime::from_secs(5),
            cross_protocol_sync: true,
            shards: 1,
            listen: None,
            batch_flush_packets: 256,
            batch_flush_interval: SimTime::from_millis(10),
            replay_grace: SimTime::from_secs(30),
            max_tracked_calls: 0,
        }
    }
}

impl Config {
    /// Starts a validating builder seeded with the defaults.
    pub fn builder() -> ConfigBuilder {
        ConfigBuilder {
            config: Config::default(),
        }
    }
}

/// A reason [`ConfigBuilder::build`] rejected the configuration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ConfigError {
    /// A counting threshold was zero — the pattern could never stay quiet.
    ZeroThreshold(&'static str),
    /// A counting window or timer was zero — the pattern could never fire.
    ZeroWindow(&'static str),
    /// A pool cannot have zero shards.
    ZeroShards,
}

impl std::fmt::Display for ConfigError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ConfigError::ZeroThreshold(field) => {
                write!(f, "threshold `{field}` must be at least 1")
            }
            ConfigError::ZeroWindow(field) => {
                write!(f, "window `{field}` must be non-zero")
            }
            ConfigError::ZeroShards => write!(f, "a pool needs at least 1 shard"),
        }
    }
}

impl std::error::Error for ConfigError {}

/// Builder for [`Config`] with validation at [`ConfigBuilder::build`].
///
/// ```
/// use vids_core::Config;
///
/// let config = Config::builder()
///     .shards(8)
///     .invite_flood_threshold(20)
///     .build()
///     .unwrap();
/// assert_eq!(config.shards, 8);
/// assert_eq!(config.invite_flood_n, 20);
/// ```
#[derive(Debug, Clone)]
pub struct ConfigBuilder {
    config: Config,
}

impl ConfigBuilder {
    /// INVITE-flood threshold N (Fig. 4).
    pub fn invite_flood_threshold(mut self, n: u64) -> Self {
        self.config.invite_flood_n = n;
        self
    }

    /// INVITE-flood counting window T1 (Fig. 4).
    pub fn invite_flood_window(mut self, t1: SimTime) -> Self {
        self.config.invite_flood_t1 = t1;
        self
    }

    /// BYE-DoS media linger T (Fig. 5).
    pub fn bye_dos_linger(mut self, t: SimTime) -> Self {
        self.config.bye_dos_t = t;
        self
    }

    /// Media-spam sequence-number jump tolerance (Fig. 6).
    pub fn spam_seq_gap(mut self, gap: i64) -> Self {
        self.config.spam_seq_gap = gap;
        self
    }

    /// Media-spam timestamp jump tolerance, in codec ticks (Fig. 6).
    pub fn spam_ts_gap(mut self, gap: i64) -> Self {
        self.config.spam_ts_gap = gap;
        self
    }

    /// RTP-flood packet budget per window.
    pub fn rtp_flood_max_packets(mut self, max: u64) -> Self {
        self.config.rtp_flood_max_packets = max;
        self
    }

    /// RTP-flood counting window.
    pub fn rtp_flood_window(mut self, window: SimTime) -> Self {
        self.config.rtp_flood_window = window;
        self
    }

    /// DRDoS response-flood threshold.
    pub fn response_flood_threshold(mut self, n: u64) -> Self {
        self.config.response_flood_n = n;
        self
    }

    /// DRDoS response-flood counting window.
    pub fn response_flood_window(mut self, window: SimTime) -> Self {
        self.config.response_flood_window = window;
        self
    }

    /// Force-termination delay for calls whose BYE is never answered.
    pub fn teardown_linger(mut self, linger: SimTime) -> Self {
        self.config.teardown_linger = linger;
        self
    }

    /// Grace period before finished calls are evicted (§7.3).
    pub fn eviction_delay(mut self, delay: SimTime) -> Self {
        self.config.eviction_delay = delay;
        self
    }

    /// Enable or disable SIP↔RTP δ synchronization (ablation E8).
    pub fn cross_protocol_sync(mut self, enabled: bool) -> Self {
        self.config.cross_protocol_sync = enabled;
        self
    }

    /// Number of [`crate::pool::VidsPool`] shards.
    pub fn shards(mut self, shards: usize) -> Self {
        self.config.shards = shards;
        self
    }

    /// Address the live-ingestion receiver pool binds (`vids serve`).
    pub fn listen(mut self, addr: SocketAddr) -> Self {
        self.config.listen = Some(addr);
        self
    }

    /// Live ingestion: datagrams accumulated before a receiver flushes its
    /// batch to the pool.
    pub fn batch_flush_packets(mut self, packets: usize) -> Self {
        self.config.batch_flush_packets = packets;
        self
    }

    /// Live ingestion: longest a receiver holds a non-empty batch before
    /// flushing it to the pool.
    pub fn batch_flush_interval(mut self, interval: SimTime) -> Self {
        self.config.batch_flush_interval = interval;
        self
    }

    /// Offline replay: grace period the final timer sweep runs past the
    /// last captured packet.
    pub fn replay_grace(mut self, grace: SimTime) -> Self {
        self.config.replay_grace = grace;
        self
    }

    /// Ceiling on concurrently tracked calls per engine (`0` = unbounded).
    pub fn max_tracked_calls(mut self, max: usize) -> Self {
        self.config.max_tracked_calls = max;
        self
    }

    /// Validates and produces the configuration.
    pub fn build(self) -> Result<Config, ConfigError> {
        let c = &self.config;
        if c.invite_flood_n == 0 {
            return Err(ConfigError::ZeroThreshold("invite_flood_n"));
        }
        if c.response_flood_n == 0 {
            return Err(ConfigError::ZeroThreshold("response_flood_n"));
        }
        if c.rtp_flood_max_packets == 0 {
            return Err(ConfigError::ZeroThreshold("rtp_flood_max_packets"));
        }
        if c.spam_seq_gap <= 0 {
            return Err(ConfigError::ZeroThreshold("spam_seq_gap"));
        }
        if c.spam_ts_gap <= 0 {
            return Err(ConfigError::ZeroThreshold("spam_ts_gap"));
        }
        if c.invite_flood_t1.is_zero() {
            return Err(ConfigError::ZeroWindow("invite_flood_t1"));
        }
        if c.rtp_flood_window.is_zero() {
            return Err(ConfigError::ZeroWindow("rtp_flood_window"));
        }
        if c.response_flood_window.is_zero() {
            return Err(ConfigError::ZeroWindow("response_flood_window"));
        }
        if c.shards == 0 {
            return Err(ConfigError::ZeroShards);
        }
        if c.batch_flush_packets == 0 {
            return Err(ConfigError::ZeroThreshold("batch_flush_packets"));
        }
        if c.batch_flush_interval.is_zero() {
            return Err(ConfigError::ZeroWindow("batch_flush_interval"));
        }
        if c.replay_grace.is_zero() {
            return Err(ConfigError::ZeroWindow("replay_grace"));
        }
        Ok(self.config)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_sane() {
        let c = Config::default();
        assert!(c.invite_flood_n > 1);
        assert!(c.bye_dos_t < c.teardown_linger);
        assert!(c.spam_seq_gap > 0 && c.spam_ts_gap > 0);
        assert!(
            c.rtp_flood_max_packets > 100,
            "must exceed one G.729 second"
        );
        assert!(c.cross_protocol_sync);
        assert!(c.listen.is_none());
        assert!(c.batch_flush_packets > 0);
        assert!(!c.batch_flush_interval.is_zero());
        assert_eq!(c.replay_grace, SimTime::from_secs(30));
    }

    #[test]
    fn ingestion_knobs_validate_like_shards() {
        let built = Config::builder()
            .listen("127.0.0.1:5060".parse().unwrap())
            .batch_flush_packets(64)
            .batch_flush_interval(SimTime::from_millis(5))
            .build()
            .unwrap();
        assert_eq!(built.listen, Some("127.0.0.1:5060".parse().unwrap()));
        assert_eq!(built.batch_flush_packets, 64);
        assert_eq!(built.batch_flush_interval, SimTime::from_millis(5));

        assert_eq!(
            Config::builder().batch_flush_packets(0).build(),
            Err(ConfigError::ZeroThreshold("batch_flush_packets"))
        );
        assert_eq!(
            Config::builder()
                .batch_flush_interval(SimTime::ZERO)
                .build(),
            Err(ConfigError::ZeroWindow("batch_flush_interval"))
        );
        assert_eq!(
            Config::builder()
                .replay_grace(SimTime::from_secs(5))
                .build()
                .unwrap()
                .replay_grace,
            SimTime::from_secs(5)
        );
        assert_eq!(
            Config::builder().replay_grace(SimTime::ZERO).build(),
            Err(ConfigError::ZeroWindow("replay_grace"))
        );
    }
}
