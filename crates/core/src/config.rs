//! Detection thresholds and timers (§6 and §7.5).

use vids_netsim::time::SimTime;

/// Tunable parameters of the attack-detection patterns.
///
/// The paper leaves the concrete values operator-tunable and discusses the
/// trade-offs in §7.5 ("the intrusion detection delay is mainly determined
/// by the various timers in attack patterns"); the defaults here are the
/// values used throughout the reproduction's experiments.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Config {
    /// INVITE flooding (Fig. 4): alert when more than `invite_flood_n`
    /// INVITEs hit one destination within `invite_flood_t1`. "The setting of
    /// threshold N depends upon the up-limit that a particular type of a
    /// phone can handle."
    pub invite_flood_n: u64,
    /// The T1 window of Fig. 4.
    pub invite_flood_t1: SimTime,
    /// BYE DoS (Fig. 5): how long in-flight RTP may trail a BYE. "Setting
    /// timer T to one round trip time should be long enough" (§7.5); the
    /// testbed RTT is ≈110 ms.
    pub bye_dos_t: SimTime,
    /// Media spamming (Fig. 6): alert when the sequence number jumps by
    /// more than `spam_seq_gap` between consecutive packets of a stream.
    pub spam_seq_gap: i64,
    /// Media spamming: alert when the RTP timestamp jumps by more than this
    /// many codec clock ticks.
    pub spam_ts_gap: i64,
    /// RTP flooding: alert when one direction of a session carries more
    /// than this many packets within `rtp_flood_window`. G.729 legitimately
    /// produces 100 packets/s.
    pub rtp_flood_max_packets: u64,
    /// The RTP-flood counting window.
    pub rtp_flood_window: SimTime,
    /// DRDoS reflection: alert when a destination receives more than this
    /// many responses that belong to no monitored call within
    /// `response_flood_window`.
    pub response_flood_n: u64,
    /// The response-flood counting window.
    pub response_flood_window: SimTime,
    /// Teardown linger: a call whose BYE's 200 never appears is force-
    /// terminated after this long so its machines can be evicted.
    pub teardown_linger: SimTime,
    /// How long a terminated call's machines stay in memory to absorb
    /// retransmissions before eviction (§7.3: "once the calls have
    /// successfully reached the final state, the corresponding protocol
    /// state machines will be deleted from the memory").
    pub eviction_delay: SimTime,
    /// Ablation switch (experiment E8): disable the δ synchronization
    /// channels between the SIP and RTP machines.
    pub cross_protocol_sync: bool,
}

impl Default for Config {
    fn default() -> Self {
        Config {
            invite_flood_n: 10,
            invite_flood_t1: SimTime::from_secs(1),
            bye_dos_t: SimTime::from_millis(200),
            spam_seq_gap: 50,
            spam_ts_gap: 4_000,
            rtp_flood_max_packets: 300,
            rtp_flood_window: SimTime::from_secs(1),
            response_flood_n: 10,
            response_flood_window: SimTime::from_secs(1),
            teardown_linger: SimTime::from_secs(8),
            eviction_delay: SimTime::from_secs(5),
            cross_protocol_sync: true,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_sane() {
        let c = Config::default();
        assert!(c.invite_flood_n > 1);
        assert!(c.bye_dos_t < c.teardown_linger);
        assert!(c.spam_seq_gap > 0 && c.spam_ts_gap > 0);
        assert!(c.rtp_flood_max_packets > 100, "must exceed one G.729 second");
        assert!(c.cross_protocol_sync);
    }
}
