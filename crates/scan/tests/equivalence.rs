//! Property-based equivalence oracle: every SWAR primitive agrees with its
//! naive scalar twin on arbitrary bytes.
//!
//! The exhaustive unit tests in `src/lib.rs` pin every buffer length
//! 0..=64 (each word/remainder split); these proptests cover the rest of
//! the input space — long buffers, arbitrary needle bytes, high-bit
//! neighbors — where a masking mistake in the zero-lane trick would hide.

use proptest::prelude::*;

use vids_scan::{
    eq_ignore_case, eq_ignore_case_scalar, find_byte, find_byte2, find_byte2_scalar,
    find_byte_scalar, find_seq, find_seq_scalar, is_token_byte, to_lower_word, token_run,
};

proptest! {
    #[test]
    fn find_byte_matches_scalar(hay in proptest::collection::vec(any::<u8>(), 0..200), needle in any::<u8>()) {
        prop_assert_eq!(find_byte(&hay, needle), find_byte_scalar(&hay, needle));
    }

    #[test]
    fn find_byte2_matches_scalar(hay in proptest::collection::vec(any::<u8>(), 0..200), a in any::<u8>(), b in any::<u8>()) {
        prop_assert_eq!(find_byte2(&hay, a, b), find_byte2_scalar(&hay, a, b));
    }

    #[test]
    fn find_seq_matches_scalar(
        hay in proptest::collection::vec(any::<u8>(), 0..200),
        needle in proptest::collection::vec(any::<u8>(), 0..8),
    ) {
        prop_assert_eq!(find_seq(&hay, &needle), find_seq_scalar(&hay, &needle));
    }

    /// Bias the haystack toward CRLF-dense SIP-like text so sequence
    /// candidates actually overlap (uniform random bytes almost never
    /// produce a partial `\r\n\r\n` prefix).
    #[test]
    fn find_crlfcrlf_matches_scalar(picks in proptest::collection::vec(0usize..5, 0..200)) {
        const ALPHABET: [u8; 5] = [b'\r', b'\n', b'a', b':', b' '];
        let hay: Vec<u8> = picks.iter().map(|&i| ALPHABET[i]).collect();
        prop_assert_eq!(find_seq(&hay, b"\r\n\r\n"), find_seq_scalar(&hay, b"\r\n\r\n"));
        prop_assert_eq!(find_byte2(&hay, b'\r', b'\n'), find_byte2_scalar(&hay, b'\r', b'\n'));
    }

    #[test]
    fn eq_ignore_case_matches_scalar(
        a in proptest::collection::vec(any::<u8>(), 0..100),
        b in proptest::collection::vec(any::<u8>(), 0..100),
    ) {
        prop_assert_eq!(eq_ignore_case(&a, &b), eq_ignore_case_scalar(&a, &b));
    }

    /// Same-length pairs differing only in ASCII case must always compare
    /// equal (the generator above rarely produces equal pairs).
    #[test]
    fn eq_ignore_case_accepts_case_flips(a in proptest::collection::vec(any::<u8>(), 0..100)) {
        let flipped: Vec<u8> = a.iter().map(|b| {
            if b.is_ascii_alphabetic() { b ^ 0x20 } else { *b }
        }).collect();
        prop_assert!(eq_ignore_case(&a, &flipped));
    }

    #[test]
    fn to_lower_word_matches_per_byte(x in any::<u64>()) {
        let want = u64::from_le_bytes(x.to_le_bytes().map(|b| b.to_ascii_lowercase()));
        prop_assert_eq!(to_lower_word(x), want);
    }

    #[test]
    fn token_run_matches_table(hay in proptest::collection::vec(any::<u8>(), 0..100)) {
        let want = hay.iter().position(|&b| !is_token_byte(b)).unwrap_or(hay.len());
        prop_assert_eq!(token_run(&hay), want);
    }
}
