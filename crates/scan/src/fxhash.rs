//! Fixed multiply hasher for the fact-base maps (FxHash-style).
//!
//! `std`'s default `HashMap` hasher is SipHash-1-3: keyed, flood
//! resistant, and ~10× slower than a multiply for the 4-byte `Sym` and
//! small-tuple keys the fact base uses. Flood resistance buys nothing
//! here — the keys are interner indices and shard-local coordinates, not
//! attacker-chosen strings (attacker text is interned first, and the
//! interner's own table keeps SipHash) — so the hot maps trade it away.
//!
//! The algorithm is the rustc-hash / FxHash one: for each machine word
//! of input, `state = (state rotl 5 ^ word) * K` with a fixed odd
//! 64-bit constant. Vendored rather than depended on (offline build,
//! see the workspace manifest); ~20 lines is below the vendoring
//! threshold for a `vendor/` stub crate.

use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hasher};

/// `HashMap` keyed by [`FxHasher`].
pub type FxHashMap<K, V> = HashMap<K, V, BuildHasherDefault<FxHasher>>;

/// `HashSet` keyed by [`FxHasher`].
pub type FxHashSet<T> = HashSet<T, BuildHasherDefault<FxHasher>>;

const K: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// Multiply-based word-at-a-time hasher. Not flood resistant — use only
/// where keys are not attacker-controlled (see module docs).
#[derive(Default, Clone)]
pub struct FxHasher {
    state: u64,
}

impl FxHasher {
    #[inline]
    fn add(&mut self, word: u64) {
        self.state = (self.state.rotate_left(5) ^ word).wrapping_mul(K);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for chunk in chunks.by_ref() {
            self.add(u64::from_le_bytes(chunk.try_into().expect("8-byte chunk")));
        }
        let rest = chunks.remainder();
        if !rest.is_empty() {
            let mut tail = [0u8; 8];
            tail[..rest.len()].copy_from_slice(rest);
            self.add(u64::from_le_bytes(tail));
        }
    }

    #[inline]
    fn write_u8(&mut self, i: u8) {
        self.add(i as u64);
    }

    #[inline]
    fn write_u16(&mut self, i: u16) {
        self.add(i as u64);
    }

    #[inline]
    fn write_u32(&mut self, i: u32) {
        self.add(i as u64);
    }

    #[inline]
    fn write_u64(&mut self, i: u64) {
        self.add(i);
    }

    #[inline]
    fn write_usize(&mut self, i: usize) {
        self.add(i as u64);
    }

    #[inline]
    fn finish(&self) -> u64 {
        self.state
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::hash::Hash;

    fn hash_of<T: Hash>(v: &T) -> u64 {
        let mut h = FxHasher::default();
        v.hash(&mut h);
        h.finish()
    }

    #[test]
    fn deterministic_and_discriminating() {
        assert_eq!(hash_of(&42u32), hash_of(&42u32));
        assert_ne!(hash_of(&42u32), hash_of(&43u32));
        assert_ne!(hash_of(&(1u32, 2u64)), hash_of(&(2u32, 1u64)));
        assert_ne!(hash_of(&"abc"), hash_of(&"abd"));
        // Tail handling: differing bytes past the last full word count.
        assert_ne!(hash_of(&[1u8; 9]), {
            let mut v = [1u8; 9];
            v[8] = 2;
            hash_of(&v)
        });
    }

    #[test]
    fn map_roundtrip() {
        let mut m: FxHashMap<u32, &str> = FxHashMap::default();
        for i in 0..1000u32 {
            m.insert(i, "v");
        }
        assert_eq!(m.len(), 1000);
        assert_eq!(m.get(&999), Some(&"v"));
        let mut s: FxHashSet<(u32, u16)> = FxHashSet::default();
        s.insert((7, 20000));
        assert!(s.contains(&(7, 20000)));
    }
}
