//! SWAR byte-scanning primitives for the vids wire hot path.
//!
//! The monitor's per-packet budget is dominated by two things: scanning
//! SIP text (line ends, colons, header names) and hashing small keys into
//! the fact base. This crate provides both, in 100% safe Rust:
//!
//! * `memchr`-style **byte finders** that examine eight bytes per step
//!   (SWAR — SIMD Within A Register — over `u64` words built with
//!   [`u64::from_le_bytes`] on [`slice::chunks_exact`] chunks, so there
//!   is no unsafe tail load to get wrong: the remainder is scanned
//!   byte-wise and out-of-bounds reads are impossible by construction);
//! * word-at-a-time **ASCII case folding** for case-insensitive header
//!   name matching;
//! * the RFC 3261 **token charset** as a 256-entry table;
//! * a vendored **FxHash-style multiply hasher** ([`fxhash`]) for the
//!   fact-base maps, whose keys are 4-byte interned symbols that do not
//!   need SipHash's flood resistance (see the module docs).
//!
//! Every SWAR finder has a naive scalar twin (`*_scalar`) exported for
//! the equivalence oracles in `vids-harness`: proptests assert the two
//! agree on arbitrary bytes, and exhaustive unit tests cover every
//! buffer length 0..=64 so each alignment/remainder case is pinned.
//!
//! `std::simd` would express the same scans more directly but is
//! nightly-only; explicit `u64` SWAR is what stable Rust offers, and it
//! compiles to the same handful of ALU ops. See DESIGN.md §7g.

pub mod fxhash;

/// Bytes per SWAR word.
const WORD: usize = 8;

/// Low bit of every byte lane.
const LO: u64 = 0x0101_0101_0101_0101;

/// High bit of every byte lane.
const HI: u64 = 0x8080_8080_8080_8080;

#[inline]
fn load(chunk: &[u8]) -> u64 {
    // chunks_exact(8) guarantees the length; the compiler folds this
    // into a single unaligned 8-byte load.
    u64::from_le_bytes(chunk.try_into().expect("8-byte chunk"))
}

/// A mask with 0x80 set in every lane of `x` that is zero. Exact (the
/// `& !x` term removes the 0x80-lane false positives of the classic
/// approximation).
#[inline]
fn zero_lanes(x: u64) -> u64 {
    x.wrapping_sub(LO) & !x & HI
}

/// Index of the first 0x80-marked lane (little-endian: lowest address).
#[inline]
fn first_lane(mask: u64) -> usize {
    (mask.trailing_zeros() / 8) as usize
}

/// Finds the first occurrence of `needle`, eight bytes at a time.
#[inline]
pub fn find_byte(hay: &[u8], needle: u8) -> Option<usize> {
    let pat = LO * needle as u64;
    let mut chunks = hay.chunks_exact(WORD);
    let mut offset = 0;
    for chunk in chunks.by_ref() {
        let hit = zero_lanes(load(chunk) ^ pat);
        if hit != 0 {
            return Some(offset + first_lane(hit));
        }
        offset += WORD;
    }
    chunks
        .remainder()
        .iter()
        .position(|&b| b == needle)
        .map(|i| offset + i)
}

/// Naive twin of [`find_byte`] for differential testing.
#[inline]
pub fn find_byte_scalar(hay: &[u8], needle: u8) -> Option<usize> {
    hay.iter().position(|&b| b == needle)
}

/// Finds the first occurrence of either needle, eight bytes at a time.
#[inline]
pub fn find_byte2(hay: &[u8], a: u8, b: u8) -> Option<usize> {
    let pat_a = LO * a as u64;
    let pat_b = LO * b as u64;
    let mut chunks = hay.chunks_exact(WORD);
    let mut offset = 0;
    for chunk in chunks.by_ref() {
        let x = load(chunk);
        let hit = zero_lanes(x ^ pat_a) | zero_lanes(x ^ pat_b);
        if hit != 0 {
            return Some(offset + first_lane(hit));
        }
        offset += WORD;
    }
    chunks
        .remainder()
        .iter()
        .position(|&c| c == a || c == b)
        .map(|i| offset + i)
}

/// Naive twin of [`find_byte2`] for differential testing.
#[inline]
pub fn find_byte2_scalar(hay: &[u8], a: u8, b: u8) -> Option<usize> {
    hay.iter().position(|&c| c == a || c == b)
}

/// Finds the first occurrence of the byte sequence `needle`: SWAR scan
/// for the first byte, then a direct comparison of the remainder. Empty
/// needles match at 0, needles longer than `hay` never match.
#[inline]
pub fn find_seq(hay: &[u8], needle: &[u8]) -> Option<usize> {
    let (&first, rest) = needle.split_first()?;
    if needle.len() > hay.len() {
        return None;
    }
    let last = hay.len() - needle.len();
    let mut from = 0;
    while from <= last {
        let i = from + find_byte(&hay[from..], first)?;
        if i > last {
            return None;
        }
        if &hay[i + 1..i + needle.len()] == rest {
            return Some(i);
        }
        from = i + 1;
    }
    None
}

/// Naive twin of [`find_seq`] for differential testing.
#[inline]
pub fn find_seq_scalar(hay: &[u8], needle: &[u8]) -> Option<usize> {
    if needle.is_empty() {
        return None;
    }
    if needle.len() > hay.len() {
        return None;
    }
    (0..=hay.len() - needle.len()).find(|&i| &hay[i..i + needle.len()] == needle)
}

/// Lowercases the ASCII uppercase lanes of a SWAR word, touching nothing
/// else (unlike `x | 0x20`, which would also fold `@` into backtick and
/// `\r` into `-` — wrong for header-name comparison).
#[inline]
pub fn to_lower_word(x: u64) -> u64 {
    // 0x80 in every ASCII lane ≥ 'A' (forcing the high bit prevents
    // inter-lane borrows, and non-ASCII lanes are masked out below).
    let ge_a = (x | HI).wrapping_sub(LO * b'A' as u64) & HI;
    // 0x80 in every ASCII lane > 'Z'.
    let gt_z = (x | HI).wrapping_sub(LO * (b'Z' as u64 + 1)) & HI;
    let upper = ge_a & !gt_z & !(x & HI);
    x | (upper >> 2) // 0x80 >> 2 == 0x20, the case bit
}

/// ASCII case-insensitive equality, eight bytes at a time.
#[inline]
pub fn eq_ignore_case(a: &[u8], b: &[u8]) -> bool {
    if a.len() != b.len() {
        return false;
    }
    let mut ca = a.chunks_exact(WORD);
    let mut cb = b.chunks_exact(WORD);
    for (xa, xb) in ca.by_ref().zip(cb.by_ref()) {
        if to_lower_word(load(xa)) != to_lower_word(load(xb)) {
            return false;
        }
    }
    ca.remainder()
        .iter()
        .zip(cb.remainder())
        .all(|(&x, &y)| x.eq_ignore_ascii_case(&y))
}

/// Naive twin of [`eq_ignore_case`] for differential testing.
#[inline]
pub fn eq_ignore_case_scalar(a: &[u8], b: &[u8]) -> bool {
    a.eq_ignore_ascii_case(b)
}

/// RFC 3261 §25.1 `token` charset: alphanumeric plus `-.!%*_+`'~`.
/// Header names, methods and parameter names are tokens.
const fn build_token_table() -> [bool; 256] {
    let mut t = [false; 256];
    let mut b: usize = 0;
    while b < 256 {
        let c = b as u8;
        t[b] = c.is_ascii_alphanumeric()
            || matches!(
                c,
                b'-' | b'.' | b'!' | b'%' | b'*' | b'_' | b'+' | b'`' | b'\'' | b'~'
            );
        b += 1;
    }
    t
}

/// Token-charset classification table (see [`is_token_byte`]).
pub static TOKEN_TABLE: [bool; 256] = build_token_table();

/// Whether `b` belongs to the RFC 3261 `token` charset.
#[inline]
pub fn is_token_byte(b: u8) -> bool {
    TOKEN_TABLE[b as usize]
}

/// Length of the leading token run (the first index that is *not* a
/// token byte, or `hay.len()`).
#[inline]
pub fn token_run(hay: &[u8]) -> usize {
    hay.iter()
        .position(|&b| !is_token_byte(b))
        .unwrap_or(hay.len())
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Every buffer length 0..=64, needle at every position: each SWAR
    /// word/remainder split is exercised, with the needle in every lane.
    #[test]
    fn find_byte_every_length_and_position() {
        for len in 0..=64usize {
            let hay = vec![b'x'; len];
            assert_eq!(find_byte(&hay, b'q'), None, "len {len}, absent");
            for pos in 0..len {
                let mut hay = vec![b'x'; len];
                hay[pos] = b'q';
                assert_eq!(find_byte(&hay, b'q'), Some(pos), "len {len}, pos {pos}");
                // First match wins even with a duplicate later.
                if pos + 1 < len {
                    hay[pos + 1] = b'q';
                    assert_eq!(find_byte(&hay, b'q'), Some(pos));
                }
            }
        }
    }

    /// The lane distinguished from the needle only by the high bit must
    /// not false-positive (the classic has-zero approximation would).
    #[test]
    fn find_byte_high_bit_neighbors() {
        for len in 1..=64usize {
            let hay = vec![0x80u8; len];
            assert_eq!(find_byte(&hay, 0x00), None, "len {len}");
            let hay = vec![0xFFu8; len];
            assert_eq!(find_byte(&hay, 0x7F), None, "len {len}");
        }
    }

    #[test]
    fn find_byte2_every_length_and_position() {
        for len in 0..=64usize {
            for pos in 0..len {
                let mut hay = vec![b'x'; len];
                hay[pos] = b'\r';
                assert_eq!(find_byte2(&hay, b'\r', b'\n'), Some(pos));
                hay[pos] = b'\n';
                assert_eq!(find_byte2(&hay, b'\r', b'\n'), Some(pos));
            }
            assert_eq!(find_byte2(&vec![b'x'; len], b'\r', b'\n'), None);
        }
    }

    #[test]
    fn find_seq_every_length_and_position() {
        for len in 0..=64usize {
            for pos in 0..len.saturating_sub(3) {
                let mut hay = vec![b'x'; len];
                hay[pos..pos + 4].copy_from_slice(b"\r\n\r\n");
                assert_eq!(
                    find_seq(&hay, b"\r\n\r\n"),
                    Some(pos),
                    "len {len} pos {pos}"
                );
            }
            assert_eq!(find_seq(&vec![b'x'; len], b"\r\n\r\n"), None);
            // Degenerate needles.
            assert_eq!(find_seq(&vec![b'x'; len], b""), None);
            assert_eq!(find_seq_scalar(&vec![b'x'; len], b""), None);
        }
    }

    /// Overlapping candidates: the first-byte scan must resume and still
    /// find a later real match.
    #[test]
    fn find_seq_overlapping_candidates() {
        assert_eq!(find_seq(b"\r\r\n\r\r\n\r\n", b"\r\n\r\n"), Some(4));
        assert_eq!(find_seq(b"aaab", b"aab"), Some(1));
        assert_eq!(find_seq(b"aaab", b"ab"), Some(2));
    }

    /// `to_lower_word` agrees with `to_ascii_lowercase` on every byte
    /// value, in every lane.
    #[test]
    fn to_lower_word_exhaustive_per_byte() {
        for b in 0..=255u8 {
            for lane in 0..8 {
                let x = (b as u64) << (8 * lane);
                let want = (b.to_ascii_lowercase() as u64) << (8 * lane);
                assert_eq!(to_lower_word(x), want, "byte {b:#x} lane {lane}");
            }
        }
    }

    #[test]
    fn eq_ignore_case_every_length() {
        for len in 0..=64usize {
            let upper: Vec<u8> = (0..len).map(|i| b"HEADER-NAME"[i % 11]).collect();
            let lower: Vec<u8> = upper.iter().map(|b| b.to_ascii_lowercase()).collect();
            assert!(eq_ignore_case(&upper, &lower), "len {len}");
            if len > 0 {
                let mut other = lower.clone();
                other[len / 2] = b'@';
                assert_eq!(
                    eq_ignore_case(&upper, &other),
                    eq_ignore_case_scalar(&upper, &other),
                    "len {len}"
                );
            }
        }
        assert!(!eq_ignore_case(b"abc", b"abcd"));
        // The `| 0x20` shortcut would get these wrong.
        assert!(!eq_ignore_case(b"@", b"`"));
        assert!(!eq_ignore_case(b"\r", b"-"));
        assert!(!eq_ignore_case(b"[", b"{"));
    }

    #[test]
    fn token_table_matches_rfc_charset() {
        assert!(is_token_byte(b'a') && is_token_byte(b'Z') && is_token_byte(b'0'));
        for b in [b'-', b'.', b'!', b'%', b'*', b'_', b'+', b'`', b'\'', b'~'] {
            assert!(is_token_byte(b), "{b:#x}");
        }
        for b in [b' ', b':', b';', b'/', b'@', b'\r', b'\n', 0x00, 0xFF] {
            assert!(!is_token_byte(b), "{b:#x}");
        }
        assert_eq!(token_run(b"INVITE sip:x"), 6);
        assert_eq!(token_run(b"SIP/2.0 200"), 3);
        assert_eq!(token_run(b""), 0);
        assert_eq!(token_run(b"abc"), 3);
    }
}
