//! # vids-agents — simulated VoIP endpoints
//!
//! The applications that populate the Fig. 7 testbed:
//!
//! * [`ua::UserAgent`] — a SIP phone. Registers with its outbound proxy,
//!   places the calls a [`vids_netsim::workload::CallPlan`] schedules
//!   (INVITE → 180 → 200 → ACK, RTP both ways, BYE after the holding time),
//!   answers incoming calls, and collects the per-call measurements the
//!   evaluation plots: call-setup delay (Fig. 9) and RTP delay/jitter
//!   (Fig. 10).
//! * [`proxy::Proxy`] — a stateful SIP proxy + registrar per enterprise.
//!   Routes by request-URI (location service for its own domain, static
//!   "DNS" for remote domains, direct for IP-literal URIs), maintains Via
//!   chains, and logs call arrivals/durations (Fig. 8).
//!
//! All SIP reliability over the lossy Internet path uses the RFC 3261
//! client transaction machines from [`vids_sip::transaction`].

pub mod call;
pub mod proxy;
pub mod ua;

pub use call::{CallRole, CallState, MediaSession, PlannedCall};
pub use proxy::Proxy;
pub use ua::{UaConfig, UaStats, UserAgent};

/// Builds the SIP URI of UA `i` in a domain: `sip:ua{i}@{domain}`.
pub fn ua_uri(i: usize, domain: &str) -> vids_sip::SipUri {
    vids_sip::SipUri::new(format!("ua{i}"), domain)
}

/// The SIP domain of a site octet (1 -> `a.example.com`, 2 -> `b.example.com`).
pub fn site_domain(site: u8) -> &'static str {
    match site {
        1 => "a.example.com",
        2 => "b.example.com",
        _ => "net.example.com",
    }
}
