//! The enterprise SIP proxy + registrar.
//!
//! Per the paper's §2: the proxy "has no media capability and only
//! facilitates the two end points to discover and contact each other
//! through SIP signaling". This implementation routes requests by
//! request-URI (its own location service, a static inter-domain table
//! standing in for DNS, or directly for IP-literal URIs), maintains the Via
//! chain, and — being the observation point of Fig. 8 — logs call arrivals
//! and durations.

use std::collections::HashMap;

use vids_netsim::node::{AppCtx, Application};
use vids_netsim::packet::{Address, Packet, Payload};
use vids_netsim::stats::TimeSeries;
use vids_netsim::time::SimTime;
use vids_sip::headers::{Header, Via};
use vids_sip::message::{Message, Request, Response};
use vids_sip::parse::parse_message;
use vids_sip::{Method, StatusCode};

/// A stateful SIP proxy + registrar for one domain.
pub struct Proxy {
    addr: Address,
    domain: String,
    remote_domains: Vec<(String, Address)>,
    bindings: HashMap<String, Address>,
    branch_counter: u64,
    invite_seen: HashMap<String, SimTime>,
    arrivals: TimeSeries,
    durations: TimeSeries,
    forwarded: u64,
    rejected: u64,
    malformed: u64,
}

impl Proxy {
    /// Creates a proxy for `domain` listening at `addr`.
    pub fn new(addr: Address, domain: impl Into<String>) -> Self {
        Proxy {
            addr,
            domain: domain.into(),
            remote_domains: Vec::new(),
            bindings: HashMap::new(),
            branch_counter: 0,
            invite_seen: HashMap::new(),
            arrivals: TimeSeries::new(),
            durations: TimeSeries::new(),
            forwarded: 0,
            rejected: 0,
            malformed: 0,
        }
    }

    /// Registers a peer domain's inbound proxy (static stand-in for DNS).
    pub fn add_remote_domain(&mut self, domain: impl Into<String>, proxy: Address) {
        self.remote_domains.push((domain.into(), proxy));
    }

    /// Pre-installs a location binding (tests; normally REGISTER fills this).
    pub fn add_binding(&mut self, user: impl Into<String>, contact: Address) {
        self.bindings.insert(user.into(), contact);
    }

    /// INVITE arrival instants observed (Fig. 8, upper plot).
    pub fn arrivals(&self) -> &TimeSeries {
        &self.arrivals
    }

    /// `(BYE time, call duration seconds)` samples (Fig. 8, lower plot).
    pub fn durations(&self) -> &TimeSeries {
        &self.durations
    }

    /// Messages forwarded.
    pub fn forwarded(&self) -> u64 {
        self.forwarded
    }

    /// Requests rejected (no binding, unknown domain, Max-Forwards spent).
    pub fn rejected(&self) -> u64 {
        self.rejected
    }

    /// Unparseable datagrams received.
    pub fn malformed(&self) -> u64 {
        self.malformed
    }

    /// Current registrations.
    pub fn binding_count(&self) -> usize {
        self.bindings.len()
    }

    fn next_branch(&mut self) -> String {
        self.branch_counter += 1;
        format!(
            "{}-pxy-{}-{}",
            vids_sip::BRANCH_MAGIC_COOKIE,
            self.addr.ip,
            self.branch_counter
        )
    }

    /// Where a response must be sent: the topmost Via's sent-by.
    fn via_target(via: &Via) -> Option<Address> {
        let ip = Address::parse_ip(via.host())?;
        Some(Address {
            ip,
            port: via.port().unwrap_or(vids_sip::DEFAULT_SIP_PORT),
        })
    }

    fn reply(&mut self, req: &Request, status: StatusCode, ctx: &mut AppCtx<'_, '_>) {
        let resp = req.response(status);
        if let Some(target) = req.headers.top_via().and_then(Self::via_target) {
            ctx.send_to(target, Payload::Sip(resp.to_string()));
        }
    }

    fn handle_register(&mut self, req: &Request, ctx: &mut AppCtx<'_, '_>) {
        let user = req
            .headers
            .to_header()
            .and_then(|t| t.uri().user().map(str::to_owned))
            .or_else(|| req.uri.user().map(str::to_owned));
        match user {
            Some(user) => {
                // Bind to the Contact's IP-literal if present, else the
                // packet's source (NAT-less testbed: they agree).
                let contact = req
                    .headers
                    .contact()
                    .and_then(|c| Address::parse_ip(c.uri().host()))
                    .map(|ip| Address {
                        ip,
                        port: req
                            .headers
                            .contact()
                            .and_then(|c| c.uri().port())
                            .unwrap_or(vids_sip::DEFAULT_SIP_PORT),
                    });
                if let Some(contact) = contact {
                    self.bindings.insert(user, contact);
                    self.reply(req, StatusCode::OK, ctx);
                } else {
                    self.rejected += 1;
                    self.reply(req, StatusCode::BAD_REQUEST, ctx);
                }
            }
            None => {
                self.rejected += 1;
                self.reply(req, StatusCode::BAD_REQUEST, ctx);
            }
        }
    }

    /// Chooses the next hop for a request by its request-URI.
    fn next_hop(&self, req: &Request) -> Option<Address> {
        // IP-literal: forward directly (ACK/BYE to a Contact).
        if let Some(ip) = Address::parse_ip(req.uri.host()) {
            return Some(Address {
                ip,
                port: req.uri.port().unwrap_or(vids_sip::DEFAULT_SIP_PORT),
            });
        }
        if req.uri.host() == self.domain {
            return req.uri.user().and_then(|u| self.bindings.get(u)).copied();
        }
        self.remote_domains
            .iter()
            .find(|(d, _)| d == req.uri.host())
            .map(|(_, a)| *a)
    }

    fn log_call_progress(&mut self, req: &Request, now: SimTime) {
        match req.method {
            Method::Invite => {
                let call_id = req.call_id().to_owned();
                if !call_id.is_empty() && !self.invite_seen.contains_key(&call_id) {
                    self.invite_seen.insert(call_id, now);
                    self.arrivals.push(now.as_secs_f64(), 1.0);
                }
            }
            Method::Bye => {
                if let Some(start) = self.invite_seen.remove(req.call_id()) {
                    self.durations
                        .push(now.as_secs_f64(), now.saturating_sub(start).as_secs_f64());
                }
            }
            _ => {}
        }
    }

    fn handle_request(&mut self, mut req: Request, ctx: &mut AppCtx<'_, '_>) {
        if req.method == Method::Register && req.uri.host() == self.domain {
            self.handle_register(&req, ctx);
            return;
        }
        // OPTIONS addressed to the proxy itself: answer (this is the DRDoS
        // reflector surface — the answer goes to whatever the Via claims).
        if req.method == Method::Options
            && (req.uri.host() == self.domain
                || Address::parse_ip(req.uri.host()) == Some(self.addr.ip))
            && req.uri.user().is_none()
        {
            self.reply(&req, StatusCode::OK, ctx);
            return;
        }

        self.log_call_progress(&req, ctx.now());

        if let Some(None) = req.headers.decrement_max_forwards() {
            self.rejected += 1;
            return;
        }

        match self.next_hop(&req) {
            Some(next) => {
                let branch = self.next_branch();
                req.headers.push_front(Header::Via(Via::udp(
                    self.addr.ip_string(),
                    self.addr.port,
                    branch,
                )));
                self.forwarded += 1;
                ctx.send_to(next, Payload::Sip(req.to_string()));
            }
            None => {
                self.rejected += 1;
                if req.method.expects_response() {
                    self.reply(&req, StatusCode::NOT_FOUND, ctx);
                }
            }
        }
    }

    fn handle_response(&mut self, mut resp: Response, ctx: &mut AppCtx<'_, '_>) {
        // Pop our own Via, then forward along the next one.
        let Some(top) = resp.headers.top_via() else {
            return;
        };
        if Address::parse_ip(top.host()) != Some(self.addr.ip) {
            // Not ours: misrouted; drop.
            self.rejected += 1;
            return;
        }
        resp.headers.pop_via();
        match resp.headers.top_via().and_then(Self::via_target) {
            Some(next) => {
                self.forwarded += 1;
                ctx.send_to(next, Payload::Sip(resp.to_string()));
            }
            None => {
                self.rejected += 1;
            }
        }
    }
}

impl Application for Proxy {
    fn on_datagram(&mut self, packet: &Packet, ctx: &mut AppCtx<'_, '_>) {
        let Payload::Sip(text) = &packet.payload else {
            self.malformed += 1;
            return;
        };
        match parse_message(text) {
            Ok(Message::Request(req)) => self.handle_request(req, ctx),
            Ok(Message::Response(resp)) => self.handle_response(resp, ctx),
            Err(_) => self.malformed += 1,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vids_netsim::engine::{LinkSpec, Simulator};
    use vids_netsim::node::Host;
    use vids_netsim::node::Hub;
    use vids_sip::SipUri;

    /// App that fires a fixed list of (delay, dest, message) and records
    /// everything it receives.
    struct Script {
        sends: Vec<(SimTime, Address, String)>,
        received: Vec<(SimTime, String)>,
    }

    impl Application for Script {
        fn on_start(&mut self, ctx: &mut AppCtx<'_, '_>) {
            for (i, (delay, _, _)) in self.sends.iter().enumerate() {
                ctx.set_timer(*delay, i as u64);
            }
        }

        fn on_datagram(&mut self, packet: &Packet, ctx: &mut AppCtx<'_, '_>) {
            if let Payload::Sip(text) = &packet.payload {
                self.received.push((ctx.now(), text.clone()));
            }
        }

        fn on_timer(&mut self, token: u64, ctx: &mut AppCtx<'_, '_>) {
            let (_, dst, msg) = self.sends[token as usize].clone();
            ctx.send_to(dst, Payload::Sip(msg));
        }
    }

    /// One-hub world: ua, proxy (and a callee) on a LAN.
    fn lan_world(
        proxy: Proxy,
        apps: Vec<(Address, Box<dyn Application>)>,
    ) -> (
        Simulator,
        vids_netsim::engine::NodeId,
        Vec<vids_netsim::engine::NodeId>,
    ) {
        let mut sim = Simulator::new(1);
        let hub = sim.add_node(Box::new(Hub::new()));
        let lan = LinkSpec::lan_100base_t();
        let proxy_addr = proxy.addr;
        let p = sim.add_node(Box::new(Host::new(proxy_addr, Box::new(proxy))));
        let (pu, pd) = sim.add_duplex_link(p, hub, lan);
        sim.node_as_mut::<Host>(p).set_uplink(pu);
        sim.node_as_mut::<Hub>(hub).add_port(proxy_addr.ip, pd);
        let mut ids = Vec::new();
        for (addr, app) in apps {
            let h = sim.add_node(Box::new(Host::new(addr, app)));
            let (up, down) = sim.add_duplex_link(h, hub, lan);
            sim.node_as_mut::<Host>(h).set_uplink(up);
            sim.node_as_mut::<Hub>(hub).add_port(addr.ip, down);
            ids.push(h);
        }
        (sim, p, ids)
    }

    fn register_msg(user: &str, domain: &str, contact_ip: &str) -> String {
        let from = SipUri::new(user, domain);
        let mut req = Request::new(Method::Register, SipUri::host_only(domain));
        req.headers.push(Header::Via(Via::udp(
            contact_ip.to_owned(),
            5060,
            format!("z9hG4bK-reg-{user}"),
        )));
        req.headers.push(Header::From(
            vids_sip::headers::NameAddr::new(from.clone()).with_tag("rt"),
        ));
        req.headers
            .push(Header::To(vids_sip::headers::NameAddr::new(from)));
        req.headers.push(Header::CallId(format!("reg-{user}")));
        req.headers.push(Header::CSeq(vids_sip::headers::CSeq::new(
            1,
            Method::Register,
        )));
        req.headers
            .push(Header::Contact(vids_sip::headers::NameAddr::new(
                SipUri::new(user, contact_ip),
            )));
        req.headers.push(Header::ContentLength(0));
        req.to_string()
    }

    #[test]
    fn register_then_invite_is_routed_to_binding() {
        let proxy_addr = Address::new(10, 2, 0, 5, 5060);
        let ua_b = Address::new(10, 2, 0, 10, 5060);
        let caller = Address::new(10, 2, 0, 11, 5060);
        let proxy = Proxy::new(proxy_addr, "b.example.com");

        // Build the caller's INVITE to ua0@b.example.com via the proxy.
        let invite = Request::invite(
            &SipUri::new("caller", "b.example.com"),
            &SipUri::new("ua0", "b.example.com"),
            "call-x",
        );
        let mut invite = invite;
        // Caller's Via must carry its own IP so responses route back.
        invite.headers.pop_via();
        invite.headers.push_front(Header::Via(Via::udp(
            caller.ip_string(),
            5060,
            "z9hG4bK-c1",
        )));

        let (mut sim, p, ids) = lan_world(
            proxy,
            vec![
                (
                    ua_b,
                    Box::new(Script {
                        sends: vec![(
                            SimTime::from_millis(1),
                            proxy_addr,
                            register_msg("ua0", "b.example.com", &ua_b.ip_string()),
                        )],
                        received: Vec::new(),
                    }),
                ),
                (
                    caller,
                    Box::new(Script {
                        sends: vec![(SimTime::from_millis(10), proxy_addr, invite.to_string())],
                        received: Vec::new(),
                    }),
                ),
            ],
        );
        sim.run_to_completion();

        // ua_b got: 200 for its REGISTER is sent to the *Via* (its own ip),
        // plus the forwarded INVITE.
        let ua_b_app = sim.node_as::<Host>(ids[0]).app_as::<Script>();
        assert_eq!(ua_b_app.received.len(), 2);
        let forwarded = ua_b_app
            .received
            .iter()
            .find(|(_, m)| m.starts_with("INVITE"))
            .expect("INVITE forwarded to binding");
        // Proxy prepended its Via.
        let msg = parse_message(&forwarded.1).unwrap();
        assert_eq!(msg.headers().vias().count(), 2);
        assert_eq!(
            msg.headers().top_via().unwrap().host(),
            proxy_addr.ip_string()
        );
        assert_eq!(msg.headers().max_forwards(), Some(69));

        let proxy_ref = sim.node_as::<Host>(p).app_as::<Proxy>();
        assert_eq!(proxy_ref.binding_count(), 1);
        assert_eq!(proxy_ref.arrivals().len(), 1);
    }

    #[test]
    fn unknown_user_gets_404() {
        let proxy_addr = Address::new(10, 2, 0, 5, 5060);
        let caller = Address::new(10, 2, 0, 11, 5060);
        let proxy = Proxy::new(proxy_addr, "b.example.com");
        let mut invite = Request::invite(
            &SipUri::new("caller", "b.example.com"),
            &SipUri::new("ghost", "b.example.com"),
            "call-y",
        );
        invite.headers.pop_via();
        invite.headers.push_front(Header::Via(Via::udp(
            caller.ip_string(),
            5060,
            "z9hG4bK-c2",
        )));

        let (mut sim, p, ids) = lan_world(
            proxy,
            vec![(
                caller,
                Box::new(Script {
                    sends: vec![(SimTime::from_millis(1), proxy_addr, invite.to_string())],
                    received: Vec::new(),
                }),
            )],
        );
        sim.run_to_completion();
        let caller_app = sim.node_as::<Host>(ids[0]).app_as::<Script>();
        assert_eq!(caller_app.received.len(), 1);
        assert!(caller_app.received[0].1.starts_with("SIP/2.0 404"));
        assert_eq!(sim.node_as::<Host>(p).app_as::<Proxy>().rejected(), 1);
    }

    #[test]
    fn response_follows_via_chain() {
        // A response arriving at the proxy with [proxy, ua] Vias is relayed
        // to the ua.
        let proxy_addr = Address::new(10, 2, 0, 5, 5060);
        let ua = Address::new(10, 2, 0, 11, 5060);
        let remote = Address::new(10, 2, 0, 12, 5060);
        let proxy = Proxy::new(proxy_addr, "b.example.com");

        let mut resp = Response::new(StatusCode::OK);
        resp.headers.push(Header::Via(Via::udp(
            proxy_addr.ip_string(),
            5060,
            "z9hG4bK-p",
        )));
        resp.headers
            .push(Header::Via(Via::udp(ua.ip_string(), 5060, "z9hG4bK-u")));
        resp.headers.push(Header::CallId("c".to_owned()));
        resp.headers.push(Header::CSeq(vids_sip::headers::CSeq::new(
            1,
            Method::Invite,
        )));
        resp.headers.push(Header::ContentLength(0));

        let (mut sim, _p, ids) = lan_world(
            proxy,
            vec![
                (
                    ua,
                    Box::new(Script {
                        sends: vec![],
                        received: Vec::new(),
                    }),
                ),
                (
                    remote,
                    Box::new(Script {
                        sends: vec![(SimTime::from_millis(1), proxy_addr, resp.to_string())],
                        received: Vec::new(),
                    }),
                ),
            ],
        );
        sim.run_to_completion();
        let ua_app = sim.node_as::<Host>(ids[0]).app_as::<Script>();
        assert_eq!(ua_app.received.len(), 1);
        let msg = parse_message(&ua_app.received[0].1).unwrap();
        // Our Via was popped; the UA's own Via is now on top.
        assert_eq!(msg.headers().vias().count(), 1);
    }

    #[test]
    fn options_to_proxy_reflects_to_via_host() {
        // The DRDoS surface: OPTIONS with a spoofed Via — the 200 goes to
        // the Via host, not the packet source.
        let proxy_addr = Address::new(10, 2, 0, 5, 5060);
        let victim = Address::new(10, 2, 0, 20, 5060);
        let attacker = Address::new(10, 2, 0, 21, 5060);
        let proxy = Proxy::new(proxy_addr, "b.example.com");

        let mut opts = Request::new(Method::Options, SipUri::host_only("b.example.com"));
        opts.headers.push(Header::Via(Via::udp(
            victim.ip_string(),
            5060,
            "z9hG4bK-spoof",
        )));
        opts.headers.push(Header::CallId("drdos-1".to_owned()));
        opts.headers.push(Header::CSeq(vids_sip::headers::CSeq::new(
            1,
            Method::Options,
        )));
        opts.headers.push(Header::ContentLength(0));

        let (mut sim, _p, ids) = lan_world(
            proxy,
            vec![
                (
                    victim,
                    Box::new(Script {
                        sends: vec![],
                        received: Vec::new(),
                    }),
                ),
                (
                    attacker,
                    Box::new(Script {
                        sends: vec![(SimTime::from_millis(1), proxy_addr, opts.to_string())],
                        received: Vec::new(),
                    }),
                ),
            ],
        );
        sim.run_to_completion();
        let victim_app = sim.node_as::<Host>(ids[0]).app_as::<Script>();
        assert_eq!(
            victim_app.received.len(),
            1,
            "reflection reached the victim"
        );
        assert!(victim_app.received[0].1.starts_with("SIP/2.0 200"));
        let attacker_app = sim.node_as::<Host>(ids[1]).app_as::<Script>();
        assert!(attacker_app.received.is_empty());
    }

    #[test]
    fn durations_are_logged_between_invite_and_bye() {
        let proxy_addr = Address::new(10, 2, 0, 5, 5060);
        let caller = Address::new(10, 2, 0, 11, 5060);
        let mut proxy = Proxy::new(proxy_addr, "b.example.com");
        proxy.add_binding("ua0", Address::new(10, 2, 0, 10, 5060));

        let mut invite = Request::invite(
            &SipUri::new("caller", "b.example.com"),
            &SipUri::new("ua0", "b.example.com"),
            "call-dur",
        );
        invite.headers.pop_via();
        invite.headers.push_front(Header::Via(Via::udp(
            caller.ip_string(),
            5060,
            "z9hG4bK-c5",
        )));
        let mut bye = Request::in_dialog(Method::Bye, &invite, 2, Some("bt"));
        bye.uri = SipUri::new("ua0", "b.example.com");

        let (mut sim, p, _ids) = lan_world(
            proxy,
            vec![
                (
                    Address::new(10, 2, 0, 10, 5060),
                    Box::new(Script {
                        sends: vec![],
                        received: Vec::new(),
                    }),
                ),
                (
                    caller,
                    Box::new(Script {
                        sends: vec![
                            (SimTime::from_millis(1), proxy_addr, invite.to_string()),
                            (SimTime::from_secs(30), proxy_addr, bye.to_string()),
                        ],
                        received: Vec::new(),
                    }),
                ),
            ],
        );
        sim.run_to_completion();
        let proxy_ref = sim.node_as::<Host>(p).app_as::<Proxy>();
        assert_eq!(proxy_ref.arrivals().len(), 1);
        assert_eq!(proxy_ref.durations().len(), 1);
        let (_, dur) = proxy_ref.durations().iter().next().unwrap();
        assert!((dur - 30.0).abs() < 0.1, "duration {dur}");
    }
}

#[cfg(test)]
mod forwarding_edge_tests {
    use super::*;
    use vids_sip::headers::{CSeq, Header, NameAddr};
    use vids_sip::SipUri;

    /// Drives the proxy's pure logic without a simulator by inspecting the
    /// next-hop decision and counters directly.
    fn proxy() -> Proxy {
        let mut p = Proxy::new(Address::new(10, 2, 0, 5, 5060), "b.example.com");
        p.add_binding("ua0", Address::new(10, 2, 0, 10, 5060));
        p.add_remote_domain("a.example.com", Address::new(10, 1, 0, 5, 5060));
        p
    }

    fn request(method: Method, uri: SipUri) -> Request {
        let mut req = Request::new(method, uri);
        req.headers
            .push(Header::Via(Via::udp("10.1.0.10", 5060, "z9hG4bK-x")));
        req.headers.push(Header::MaxForwards(70));
        req.headers.push(Header::From(
            NameAddr::new(SipUri::new("x", "a.example.com")).with_tag("t"),
        ));
        req.headers.push(Header::To(NameAddr::new(SipUri::new(
            "ua0",
            "b.example.com",
        ))));
        req.headers.push(Header::CallId("edge-1".to_owned()));
        req.headers.push(Header::CSeq(CSeq::new(1, method)));
        req
    }

    #[test]
    fn next_hop_prefers_ip_literal() {
        let p = proxy();
        let req = request(Method::Ack, SipUri::new("ua0", "10.2.0.99").with_port(5062));
        assert_eq!(
            p.next_hop(&req),
            Some(Address {
                ip: Address::parse_ip("10.2.0.99").unwrap(),
                port: 5062
            })
        );
    }

    #[test]
    fn next_hop_uses_location_service_for_own_domain() {
        let p = proxy();
        let req = request(Method::Invite, SipUri::new("ua0", "b.example.com"));
        assert_eq!(p.next_hop(&req), Some(Address::new(10, 2, 0, 10, 5060)));
    }

    #[test]
    fn next_hop_uses_dns_table_for_remote_domain() {
        let p = proxy();
        let req = request(Method::Invite, SipUri::new("y", "a.example.com"));
        assert_eq!(p.next_hop(&req), Some(Address::new(10, 1, 0, 5, 5060)));
    }

    #[test]
    fn next_hop_unknown_everything_is_none() {
        let p = proxy();
        let req = request(Method::Invite, SipUri::new("y", "elsewhere.example.net"));
        assert_eq!(p.next_hop(&req), None);
        let req = request(Method::Invite, SipUri::new("ghost", "b.example.com"));
        assert_eq!(p.next_hop(&req), None);
    }

    #[test]
    fn via_target_requires_ip_literal_host() {
        let via_ip = Via::udp("10.1.0.10", 5061, "z9hG4bK-a");
        assert_eq!(
            Proxy::via_target(&via_ip),
            Some(Address {
                ip: Address::parse_ip("10.1.0.10").unwrap(),
                port: 5061
            })
        );
        let via_name = Via::udp("host.example.com", 5060, "z9hG4bK-b");
        assert_eq!(Proxy::via_target(&via_name), None);
        // Missing port defaults to 5060.
        let via: Via = "SIP/2.0/UDP 10.1.0.9;branch=z9hG4bK-c".parse().unwrap();
        assert_eq!(Proxy::via_target(&via).unwrap().port, 5060);
    }
}
