//! The simulated SIP phone (user agent).
//!
//! Each UA is both UAC and UAS (§2.1: "the UA switches back and forth
//! between being an UAC and an UAS"). It registers with its outbound proxy,
//! places the calls its plan schedules, answers incoming INVITEs after a
//! ringing delay, streams G.729 RTP while a call is established, and hangs
//! up with BYE. INVITE and BYE ride RFC 3261 client transactions so the
//! 0.42 % Internet loss does not strand calls.
//!
//! Measurement hooks ([`UaStats`]): per-call setup delay (INVITE→180,
//! Fig. 9), RTP end-to-end delay and interarrival jitter (Fig. 10).

use std::collections::HashMap;

use rand::Rng;

use vids_netsim::node::{AppCtx, Application};
use vids_netsim::packet::{Address, Packet, Payload};
use vids_netsim::stats::{Summary, TimeSeries};
use vids_netsim::time::SimTime;
use vids_rtp::jitter::JitterEstimator;
use vids_rtp::packet::RtpPacket;
use vids_sdp::{Codec, SessionDescription};
use vids_sip::headers::{CSeq, Header, NameAddr, Via};
use vids_sip::message::{Message, Request, Response};
use vids_sip::parse::parse_message;
use vids_sip::transaction::{Action, ClientTransaction, TransactionKey};
use vids_sip::{Method, SipUri, StatusCode};

use crate::call::{CallCtx, CallRole, CallState, MediaSession, PlannedCall};

/// Timer token kinds (packed into the high 32 bits of the token).
const K_PLACE: u64 = 1;
const K_TXPOLL: u64 = 2;
const K_ANSWER: u64 = 3;
const K_RESEND_OK: u64 = 4;
const K_RTP: u64 = 5;
const K_HANGUP: u64 = 6;
const K_STOP_FRAUD: u64 = 7;
const K_REINVITE: u64 = 8;

fn token(kind: u64, arg: usize) -> u64 {
    (kind << 32) | arg as u64
}

fn untoken(t: u64) -> (u64, usize) {
    (t >> 32, (t & 0xffff_ffff) as usize)
}

/// Static configuration of one UA.
#[derive(Debug, Clone)]
pub struct UaConfig {
    /// SIP user name (e.g. `ua3`).
    pub username: String,
    /// SIP domain (e.g. `a.example.com`).
    pub domain: String,
    /// The host address the UA runs on.
    pub addr: Address,
    /// The outbound proxy all requests are sent through.
    pub proxy: Address,
    /// Codec offered and streamed.
    pub codec: Codec,
    /// Ring time before the callee answers with 200.
    pub answer_delay: SimTime,
    /// Whether to REGISTER at simulation start.
    pub register_at_start: bool,
    /// Billing-fraud misbehavior (§3.1): after sending BYE, keep streaming
    /// RTP for this long. `None` = honest UA.
    pub fraud_media_after_bye: Option<SimTime>,
    /// Legitimate mid-call renegotiation: this long after establishment the
    /// caller re-INVITEs, moving its media to a fresh port (call hold /
    /// network hand-off). `None` = no re-INVITE.
    pub reinvite_after: Option<SimTime>,
    /// Digest authentication (RFC 3261 §22): when set, this UA challenges
    /// incoming BYE requests with 401 and answers challenges on its own
    /// BYEs using this shared password. `None` = the paper's default
    /// no-authentication regime.
    pub auth_password: Option<String>,
}

impl UaConfig {
    /// An honest UA with the paper's defaults (2 s ring, G.729, registers).
    pub fn new(
        username: impl Into<String>,
        domain: impl Into<String>,
        addr: Address,
        proxy: Address,
    ) -> Self {
        UaConfig {
            username: username.into(),
            domain: domain.into(),
            addr,
            proxy,
            codec: Codec::G729,
            answer_delay: SimTime::from_secs(2),
            register_at_start: true,
            fraud_media_after_bye: None,
            reinvite_after: None,
            auth_password: None,
        }
    }
}

/// Everything the evaluation reads back from a UA after a run.
#[derive(Debug, Clone, Default)]
pub struct UaStats {
    /// `(call start secs, setup delay secs)` per answered call — Fig. 9.
    pub setup_delays: TimeSeries,
    /// End-to-end delay of every received RTP packet — Fig. 10 upper.
    pub rtp_delay: Summary,
    /// Sampled `(arrival secs, delay secs)` series (every 10th packet).
    pub rtp_delay_series: TimeSeries,
    /// Final interarrival jitter per received stream — Fig. 10 lower.
    pub rtp_jitter: Summary,
    /// Calls this UA placed (INVITE sent).
    pub calls_placed: u64,
    /// Calls that reached Established.
    pub calls_established: u64,
    /// Calls completed with a normal BYE handshake we initiated.
    pub calls_completed: u64,
    /// Calls that failed (transaction timeout or failure response).
    pub calls_failed: u64,
    /// Pending INVITEs cancelled under us (CANCEL received while ringing).
    pub calls_cancelled: u64,
    /// BYE requests received.
    pub byes_received: u64,
    /// In-dialog re-INVITEs processed.
    pub reinvites_received: u64,
    /// In-dialog re-INVITEs we originated.
    pub reinvites_sent: u64,
    /// RTP packets sent / received.
    pub rtp_sent: u64,
    /// RTP packets received and accounted.
    pub rtp_received: u64,
    /// RTP datagrams that matched no active session or failed to parse.
    pub rtp_stray: u64,
    /// SIP datagrams that failed to parse.
    pub sip_malformed: u64,
    /// Responses that matched no transaction and no known call — the
    /// symptom a DRDoS reflection victim sees.
    pub unmatched_responses: u64,
    /// 401 challenges this UA issued for unauthenticated BYEs.
    pub auth_challenges: u64,
    /// BYEs accepted with valid digest credentials.
    pub authenticated_byes: u64,
    /// Challenged BYEs this UA retried with credentials.
    pub auth_retries: u64,
}

/// A simulated SIP phone. See the module docs.
pub struct UserAgent {
    cfg: UaConfig,
    plan: Vec<PlannedCall>,
    calls: Vec<CallCtx>,
    call_index: HashMap<String, usize>,
    client_txs: Vec<(TransactionKey, ClientTransaction, usize)>,
    jitter: HashMap<usize, JitterEstimator>,
    id_counter: u64,
    stats: UaStats,
    /// Nonces issued in our 401 challenges, awaited in Authorization.
    issued_nonces: std::collections::HashSet<String>,
    /// Slots whose RTP tick must be armed at the next handler exit (set by
    /// ACK handling, which has no timer API in scope at that point).
    pending_media_start: Vec<usize>,
}

impl UserAgent {
    /// Creates a UA that will place the planned calls.
    pub fn new(cfg: UaConfig, plan: Vec<PlannedCall>) -> Self {
        UserAgent {
            cfg,
            plan,
            calls: Vec::new(),
            call_index: HashMap::new(),
            client_txs: Vec::new(),
            jitter: HashMap::new(),
            id_counter: 0,
            stats: UaStats::default(),
            issued_nonces: std::collections::HashSet::new(),
            pending_media_start: Vec::new(),
        }
    }

    /// The collected measurements.
    pub fn stats(&self) -> &UaStats {
        &self.stats
    }

    /// The UA's configuration.
    pub fn config(&self) -> &UaConfig {
        &self.cfg
    }

    /// Dialog/media details of a call by Call-ID — the scenario harness
    /// uses this to hand "sniffed" identifiers to attackers between
    /// simulation phases.
    pub fn call_info(&self, call_id: &str) -> Option<&CallCtx> {
        self.call_index.get(call_id).map(|&slot| &self.calls[slot])
    }

    /// Call-IDs of calls currently in the given state.
    pub fn calls_in_state(&self, state: CallState) -> Vec<String> {
        self.calls
            .iter()
            .filter(|c| c.state == state)
            .map(|c| c.dialog.call_id.clone())
            .collect()
    }

    fn local_uri(&self) -> SipUri {
        SipUri::new(self.cfg.username.clone(), self.cfg.domain.clone())
    }

    fn contact_uri(&self) -> SipUri {
        SipUri::new(self.cfg.username.clone(), self.cfg.addr.ip_string())
            .with_port(self.cfg.addr.port)
    }

    fn fresh_id(&mut self, prefix: &str) -> String {
        self.id_counter += 1;
        format!("{}-{}-{}", prefix, self.cfg.username, self.id_counter)
    }

    fn own_via(&mut self) -> Via {
        let branch = self.fresh_id("z9hG4bK");
        Via::udp(self.cfg.addr.ip_string(), self.cfg.addr.port, branch)
    }

    fn send_sip(&self, ctx: &mut AppCtx<'_, '_>, text: String) {
        ctx.send_to(self.cfg.proxy, Payload::Sip(text));
    }

    /// Sends a UAS response back along the Via chain.
    fn send_response(&mut self, resp: &Response, ctx: &mut AppCtx<'_, '_>) {
        let target = resp.headers.top_via().and_then(|v| {
            Address::parse_ip(v.host()).map(|ip| Address {
                ip,
                port: v.port().unwrap_or(vids_sip::DEFAULT_SIP_PORT),
            })
        });
        match target {
            Some(addr) => ctx.send_to(addr, Payload::Sip(resp.to_string())),
            None => self.stats.sip_malformed += 1,
        }
    }

    // ---- registration -------------------------------------------------

    fn register(&mut self, ctx: &mut AppCtx<'_, '_>) {
        let mut req = Request::new(Method::Register, SipUri::host_only(self.cfg.domain.clone()));
        let via = self.own_via();
        req.headers.push(Header::Via(via));
        req.headers.push(Header::MaxForwards(70));
        req.headers.push(Header::From(
            NameAddr::new(self.local_uri()).with_tag(self.fresh_id("tag")),
        ));
        req.headers
            .push(Header::To(NameAddr::new(self.local_uri())));
        req.headers.push(Header::CallId(self.fresh_id("reg")));
        req.headers
            .push(Header::CSeq(CSeq::new(1, Method::Register)));
        req.headers
            .push(Header::Contact(NameAddr::new(self.contact_uri())));
        req.headers.push(Header::Expires(3600));
        req.headers.push(Header::ContentLength(0));
        self.send_sip(ctx, req.to_string());
    }

    // ---- caller side ---------------------------------------------------

    fn place_call(&mut self, idx: usize, ctx: &mut AppCtx<'_, '_>) {
        let planned = self.plan[idx].clone();
        let slot = self.calls.len();
        let media_port = 20_000 + (slot as u16 % 4_000) * 10;

        let call_id = self.fresh_id("call");
        let mut invite = Request::new(Method::Invite, planned.callee.clone());
        invite.headers.push(Header::Via(self.own_via()));
        invite.headers.push(Header::MaxForwards(70));
        invite.headers.push(Header::From(
            NameAddr::new(self.local_uri()).with_tag(self.fresh_id("tag")),
        ));
        invite
            .headers
            .push(Header::To(NameAddr::new(planned.callee.clone())));
        invite.headers.push(Header::CallId(call_id.clone()));
        invite
            .headers
            .push(Header::CSeq(CSeq::new(1, Method::Invite)));
        invite
            .headers
            .push(Header::Contact(NameAddr::new(self.contact_uri())));
        let offer = SessionDescription::audio_offer(
            &self.cfg.username,
            &self.cfg.addr.ip_string(),
            media_port,
            &[self.cfg.codec],
        );
        let invite = invite.with_body(vids_sdp::MIME_TYPE, offer.to_string());

        let mut call = CallCtx::caller(invite.clone(), ctx.now(), planned.duration, slot);
        // Remember our media port until the answer arrives.
        call.media = Some(MediaSession::new(
            Address::default(), // peer filled in from the SDP answer
            media_port,
            ctx.rng().gen(),
            self.cfg.codec,
        ));
        self.calls.push(call);
        self.call_index.insert(call_id, slot);
        self.stats.calls_placed += 1;

        let now_ms = ctx.now().as_millis();
        let (tx, actions) = ClientTransaction::start(invite.clone(), now_ms);
        if let Some(key) = TransactionKey::for_request(&invite) {
            self.client_txs.push((key, tx, slot));
        }
        self.apply_tx_actions(actions, slot, ctx);
        self.arm_tx_poll(ctx);
    }

    fn apply_tx_actions(&mut self, actions: Vec<Action>, slot: usize, ctx: &mut AppCtx<'_, '_>) {
        for action in actions {
            match action {
                Action::SendRequest(req) => self.send_sip(ctx, req.to_string()),
                Action::SendResponse(resp) => self.send_response(&resp, ctx),
                Action::DeliverResponse(resp) => self.on_ua_response(resp, slot, ctx),
                Action::DeliverRequest(_) => {}
                Action::Timeout => {
                    let call = &mut self.calls[slot];
                    if !matches!(call.state, CallState::Done) {
                        call.state = CallState::Done;
                        self.stats.calls_failed += 1;
                        self.stop_media(slot);
                    }
                }
                Action::Terminated => {}
            }
        }
    }

    fn arm_tx_poll(&mut self, ctx: &mut AppCtx<'_, '_>) {
        let now_ms = ctx.now().as_millis();
        if let Some(next) = self
            .client_txs
            .iter()
            .filter_map(|(_, tx, _)| tx.next_deadline())
            .min()
        {
            let delay_ms = next.saturating_sub(now_ms).max(1);
            ctx.set_timer(SimTime::from_millis(delay_ms), token(K_TXPOLL, 0));
        }
    }

    fn poll_transactions(&mut self, ctx: &mut AppCtx<'_, '_>) {
        let now_ms = ctx.now().as_millis();
        let mut pending: Vec<(usize, Vec<Action>)> = Vec::new();
        for (_, tx, slot) in &mut self.client_txs {
            let actions = tx.poll(now_ms);
            if !actions.is_empty() {
                pending.push((*slot, actions));
            }
        }
        self.client_txs.retain(|(_, tx, _)| !tx.is_terminated());
        for (slot, actions) in pending {
            self.apply_tx_actions(actions, slot, ctx);
        }
        self.arm_tx_poll(ctx);
    }

    /// The UA core's view of a response delivered by a client transaction.
    fn on_ua_response(&mut self, resp: Response, slot: usize, ctx: &mut AppCtx<'_, '_>) {
        let Some(method) = resp.cseq_method() else {
            return;
        };
        match method {
            Method::Invite => self.on_invite_response(resp, slot, ctx),
            Method::Bye => {
                if resp.status.is_success() {
                    let call = &mut self.calls[slot];
                    if call.state == CallState::Terminating {
                        call.state = CallState::Done;
                        self.stats.calls_completed += 1;
                    }
                } else if resp.status == StatusCode::UNAUTHORIZED {
                    self.retry_bye_with_auth(&resp, slot, ctx);
                }
            }
            _ => {}
        }
    }

    fn on_invite_response(&mut self, resp: Response, slot: usize, ctx: &mut AppCtx<'_, '_>) {
        let now = ctx.now();
        // Record the Fig. 9 sample on the first provisional response.
        if resp.status.is_provisional() {
            let call = &mut self.calls[slot];
            if !call.setup_recorded && call.role == CallRole::Caller {
                call.setup_recorded = true;
                let delay = now.saturating_sub(call.started_at);
                self.stats
                    .setup_delays
                    .push(call.started_at.as_secs_f64(), delay.as_secs_f64());
            }
            if self.calls[slot].state == CallState::Inviting {
                self.calls[slot].state = CallState::Ringing;
            }
            return;
        }
        if resp.status.is_success() {
            let already_established = matches!(
                self.calls[slot].state,
                CallState::Established | CallState::Terminating
            );
            // Learn dialog + media coordinates.
            let to_tag = resp
                .headers
                .to_header()
                .and_then(|t| t.tag())
                .unwrap_or("")
                .to_owned();
            let contact = resp.headers.contact().map(|c| c.uri().clone());
            let answer: Option<SessionDescription> = resp.body.parse().ok();
            {
                let call = &mut self.calls[slot];
                call.dialog.remote_tag = to_tag.clone();
                if let Some(c) = contact {
                    call.peer_contact = Some(c);
                }
                if let (Some(answer), Some(media)) = (answer, call.media.as_mut()) {
                    if let Some(audio) = answer.first_audio() {
                        if let Some(ip) = Address::parse_ip(answer.media_addr()) {
                            media.peer = Address {
                                ip,
                                port: audio.port,
                            };
                        }
                    }
                }
            }
            // ACK targets the peer's address-of-record so it follows the
            // proxy chain (the testbed emulates record-routing: the paper's
            // Fig. 8 logs call durations at the proxy, which therefore must
            // see in-dialog requests).
            let ack_uri = self.peer_aor(slot);
            let mut ack =
                Request::in_dialog(Method::Ack, &self.calls[slot].invite, 1, Some(&to_tag));
            ack.uri = ack_uri;
            // Replace the template Via with a fresh one of our own.
            ack.headers.pop_via();
            let via = self.own_via();
            ack.headers.push_front(Header::Via(via));
            self.send_sip(ctx, ack.to_string());

            if !already_established {
                self.calls[slot].state = CallState::Established;
                self.stats.calls_established += 1;
                if let Some(media) = self.calls[slot].media.as_mut() {
                    media.sending = true;
                }
                let frame = SimTime::from_millis(self.cfg.codec.frame_ms() as u64);
                ctx.set_timer(frame, token(K_RTP, slot));
                let duration = self.calls[slot].planned_duration;
                ctx.set_timer(duration, token(K_HANGUP, slot));
                if let Some(after) = self.cfg.reinvite_after {
                    if after < duration {
                        ctx.set_timer(after, token(K_REINVITE, slot));
                    }
                }
            }
            return;
        }
        // Failure final response.
        let call = &mut self.calls[slot];
        if !matches!(call.state, CallState::Done) {
            call.state = CallState::Done;
            if resp.status == StatusCode::REQUEST_TERMINATED {
                self.stats.calls_cancelled += 1;
            } else {
                self.stats.calls_failed += 1;
            }
            self.stop_media(slot);
        }
    }

    fn hang_up(&mut self, slot: usize, ctx: &mut AppCtx<'_, '_>) {
        if self.calls[slot].state != CallState::Established {
            return;
        }
        self.calls[slot].state = CallState::Terminating;
        let cseq = self.calls[slot].next_cseq();
        let to_tag = self.calls[slot].dialog.remote_tag.clone();
        let uri = self.peer_aor(slot);
        let mut bye = Request::in_dialog(
            Method::Bye,
            &self.calls[slot].invite,
            cseq,
            if to_tag.is_empty() {
                None
            } else {
                Some(&to_tag)
            },
        );
        bye.uri = uri;
        bye.headers.pop_via();
        let via = self.own_via();
        bye.headers.push_front(Header::Via(via));

        // "The genuine UA will stop sending RTP packets as soon as the BYE
        // request is passed to the client transaction" (§6) — unless this UA
        // is the billing-fraud attacker.
        match self.cfg.fraud_media_after_bye {
            None => self.stop_media(slot),
            Some(extra) => {
                ctx.set_timer(extra, token(K_STOP_FRAUD, slot));
            }
        }

        let now_ms = ctx.now().as_millis();
        let (tx, actions) = ClientTransaction::start(bye.clone(), now_ms);
        if let Some(key) = TransactionKey::for_request(&bye) {
            self.client_txs.push((key, tx, slot));
        }
        self.apply_tx_actions(actions, slot, ctx);
        self.arm_tx_poll(ctx);
    }

    /// Sends a legitimate mid-call re-INVITE, moving our media to a new
    /// port (call hold / hand-off renegotiation).
    fn send_reinvite(&mut self, slot: usize, ctx: &mut AppCtx<'_, '_>) {
        if self.calls[slot].state != CallState::Established
            || self.calls[slot].role != CallRole::Caller
        {
            return;
        }
        // Move our media endpoint.
        let new_port = {
            let Some(media) = self.calls[slot].media.as_mut() else {
                return;
            };
            media.local_port = media.local_port.wrapping_add(2).max(1_024);
            media.local_port
        };
        let cseq = self.calls[slot].next_cseq();
        let to_tag = self.calls[slot].dialog.remote_tag.clone();
        let uri = self.peer_aor(slot);
        let mut reinvite = Request::in_dialog(
            Method::Invite,
            &self.calls[slot].invite,
            cseq,
            if to_tag.is_empty() {
                None
            } else {
                Some(&to_tag)
            },
        );
        reinvite.uri = uri;
        reinvite.headers.pop_via();
        let via = self.own_via();
        reinvite.headers.push_front(Header::Via(via));
        let offer = SessionDescription::audio_offer(
            &self.cfg.username,
            &self.cfg.addr.ip_string(),
            new_port,
            &[self.cfg.codec],
        );
        let reinvite = reinvite.with_body(vids_sdp::MIME_TYPE, offer.to_string());
        self.stats.reinvites_sent += 1;

        let now_ms = ctx.now().as_millis();
        let (tx, actions) = ClientTransaction::start(reinvite.clone(), now_ms);
        if let Some(key) = TransactionKey::for_request(&reinvite) {
            self.client_txs.push((key, tx, slot));
        }
        self.apply_tx_actions(actions, slot, ctx);
        self.arm_tx_poll(ctx);
    }

    /// Answers a 401 challenge on our BYE with digest credentials and a
    /// fresh CSeq (once per call; a second 401 abandons the teardown to the
    /// linger timers).
    fn retry_bye_with_auth(
        &mut self,
        challenge_resp: &Response,
        slot: usize,
        ctx: &mut AppCtx<'_, '_>,
    ) {
        let Some(password) = self.cfg.auth_password.clone() else {
            return;
        };
        if self.calls[slot].state != CallState::Terminating || self.calls[slot].bye_auth_retried {
            return;
        }
        let Some(challenge) = challenge_resp
            .headers
            .other("WWW-Authenticate")
            .and_then(vids_sip::auth::DigestChallenge::parse)
        else {
            return;
        };
        self.calls[slot].bye_auth_retried = true;
        self.stats.auth_retries += 1;

        let cseq = self.calls[slot].next_cseq();
        let to_tag = self.calls[slot].dialog.remote_tag.clone();
        let uri = self.peer_aor(slot);
        let creds = vids_sip::auth::DigestCredentials::answer(
            &challenge,
            &self.cfg.username,
            &password,
            Method::Bye,
            &uri.to_string(),
        );
        let mut bye = Request::in_dialog(
            Method::Bye,
            &self.calls[slot].invite,
            cseq,
            if to_tag.is_empty() {
                None
            } else {
                Some(&to_tag)
            },
        );
        bye.uri = uri;
        bye.headers.pop_via();
        let via = self.own_via();
        bye.headers.push_front(Header::Via(via));
        bye.headers.push(Header::Other {
            name: "Authorization".to_owned(),
            value: creds.to_string(),
        });

        let now_ms = ctx.now().as_millis();
        let (tx, actions) = ClientTransaction::start(bye.clone(), now_ms);
        if let Some(key) = TransactionKey::for_request(&bye) {
            self.client_txs.push((key, tx, slot));
        }
        self.apply_tx_actions(actions, slot, ctx);
        self.arm_tx_poll(ctx);
    }

    /// The peer's address-of-record: the in-dialog request target (the
    /// testbed emulates record-routing so proxies stay on the path).
    fn peer_aor(&self, slot: usize) -> SipUri {
        let call = &self.calls[slot];
        match call.role {
            CallRole::Caller => call.invite.uri.clone(),
            CallRole::Callee => call
                .invite
                .headers
                .from_header()
                .map(|f| f.uri().clone())
                .unwrap_or_else(|| call.invite.uri.clone()),
        }
    }

    fn stop_media(&mut self, slot: usize) {
        if let Some(media) = self.calls[slot].media.as_mut() {
            media.sending = false;
        }
        if let Some(j) = self.jitter.remove(&slot) {
            if j.samples() > 1 {
                self.stats.rtp_jitter.add(j.jitter_secs());
            }
        }
    }

    // ---- callee side -----------------------------------------------------

    fn on_request(&mut self, req: Request, ctx: &mut AppCtx<'_, '_>) {
        match req.method {
            Method::Invite => self.on_invite_request(req, ctx),
            Method::Ack => self.on_ack(req),
            Method::Bye => self.on_bye(req, ctx),
            Method::Cancel => self.on_cancel(req, ctx),
            Method::Options => {
                let resp = req.response(StatusCode::OK);
                self.send_response(&resp, ctx);
            }
            _ => {
                let resp = req.response(StatusCode::OK);
                self.send_response(&resp, ctx);
            }
        }
    }

    fn on_invite_request(&mut self, req: Request, ctx: &mut AppCtx<'_, '_>) {
        let call_id = req.call_id().to_owned();
        if let Some(&slot) = self.call_index.get(&call_id) {
            match self.calls[slot].state {
                CallState::Ringing if self.calls[slot].role == CallRole::Callee => {
                    // Retransmitted INVITE: re-send the 180.
                    let tag = self.calls[slot].dialog.local_tag.clone();
                    let ringing = req.response(StatusCode::RINGING).with_to_tag(&tag);
                    self.send_response(&ringing, ctx);
                }
                CallState::Established => {
                    // Re-INVITE: update the media peer and answer 200.
                    self.stats.reinvites_received += 1;
                    if let Ok(offer) = req.body.parse::<SessionDescription>() {
                        if let (Some(audio), Some(media)) =
                            (offer.first_audio(), self.calls[slot].media.as_mut())
                        {
                            if let Some(ip) = Address::parse_ip(offer.media_addr()) {
                                media.peer = Address {
                                    ip,
                                    port: audio.port,
                                };
                            }
                        }
                    }
                    let tag = self.calls[slot].dialog.local_tag.clone();
                    let port = self.calls[slot]
                        .media
                        .as_ref()
                        .map(|m| m.local_port)
                        .unwrap_or(0);
                    let answer = SessionDescription::audio_offer(
                        &self.cfg.username,
                        &self.cfg.addr.ip_string(),
                        port,
                        &[self.cfg.codec],
                    );
                    let ok = req
                        .response(StatusCode::OK)
                        .with_to_tag(&tag)
                        .with_body(vids_sdp::MIME_TYPE, answer.to_string());
                    self.send_response(&ok, ctx);
                }
                _ => {
                    let resp = req.response(StatusCode::CALL_DOES_NOT_EXIST);
                    self.send_response(&resp, ctx);
                }
            }
            return;
        }

        // Fresh INVITE: ring, then answer after the configured delay.
        let slot = self.calls.len();
        let mut call = CallCtx::callee(req.clone(), ctx.now(), slot);
        call.dialog.local_tag = self.fresh_id("totag");
        if let Ok(offer) = req.body.parse::<SessionDescription>() {
            if let Some(audio) = offer.first_audio() {
                if let Some(ip) = Address::parse_ip(offer.media_addr()) {
                    let local_port = 30_000 + (slot as u16 % 3_000) * 10;
                    call.media = Some(MediaSession::new(
                        Address {
                            ip,
                            port: audio.port,
                        },
                        local_port,
                        ctx.rng().gen(),
                        self.cfg.codec,
                    ));
                }
            }
        }
        call.peer_contact = req.headers.contact().map(|c| c.uri().clone());
        let tag = call.dialog.local_tag.clone();
        self.calls.push(call);
        self.call_index.insert(call_id, slot);

        let ringing = req.response(StatusCode::RINGING).with_to_tag(&tag);
        self.send_response(&ringing, ctx);
        ctx.set_timer(self.cfg.answer_delay, token(K_ANSWER, slot));
    }

    fn answer_call(&mut self, slot: usize, ctx: &mut AppCtx<'_, '_>) {
        if self.calls[slot].state != CallState::Ringing || self.calls[slot].role != CallRole::Callee
        {
            return;
        }
        let tag = self.calls[slot].dialog.local_tag.clone();
        let port = self.calls[slot]
            .media
            .as_ref()
            .map(|m| m.local_port)
            .unwrap_or(0);
        let answer = SessionDescription::audio_offer(
            &self.cfg.username,
            &self.cfg.addr.ip_string(),
            port,
            &[self.cfg.codec],
        );
        let mut ok = self.calls[slot]
            .invite
            .response(StatusCode::OK)
            .with_to_tag(&tag)
            .with_body(vids_sdp::MIME_TYPE, answer.to_string());
        ok.headers
            .push(Header::Contact(NameAddr::new(self.contact_uri())));
        self.send_response(&ok, ctx);
        self.calls[slot].pending_ok = Some((ok, 0));
        ctx.set_timer(SimTime::from_millis(500), token(K_RESEND_OK, slot));
    }

    fn resend_ok(&mut self, slot: usize, ctx: &mut AppCtx<'_, '_>) {
        let Some((ok, count)) = self.calls[slot].pending_ok.clone() else {
            return;
        };
        if count >= 7 {
            // ACK never came (64*T1 equivalent): give up.
            self.calls[slot].pending_ok = None;
            self.calls[slot].state = CallState::Done;
            self.stats.calls_failed += 1;
            self.stop_media(slot);
            return;
        }
        self.send_response(&ok, ctx);
        self.calls[slot].pending_ok = Some((ok, count + 1));
        ctx.set_timer(SimTime::from_millis(500), token(K_RESEND_OK, slot));
    }

    fn on_ack(&mut self, req: Request) {
        let Some(&slot) = self.call_index.get(req.call_id()) else {
            return;
        };
        // The evaluation's RTP clock starts at the ACK (media may flow).
        if self.calls[slot].pending_ok.take().is_some() {
            self.calls[slot].state = CallState::Established;
            self.stats.calls_established += 1;
            if let Some(media) = self.calls[slot].media.as_mut() {
                media.sending = true;
            }
            // RTP tick is armed lazily by on_timer: ACK handling has no ctx
            // timer access here, so we piggyback on the pending flag below.
            self.pending_media_start.push(slot);
        }
    }

    fn on_bye(&mut self, req: Request, ctx: &mut AppCtx<'_, '_>) {
        self.stats.byes_received += 1;
        if let Some(password) = self.cfg.auth_password.clone() {
            let authorized = req
                .headers
                .other("Authorization")
                .and_then(vids_sip::auth::DigestCredentials::parse)
                .map(|c| c.verify(&password, Method::Bye) && self.issued_nonces.contains(&c.nonce))
                .unwrap_or(false);
            if !authorized {
                let nonce = self.fresh_id("nonce");
                self.issued_nonces.insert(nonce.clone());
                let challenge =
                    vids_sip::auth::DigestChallenge::new(self.cfg.domain.clone(), nonce);
                let mut resp = req.response(StatusCode::UNAUTHORIZED);
                resp.headers.push(Header::Other {
                    name: "WWW-Authenticate".to_owned(),
                    value: challenge.to_string(),
                });
                self.send_response(&resp, ctx);
                self.stats.auth_challenges += 1;
                return;
            }
            self.stats.authenticated_byes += 1;
        }
        let resp = req.response(StatusCode::OK);
        self.send_response(&resp, ctx);
        if let Some(&slot) = self.call_index.get(req.call_id()) {
            if !matches!(self.calls[slot].state, CallState::Done) {
                self.calls[slot].state = CallState::Done;
                self.stop_media(slot);
            }
        }
    }

    fn on_cancel(&mut self, req: Request, ctx: &mut AppCtx<'_, '_>) {
        let slot = self.call_index.get(req.call_id()).copied();
        match slot {
            Some(slot)
                if self.calls[slot].state == CallState::Ringing
                    && self.calls[slot].role == CallRole::Callee =>
            {
                // 200 for the CANCEL itself…
                let ok = req.response(StatusCode::OK);
                self.send_response(&ok, ctx);
                // …and 487 for the pending INVITE.
                let tag = self.calls[slot].dialog.local_tag.clone();
                let terminated = self.calls[slot]
                    .invite
                    .response(StatusCode::REQUEST_TERMINATED)
                    .with_to_tag(&tag);
                self.send_response(&terminated, ctx);
                self.calls[slot].state = CallState::Done;
                self.stats.calls_cancelled += 1;
            }
            _ => {
                let resp = req.response(StatusCode::CALL_DOES_NOT_EXIST);
                self.send_response(&resp, ctx);
            }
        }
    }

    // ---- media ---------------------------------------------------------

    fn rtp_tick(&mut self, slot: usize, ctx: &mut AppCtx<'_, '_>) {
        let sending = self.calls[slot]
            .media
            .as_ref()
            .is_some_and(|m| m.sending && m.peer.ip != 0);
        if !sending {
            return;
        }
        let codec = self.cfg.codec;
        let (bytes, peer, local_port) = {
            let media = self.calls[slot].media.as_mut().unwrap();
            let (seq, ts) = media.next_packet();
            let pkt = RtpPacket::new(codec.payload_type().0, seq, ts, media.ssrc)
                .with_payload(vec![0u8; codec.payload_bytes_per_packet()]);
            (pkt.to_bytes(), media.peer, media.local_port)
        };
        ctx.send_from_port(local_port, peer, Payload::Rtp(bytes));
        self.stats.rtp_sent += 1;
        ctx.set_timer(
            SimTime::from_millis(codec.frame_ms() as u64),
            token(K_RTP, slot),
        );
    }

    fn on_rtp(&mut self, packet: &Packet, ctx: &mut AppCtx<'_, '_>) {
        let Payload::Rtp(bytes) = &packet.payload else {
            return;
        };
        let Ok(rtp) = RtpPacket::parse(bytes) else {
            self.stats.rtp_stray += 1;
            return;
        };
        let slot = self.calls.iter().position(|c| {
            c.media
                .as_ref()
                .is_some_and(|m| m.local_port == packet.dst.port)
        });
        let Some(slot) = slot else {
            self.stats.rtp_stray += 1;
            return;
        };
        self.stats.rtp_received += 1;
        let now = ctx.now();
        let delay = now.saturating_sub(packet.sent_at).as_secs_f64();
        self.stats.rtp_delay.add(delay);
        if self.stats.rtp_received.is_multiple_of(10) {
            self.stats.rtp_delay_series.push(now.as_secs_f64(), delay);
        }
        let clock = self.cfg.codec.clock_rate();
        self.jitter
            .entry(slot)
            .or_insert_with(|| JitterEstimator::new(clock))
            .on_packet(now.as_secs_f64(), rtp.timestamp);
    }

    fn start_pending_media(&mut self, ctx: &mut AppCtx<'_, '_>) {
        let frame = SimTime::from_millis(self.cfg.codec.frame_ms() as u64);
        for slot in std::mem::take(&mut self.pending_media_start) {
            ctx.set_timer(frame, token(K_RTP, slot));
        }
    }
}

impl Application for UserAgent {
    fn on_start(&mut self, ctx: &mut AppCtx<'_, '_>) {
        if self.cfg.register_at_start {
            self.register(ctx);
        }
        let now = ctx.now();
        for i in 0..self.plan.len() {
            let delay = self.plan[i].at.saturating_sub(now);
            ctx.set_timer(delay, token(K_PLACE, i));
        }
    }

    fn on_datagram(&mut self, packet: &Packet, ctx: &mut AppCtx<'_, '_>) {
        match &packet.payload {
            Payload::Sip(text) => match parse_message(text) {
                Ok(Message::Request(req)) => self.on_request(req, ctx),
                Ok(Message::Response(resp)) => {
                    // Try the transaction layer first.
                    let key = TransactionKey::for_response(&resp);
                    let now_ms = ctx.now().as_millis();
                    let mut handled = false;
                    if let Some(key) = key {
                        let mut pending: Option<(usize, Vec<Action>)> = None;
                        for (k, tx, slot) in &mut self.client_txs {
                            if *k == key {
                                pending = Some((*slot, tx.on_response(resp.clone(), now_ms)));
                                handled = true;
                                break;
                            }
                        }
                        self.client_txs.retain(|(_, tx, _)| !tx.is_terminated());
                        if let Some((slot, actions)) = pending {
                            self.apply_tx_actions(actions, slot, ctx);
                            self.arm_tx_poll(ctx);
                        }
                    }
                    if !handled {
                        // Retransmitted 2xx after the INVITE transaction
                        // terminated: re-ACK so the far end stops resending.
                        let mut accounted = false;
                        if resp.cseq_method() == Some(Method::Invite) && resp.status.is_success() {
                            if let Some(&slot) = self.call_index.get(resp.call_id()) {
                                if matches!(
                                    self.calls[slot].state,
                                    CallState::Established | CallState::Terminating
                                ) {
                                    self.on_invite_response(resp, slot, ctx);
                                    accounted = true;
                                }
                            }
                        } else if resp.cseq_method() == Some(Method::Register) {
                            accounted = true; // 200 to our REGISTER
                        }
                        if !accounted {
                            self.stats.unmatched_responses += 1;
                        }
                    }
                }
                Err(_) => self.stats.sip_malformed += 1,
            },
            Payload::Rtp(_) => self.on_rtp(packet, ctx),
            Payload::Raw(_) => {}
        }
        self.start_pending_media(ctx);
    }

    fn on_timer(&mut self, t: u64, ctx: &mut AppCtx<'_, '_>) {
        let (kind, arg) = untoken(t);
        match kind {
            K_PLACE => self.place_call(arg, ctx),
            K_TXPOLL => self.poll_transactions(ctx),
            K_ANSWER => self.answer_call(arg, ctx),
            K_RESEND_OK => self.resend_ok(arg, ctx),
            K_RTP => self.rtp_tick(arg, ctx),
            K_HANGUP => self.hang_up(arg, ctx),
            K_STOP_FRAUD => self.stop_media(arg),
            K_REINVITE => self.send_reinvite(arg, ctx),
            _ => {}
        }
        self.start_pending_media(ctx);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::proxy::Proxy;
    use crate::{site_domain, ua_uri};
    use vids_netsim::node::{Host, PassiveTap};
    use vids_netsim::topology::{proxy_addr, Enterprise, SITE_A, SITE_B};

    /// Builds the full enterprise with one UA per site; UA A0 calls B0 at
    /// `call_at` for `duration`.
    fn one_call_world(call_at: SimTime, duration: SimTime) -> Enterprise {
        let plan_a = vec![PlannedCall {
            at: call_at,
            callee: ua_uri(0, site_domain(SITE_B)),
            duration,
        }];
        Enterprise::build(
            7,
            1,
            1,
            Box::new(PassiveTap),
            move |i, addr| {
                let cfg = UaConfig::new(
                    format!("ua{i}"),
                    site_domain(SITE_A),
                    addr,
                    proxy_addr(SITE_A),
                );
                Box::new(UserAgent::new(cfg, plan_a.clone()))
            },
            |i, addr| {
                let cfg = UaConfig::new(
                    format!("ua{i}"),
                    site_domain(SITE_B),
                    addr,
                    proxy_addr(SITE_B),
                );
                Box::new(UserAgent::new(cfg, Vec::new()))
            },
            |addr| {
                let mut p = Proxy::new(addr, site_domain(SITE_A));
                p.add_remote_domain(site_domain(SITE_B), proxy_addr(SITE_B));
                Box::new(p)
            },
            |addr| {
                let mut p = Proxy::new(addr, site_domain(SITE_B));
                p.add_remote_domain(site_domain(SITE_A), proxy_addr(SITE_A));
                Box::new(p)
            },
        )
    }

    #[test]
    fn full_call_lifecycle_across_the_internet() {
        let mut ent = one_call_world(SimTime::from_secs(1), SimTime::from_secs(10));
        ent.sim.run_until(SimTime::from_secs(20));

        let a0 = ent.sim.node_as::<Host>(ent.ua_a[0]).app_as::<UserAgent>();
        let b0 = ent.sim.node_as::<Host>(ent.ua_b[0]).app_as::<UserAgent>();
        let a = a0.stats();
        let b = b0.stats();

        assert_eq!(a.calls_placed, 1);
        assert_eq!(a.calls_established, 1);
        assert_eq!(a.calls_completed, 1, "BYE handshake finished");
        assert_eq!(a.calls_failed, 0);
        assert_eq!(b.calls_established, 1);
        assert_eq!(b.byes_received, 1);

        // Fig. 9 sample: one setup-delay point, >= 100 ms (round trip over
        // the 50 ms cloud) and well under a second.
        assert_eq!(a.setup_delays.len(), 1);
        let (_, setup) = a.setup_delays.iter().next().unwrap();
        assert!((0.1..0.5).contains(&setup), "setup delay {setup}");

        // ~10 s of G.729 at 100 packets/s in both directions, minus the
        // 2 s ring (media flows between ACK and BYE, ~8 s).
        assert!(a.rtp_sent > 500, "caller sent {}", a.rtp_sent);
        assert!(b.rtp_sent > 500, "callee sent {}", b.rtp_sent);
        assert!(a.rtp_received > 400, "caller received {}", a.rtp_received);
        assert!(b.rtp_received > 400, "callee received {}", b.rtp_received);
        assert_eq!(a.rtp_stray, 0);
        assert_eq!(a.sip_malformed, 0);

        // Fig. 10: RTP one-way delay just over the 50 ms propagation.
        assert!(
            (0.050..0.080).contains(&a.rtp_delay.mean()),
            "rtp delay {}",
            a.rtp_delay.mean()
        );

        // Proxy B observed the arrival and the duration (Fig. 8).
        let pb = ent.sim.node_as::<Host>(ent.proxy_b).app_as::<Proxy>();
        assert_eq!(pb.arrivals().len(), 1);
        assert_eq!(pb.durations().len(), 1);
    }

    #[test]
    fn call_info_exposes_dialog_and_media_for_scenarios() {
        let mut ent = one_call_world(SimTime::from_secs(1), SimTime::from_secs(30));
        // Pause mid-call.
        ent.sim.run_until(SimTime::from_secs(8));
        let a0 = ent.sim.node_as::<Host>(ent.ua_a[0]).app_as::<UserAgent>();
        let established = a0.calls_in_state(CallState::Established);
        assert_eq!(established.len(), 1);
        let info = a0.call_info(&established[0]).unwrap();
        assert!(!info.dialog.remote_tag.is_empty(), "dialog confirmed");
        let media = info.media.as_ref().unwrap();
        assert_ne!(media.peer.ip, 0, "peer media address learned from SDP");
        assert!(media.sending);
    }

    #[test]
    fn fraud_ua_keeps_streaming_after_bye() {
        let mut ent = {
            let plan_a = vec![PlannedCall {
                at: SimTime::from_secs(1),
                callee: ua_uri(0, site_domain(SITE_B)),
                duration: SimTime::from_secs(5),
            }];
            Enterprise::build(
                7,
                1,
                1,
                Box::new(PassiveTap),
                move |i, addr| {
                    let mut cfg = UaConfig::new(
                        format!("ua{i}"),
                        site_domain(SITE_A),
                        addr,
                        proxy_addr(SITE_A),
                    );
                    cfg.fraud_media_after_bye = Some(SimTime::from_secs(4));
                    Box::new(UserAgent::new(cfg, plan_a.clone()))
                },
                |i, addr| {
                    let cfg = UaConfig::new(
                        format!("ua{i}"),
                        site_domain(SITE_B),
                        addr,
                        proxy_addr(SITE_B),
                    );
                    Box::new(UserAgent::new(cfg, Vec::new()))
                },
                |addr| {
                    let mut p = Proxy::new(addr, site_domain(SITE_A));
                    p.add_remote_domain(site_domain(SITE_B), proxy_addr(SITE_B));
                    Box::new(p)
                },
                |addr| {
                    let mut p = Proxy::new(addr, site_domain(SITE_B));
                    p.add_remote_domain(site_domain(SITE_A), proxy_addr(SITE_A));
                    Box::new(p)
                },
            )
        };
        ent.sim.run_until(SimTime::from_secs(20));
        let a = ent
            .sim
            .node_as::<Host>(ent.ua_a[0])
            .app_as::<UserAgent>()
            .stats()
            .clone();
        let b = ent
            .sim
            .node_as::<Host>(ent.ua_b[0])
            .app_as::<UserAgent>()
            .stats()
            .clone();
        // Call established at ~3 s, BYE at ~8 s, fraud media until ~12 s:
        // the callee keeps receiving ~4 s of RTP after it answered the BYE.
        assert_eq!(b.byes_received, 1);
        let honest_sent = b.rtp_sent; // callee stops at BYE
        assert!(
            a.rtp_sent > honest_sent + 300,
            "fraudster kept streaming: {} vs {}",
            a.rtp_sent,
            honest_sent
        );
    }

    #[test]
    fn token_packing_round_trips() {
        let t = token(K_RTP, 12345);
        assert_eq!(untoken(t), (K_RTP, 12345));
        let t = token(K_HANGUP, 0);
        assert_eq!(untoken(t), (K_HANGUP, 0));
    }
}
