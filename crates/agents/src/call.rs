//! Per-call state kept by a [`crate::ua::UserAgent`].

use vids_netsim::packet::Address;
use vids_netsim::time::SimTime;
use vids_sdp::Codec;
use vids_sip::dialog::DialogId;
use vids_sip::message::Request;
use vids_sip::SipUri;

/// Which side of the call this UA is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CallRole {
    /// We sent the INVITE.
    Caller,
    /// We received the INVITE.
    Callee,
}

/// Coarse call progress, as seen by the UA core.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CallState {
    /// Caller: INVITE in flight, nothing heard yet.
    Inviting,
    /// A provisional response has been seen / sent.
    Ringing,
    /// 200/ACK exchanged; media may flow.
    Established,
    /// BYE sent, awaiting its 200.
    Terminating,
    /// Call over (normally or not); kept briefly for late packets.
    Done,
}

/// One call scheduled by the workload generator.
#[derive(Debug, Clone, PartialEq)]
pub struct PlannedCall {
    /// When to send the INVITE.
    pub at: SimTime,
    /// Whom to call.
    pub callee: SipUri,
    /// Conversation length once established.
    pub duration: SimTime,
}

/// An active RTP session bound to the SDP-negotiated addresses.
#[derive(Debug, Clone, PartialEq)]
pub struct MediaSession {
    /// Where to send RTP (peer ip from SDP, peer's media port).
    pub peer: Address,
    /// Our receiving port.
    pub local_port: u16,
    /// Our stream's synchronization source id.
    pub ssrc: u32,
    /// Next sequence number to send.
    pub seq: u16,
    /// Next RTP timestamp to send.
    pub timestamp: u32,
    /// Negotiated codec.
    pub codec: Codec,
    /// Whether we are currently sending.
    pub sending: bool,
}

impl MediaSession {
    /// Creates a session ready to send.
    pub fn new(peer: Address, local_port: u16, ssrc: u32, codec: Codec) -> Self {
        MediaSession {
            peer,
            local_port,
            ssrc,
            seq: 1,
            timestamp: 0,
            codec,
            sending: false,
        }
    }

    /// Produces the next outgoing RTP packet's header fields, advancing
    /// sequence number and timestamp.
    pub fn next_packet(&mut self) -> (u16, u32) {
        let out = (self.seq, self.timestamp);
        self.seq = self.seq.wrapping_add(1);
        self.timestamp = self
            .timestamp
            .wrapping_add(self.codec.timestamp_increment());
        out
    }
}

/// Everything a UA remembers about one call.
#[derive(Debug, Clone)]
pub struct CallCtx {
    /// Caller or callee.
    pub role: CallRole,
    /// Current progress.
    pub state: CallState,
    /// Dialog identification (from our point of view).
    pub dialog: DialogId,
    /// The INVITE that formed (or will form) this dialog; template for
    /// in-dialog requests and for matching responses.
    pub invite: Request,
    /// Where in-dialog requests go (peer contact, IP-literal URI).
    pub peer_contact: Option<SipUri>,
    /// The media session, once negotiated.
    pub media: Option<MediaSession>,
    /// When we sent/received the INVITE.
    pub started_at: SimTime,
    /// Caller: whether the Fig. 9 setup-delay sample was already recorded.
    pub setup_recorded: bool,
    /// Caller: planned conversation duration.
    pub planned_duration: SimTime,
    /// Next CSeq for in-dialog requests we originate.
    pub local_cseq: u32,
    /// Callee: the 200 OK we retransmit until the ACK arrives.
    pub pending_ok: Option<(vids_sip::message::Response, u32)>,
    /// Slot index inside the UA (stable small id for timer tokens).
    pub slot: usize,
    /// Whether a 401-challenged BYE was already retried with credentials.
    pub bye_auth_retried: bool,
}

impl CallCtx {
    /// Creates call context for a caller about to send `invite`.
    pub fn caller(invite: Request, now: SimTime, duration: SimTime, slot: usize) -> Self {
        CallCtx {
            role: CallRole::Caller,
            state: CallState::Inviting,
            dialog: DialogId::from_message(&invite.clone().into()),
            invite,
            peer_contact: None,
            media: None,
            started_at: now,
            setup_recorded: false,
            planned_duration: duration,
            local_cseq: 1,
            pending_ok: None,
            slot,
            bye_auth_retried: false,
        }
    }

    /// Creates call context for a callee that received `invite`.
    pub fn callee(invite: Request, now: SimTime, slot: usize) -> Self {
        CallCtx {
            role: CallRole::Callee,
            state: CallState::Ringing,
            dialog: DialogId::from_message(&invite.clone().into()).reversed(),
            invite,
            peer_contact: None,
            media: None,
            started_at: now,
            setup_recorded: false,
            planned_duration: SimTime::ZERO,
            local_cseq: 1,
            pending_ok: None,
            slot,
            bye_auth_retried: false,
        }
    }

    /// Allocates the next CSeq for an in-dialog request.
    pub fn next_cseq(&mut self) -> u32 {
        self.local_cseq += 1;
        self.local_cseq
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vids_sip::message::Request;

    fn invite() -> Request {
        Request::invite(
            &SipUri::new("ua1", "a.example.com"),
            &SipUri::new("ua2", "b.example.com"),
            "call-1",
        )
    }

    #[test]
    fn media_session_advances_seq_and_timestamp() {
        let mut m = MediaSession::new(Address::new(10, 2, 0, 10, 30000), 20000, 7, Codec::G729);
        assert_eq!(m.next_packet(), (1, 0));
        assert_eq!(m.next_packet(), (2, 80));
        assert_eq!(m.next_packet(), (3, 160));
    }

    #[test]
    fn media_session_wraps_sequence() {
        let mut m = MediaSession::new(Address::new(10, 2, 0, 10, 30000), 20000, 7, Codec::G729);
        m.seq = u16::MAX;
        let (s1, _) = m.next_packet();
        let (s2, _) = m.next_packet();
        assert_eq!(s1, u16::MAX);
        assert_eq!(s2, 0);
    }

    #[test]
    fn caller_and_callee_dialogs_are_mirrored() {
        let inv = invite();
        let caller = CallCtx::caller(inv.clone(), SimTime::ZERO, SimTime::from_secs(60), 0);
        let callee = CallCtx::callee(inv, SimTime::ZERO, 0);
        assert_eq!(caller.role, CallRole::Caller);
        assert_eq!(callee.role, CallRole::Callee);
        assert!(caller.dialog.matches(&callee.dialog));
        assert_eq!(caller.state, CallState::Inviting);
        assert_eq!(callee.state, CallState::Ringing);
    }

    #[test]
    fn cseq_allocation_increments() {
        let mut c = CallCtx::caller(invite(), SimTime::ZERO, SimTime::ZERO, 0);
        assert_eq!(c.next_cseq(), 2);
        assert_eq!(c.next_cseq(), 3);
    }
}
