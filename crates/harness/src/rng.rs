//! Seeded xorshift64 randomness for the fuzzers.
//!
//! Deliberately not the vendored `rand`: the harness must be replayable
//! from a single `u64` printed in a failure message, with no dependence on
//! another crate's stream layout.

/// A xorshift64 generator. Deterministic, `Copy`, replayable from its seed.
#[derive(Debug, Clone, Copy)]
pub struct XorShift64 {
    state: u64,
}

impl XorShift64 {
    /// Creates a generator. A zero seed is mapped to a fixed non-zero one
    /// (xorshift has a zero fixpoint).
    pub fn new(seed: u64) -> Self {
        XorShift64 {
            state: if seed == 0 {
                0x9E37_79B9_7F4A_7C15
            } else {
                seed
            },
        }
    }

    /// The next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        let mut x = self.state;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.state = x;
        x
    }

    /// Uniform-ish value in `0..n`. `n` must be non-zero.
    pub fn below(&mut self, n: usize) -> usize {
        (self.next_u64() % n as u64) as usize
    }

    /// True once in `one_in` draws on average.
    pub fn chance(&mut self, one_in: usize) -> bool {
        self.below(one_in) == 0
    }

    /// A random element of a non-empty slice.
    pub fn pick<'a, T>(&mut self, items: &'a [T]) -> &'a T {
        &items[self.below(items.len())]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn replayable_and_nondegenerate() {
        let mut a = XorShift64::new(42);
        let mut b = XorShift64::new(42);
        let run: Vec<u64> = (0..16).map(|_| a.next_u64()).collect();
        assert_eq!(run, (0..16).map(|_| b.next_u64()).collect::<Vec<_>>());
        assert!(run.windows(2).any(|w| w[0] != w[1]));
    }

    #[test]
    fn zero_seed_is_remapped() {
        let mut z = XorShift64::new(0);
        assert_ne!(z.next_u64(), 0);
    }
}
