//! # vids-harness — the adversarial correctness harness
//!
//! The paper's detectors live or die on exact wire-level arithmetic (the
//! media-spamming pattern compares RTP sequence/timestamp gaps, Fig. 6) and
//! on the IDS never diverging from its specification machines — so this
//! crate attacks the repo's own parsers, estimators and runtime the way
//! hostile traffic would, instead of waiting for an attacker to do it:
//!
//! * [`mutate`] — **structure-aware mutation fuzzers** over SIP text and
//!   RTP/RTCP wire bytes, driven by the seeded [`rng::XorShift64`] and the
//!   [`corpus`] of well-formed seeds. Mutations are the damage classes real
//!   wires produce: truncation, header duplication/reordering, compact-form
//!   and case flips, LF-only endings, hostile `Content-Length`, and
//!   sequence/timestamp extremes around the 16-/32-bit wrap points.
//! * [`model`] — a **miniature exhaustive interleaving checker** over a
//!   shrunken model of the `vids_core::pool` mailbox protocol
//!   (`IDLE/HAS_WORK/SHUTDOWN/POISONED`), enumerating *every*
//!   coordinator/worker step interleaving and asserting no lost wakeup, no
//!   double ownership of a shard buffer, and that shutdown always joins.
//!   The worker-side transition functions are imported from
//!   `vids_core::pool::mailbox` — the model checks the shipped decision
//!   logic, not a transcription.
//! * [`record_bridge`] — loads flight-recorder `.vdump` forensic dumps
//!   as fuzz corpus seeds (real wire bytes that provably drove the
//!   engine to an alert) and re-exports the drop-one-packet minimizer
//!   that keeps committed regression dumps small.
//! * the `tests/` directory holds the standing gates: wire fuzzing
//!   (`fuzz_wire`), differential oracles (`differential` — parse→Display→
//!   parse round-trips, plain-vs-pooled-engine equality at 1/4/8 shards,
//!   telemetry-on/off detection equality), the model checker
//!   (`mailbox_model`), and one regression per bug the harness was built to
//!   catch (`regressions`).
//!
//! Budgets: every fuzz loop runs [`fuzz_iterations`] cases — 10 000 by
//! default, overridable through the `VIDS_FUZZ_ITERS` environment variable
//! for longer soaks (`VIDS_FUZZ_ITERS=1000000 cargo test -p vids-harness`).

pub mod corpus;
pub mod model;
pub mod mutate;
pub mod record_bridge;
pub mod rng;

/// Per-target fuzz iteration budget: `VIDS_FUZZ_ITERS` when set and
/// parseable, 10 000 otherwise (the smoke budget `scripts/check.sh` pins).
pub fn fuzz_iterations() -> u64 {
    std::env::var("VIDS_FUZZ_ITERS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(10_000)
}
