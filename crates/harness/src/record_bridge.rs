//! Bridge between the flight recorder and the fuzz harness.
//!
//! A `.vdump` forensic dump is exactly what a mutation fuzzer wants for
//! breakfast: a window of real wire bytes that drove the engine all the
//! way to an alert. This module loads dumps as corpus seeds — SIP text
//! and RTP wire bytes, split by the recorded demux verdict — and
//! re-exports the drop-one-packet [`minimize`] pass so regression dumps
//! checked in under [`corpus_dir`] stay as small as the alert allows.
//!
//! The committed corpus lives in `crates/harness/corpus/*.vdump`. Tests
//! load every dump found there; `VIDS_REGEN_CORPUS=1` regenerates the
//! pinned files (see `tests/record_gate.rs`).

use std::path::{Path, PathBuf};

pub use vids_record::{minimize, replay_vdump, MinimizeReport};
use vids_record::{RecordedClass, Vdump};

/// The directory of committed regression dumps, resolved relative to
/// this crate so tests find it regardless of the cargo invocation dir.
pub fn corpus_dir() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("corpus")
}

/// Every `.vdump` under `dir`, sorted by file name for determinism.
/// Unreadable or unparseable files are an error — a corrupt committed
/// dump should fail loudly, not silently shrink the corpus.
pub fn load_dumps(dir: &Path) -> Result<Vec<(PathBuf, Vdump)>, String> {
    let mut paths: Vec<PathBuf> = match std::fs::read_dir(dir) {
        Ok(entries) => entries
            .filter_map(|e| e.ok().map(|e| e.path()))
            .filter(|p| p.extension().is_some_and(|x| x == "vdump"))
            .collect(),
        Err(_) => Vec::new(), // no corpus directory yet — empty corpus
    };
    paths.sort();
    let mut dumps = Vec::with_capacity(paths.len());
    for path in paths {
        let dump = Vdump::read_from(&path)
            .map_err(|e| format!("corpus dump {} is unreadable: {e}", path.display()))?;
        dumps.push((path, dump));
    }
    Ok(dumps)
}

/// SIP payloads from a dump's packet window, for the SIP text fuzzer.
/// Only packets the live demux classified as SIP and that decode as
/// UTF-8 qualify — the fuzzer mutates text, not arbitrary bytes.
pub fn sip_seeds_from_dump(dump: &Vdump) -> Vec<String> {
    dump.packets
        .iter()
        .filter(|p| p.meta.class == RecordedClass::Sip)
        .filter_map(|p| String::from_utf8(p.payload.clone()).ok())
        .collect()
}

/// RTP wire payloads from a dump's packet window, for the byte fuzzers.
pub fn rtp_seeds_from_dump(dump: &Vdump) -> Vec<Vec<u8>> {
    dump.packets
        .iter()
        .filter(|p| p.meta.class == RecordedClass::Rtp)
        .map(|p| p.payload.clone())
        .collect()
}

/// The committed corpus flattened into extra fuzzer seeds: every SIP
/// payload from every dump under [`corpus_dir`].
pub fn corpus_sip_seeds() -> Vec<String> {
    load_dumps(&corpus_dir())
        .unwrap_or_default()
        .iter()
        .flat_map(|(_, d)| sip_seeds_from_dump(d))
        .collect()
}

/// The committed corpus flattened into extra byte-fuzzer seeds: every RTP
/// payload from every dump under [`corpus_dir`]. Empty while the checked-in
/// dumps record signaling-only attacks; a media-window dump feeds in
/// automatically once committed.
pub fn corpus_rtp_seeds() -> Vec<Vec<u8>> {
    load_dumps(&corpus_dir())
        .unwrap_or_default()
        .iter()
        .flat_map(|(_, d)| rtp_seeds_from_dump(d))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use vids_record::{RecordedPacket, SlotMeta};

    fn packet(class: RecordedClass, payload: &[u8]) -> RecordedPacket {
        RecordedPacket {
            meta: SlotMeta {
                seq: 0,
                at_ns: 0,
                batch: 1,
                src_ip: 0x0a01_000a,
                src_port: 5060,
                dst_ip: 0x0a02_000a,
                dst_port: 5060,
                class,
            },
            payload: payload.to_vec(),
        }
    }

    #[test]
    fn seeds_split_by_recorded_class() {
        let dump = Vdump {
            config: vids_core::config::Config::default(),
            telemetry_ring: 0,
            packets: vec![
                packet(RecordedClass::Sip, b"OPTIONS sip:x SIP/2.0\r\n\r\n"),
                packet(RecordedClass::Sip, &[0xFF, 0xFE]), // not UTF-8: skipped
                packet(RecordedClass::Rtp, &[0x80, 18, 0, 1]),
                packet(RecordedClass::Unknown, b"noise"),
            ],
            alert: vids_core::alert::Alert {
                time_ms: 0,
                kind: vids_core::alert::AlertKind::Attack,
                label: "x".into(),
                call_id: None,
                machine: "m".into(),
                detail: String::new(),
                trace: Vec::new(),
            },
            snapshot: None,
            counters: vids_record::DumpCounters::default(),
        };
        let sip = sip_seeds_from_dump(&dump);
        assert_eq!(sip, vec!["OPTIONS sip:x SIP/2.0\r\n\r\n".to_owned()]);
        let rtp = rtp_seeds_from_dump(&dump);
        assert_eq!(rtp, vec![vec![0x80, 18, 0, 1]]);
    }

    #[test]
    fn missing_corpus_dir_is_an_empty_corpus() {
        let dumps = load_dumps(Path::new("/nonexistent/vids-corpus")).unwrap();
        assert!(dumps.is_empty());
    }
}
