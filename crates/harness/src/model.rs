//! Exhaustive interleaving checker for the pool's mailbox protocol.
//!
//! `vids_core::pool` hands batches to persistent shard workers through a
//! lock-free mailbox: a per-cell `AtomicU32` state word
//! (`IDLE`/`HAS_WORK`/`SHUTDOWN`/`POISONED`), a `pending` job counter, and
//! park/unpark wakeups. Its correctness argument lives in comments; this
//! module turns the argument into a checked artifact. The protocol is
//! shrunk to a finite model — worker program counters, the coordinator's
//! phase script (register → arm → write/publish per job → wait → gather →
//! shutdown), park tokens, and an explicit buffer-ownership ledger — and
//! **every** interleaving of coordinator and worker steps is enumerated by
//! depth-first search with memoization.
//!
//! The worker's decision logic is not transcribed: each modeled worker step
//! calls [`vids_core::pool::mailbox::worker_observe`] and
//! [`vids_core::pool::mailbox::worker_publish`], the same functions
//! `worker_loop` executes, so if those drift the model drifts with them.
//!
//! Checked invariants:
//!
//! * **no lost wakeup / no hang** — every reachable state either has an
//!   enabled step or is the terminal "coordinator done, all workers
//!   joined" state (deadlock detection subsumes lost-wakeup detection,
//!   because a missed unpark strands a parked thread with no enabled step);
//! * **single buffer ownership** — the coordinator only touches a cell's
//!   buffers while it holds them (write-before-publish, gather-after-wait),
//!   and a worker only between observing `HAS_WORK` and publishing back;
//! * **no pending underflow** — a worker never decrements `pending` past
//!   zero (the reason `begin` arms the count *before* the first publish);
//! * **shutdown always joins** — including when a job panicked and left its
//!   cell `POISONED`.
//!
//! The model assumes sequentially consistent interleavings; it checks the
//! protocol logic, not the `Acquire`/`Release` fence placement. Injectable
//! bugs ([`Bugs`]) exist so the test suite can prove the checker *fails*
//! when the protocol is broken in each historically tempting way.

use std::collections::HashMap;

use vids_core::pool::mailbox::{self, WorkerStep, HAS_WORK, IDLE, POISONED, SHUTDOWN};

/// Model configuration: the shrunken world the checker exhausts.
#[derive(Debug, Clone, Copy)]
pub struct Config {
    /// Worker threads (model cells). Keep ≤ 3: the state space is
    /// exponential in this.
    pub workers: usize,
    /// Jobs published per phase, to cells `0..jobs`. Must be ≤ `workers`.
    pub jobs: usize,
    /// Batch phases the coordinator runs before dropping the runtime.
    pub phases: usize,
    /// Make this job index panic in phase 0, exercising the `POISONED`
    /// path (publish-back, coordinator re-throw, shutdown over poison).
    pub panic_job: Option<usize>,
    /// Injected protocol bugs — all `false` for the real protocol.
    pub bugs: Bugs,
}

/// Deliberate protocol mutations. Each one models a bug class the real
/// implementation defends against; the checker must reject every one.
#[derive(Debug, Clone, Copy, Default)]
pub struct Bugs {
    /// `unpark` wakes only a currently-parked thread instead of banking a
    /// token. The real `Thread::unpark` banks; without it, an unpark that
    /// races ahead of the park is lost.
    pub drop_park_token: bool,
    /// Publish `HAS_WORK` before writing the job into the cell.
    pub publish_before_write: bool,
    /// Arm `pending` after the publishes instead of before the first one:
    /// an instantly-finishing worker then decrements from zero.
    pub arm_after_publish: bool,
    /// Store `SHUTDOWN` on drop but skip the unparks.
    pub skip_shutdown_unpark: bool,
}

impl Config {
    /// The real protocol at a given size.
    pub fn correct(workers: usize, jobs: usize, phases: usize) -> Config {
        Config {
            workers,
            jobs,
            phases,
            panic_job: None,
            bugs: Bugs::default(),
        }
    }
}

/// Who may touch a cell's buffers right now.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
enum Owner {
    Coordinator,
    Worker,
}

/// A worker's program counter, mirroring `worker_loop`'s structure.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
enum WorkerPc {
    /// Loading the state word and deciding via `mailbox::worker_observe`.
    Check,
    /// Observed nothing to do; about to call `park`. This is the
    /// load-to-park window the park token must cover: an unpark landing
    /// here must not be lost.
    ParkDecided,
    /// Parked; runnable only once its token is banked.
    Parked,
    /// Inside `run_job` (buffers must be worker-owned for the duration).
    Running,
    /// About to store `mailbox::worker_publish(..)` back to the cell.
    Publish,
    /// About to `fetch_sub` the pending counter.
    Decrement,
    /// Drained the counter to zero; about to unpark the coordinator.
    Notify,
    /// Left the loop (observed `SHUTDOWN`).
    Exited,
}

/// The coordinator's program counter: the phase script of
/// `classify_batch`/`drain_shards`, then `WorkerRuntime::drop`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
enum CoordPc {
    /// `begin`: register for wakeup.
    Register { phase: usize },
    /// `begin`: arm `pending` with the job count.
    Arm { phase: usize },
    /// Write job `job` into its cell's buffers.
    Write { phase: usize, job: usize },
    /// Store `HAS_WORK` and unpark the worker.
    Publish { phase: usize, job: usize },
    /// `wait`: load `pending`, return or decide to park.
    WaitCheck { phase: usize },
    /// `wait`: saw `pending != 0`; about to call `park` (the load-to-park
    /// window a racing final decrement must not slip through).
    WaitPark { phase: usize },
    /// `wait`: parked until a token is banked.
    WaitParked { phase: usize },
    /// `wait` epilogue: deregister.
    Unregister { phase: usize },
    /// `check_poison`: scan cells for `POISONED`.
    CheckPoison { phase: usize },
    /// Read job `job`'s outputs back out of the cell.
    Gather { phase: usize, job: usize },
    /// Drop: store `SHUTDOWN` into cell `cell`.
    ShutdownStore { cell: usize },
    /// Drop: unpark worker `cell`.
    ShutdownUnpark { cell: usize },
    /// Drop: join worker `cell` (enabled once it exited).
    Join { cell: usize },
    /// Runtime fully dropped.
    Done,
}

/// One global state of the model.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
struct State {
    cells: Vec<u32>,
    owner: Vec<Owner>,
    /// Whether the job written into each cell will panic when run.
    job_panics: Vec<bool>,
    pending: usize,
    coord_registered: bool,
    coord_token: bool,
    worker_token: Vec<bool>,
    workers: Vec<WorkerPc>,
    coord: CoordPc,
}

/// A protocol violation, with the interleaving that reached it.
#[derive(Debug, Clone)]
pub struct Violation {
    /// What broke.
    pub kind: ViolationKind,
    /// The step labels from the initial state to the violation.
    pub trace: Vec<String>,
}

/// The invariant classes the checker enforces.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ViolationKind {
    /// Two parties could touch one cell's buffers at once.
    DoubleOwnership {
        /// The offending cell.
        cell: usize,
        /// Which access collided.
        access: &'static str,
    },
    /// A worker decremented `pending` when it was already zero.
    PendingUnderflow,
    /// A job was gathered without having run to completion.
    IncompleteJob {
        /// The offending cell.
        cell: usize,
    },
    /// A non-terminal state with no enabled step: a lost wakeup or a
    /// shutdown that never joins.
    Deadlock {
        /// Human-readable summary of the stuck state.
        state: String,
    },
}

impl std::fmt::Display for Violation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "mailbox protocol violation: {:?}", self.kind)?;
        writeln!(f, "interleaving ({} steps):", self.trace.len())?;
        for step in &self.trace {
            writeln!(f, "  {step}")?;
        }
        Ok(())
    }
}

/// Exhaustive-search statistics.
#[derive(Debug, Clone, Copy)]
pub struct Stats {
    /// Distinct states visited.
    pub states: usize,
    /// Transitions taken (including into already-visited states).
    pub transitions: usize,
}

/// Enumerates every interleaving of `config` and checks all invariants.
///
/// # Errors
///
/// Returns the first [`Violation`] found, with a step trace.
///
/// # Panics
///
/// Panics if `config.jobs > config.workers` (jobs address cells).
pub fn explore(config: Config) -> Result<Stats, Violation> {
    assert!(config.jobs <= config.workers, "jobs address worker cells");
    let init = State {
        cells: vec![IDLE; config.workers],
        owner: vec![Owner::Coordinator; config.workers],
        job_panics: vec![false; config.workers],
        pending: 0,
        coord_registered: false,
        coord_token: false,
        worker_token: vec![false; config.workers],
        workers: vec![WorkerPc::Check; config.workers],
        coord: CoordPc::Register { phase: 0 },
    };

    // Iterative DFS with a parent map so a violation can print the exact
    // interleaving that produced it.
    let mut index: HashMap<State, usize> = HashMap::new();
    let mut parents: Vec<(usize, String)> = Vec::new(); // (parent idx, step label)
    let mut states: Vec<State> = Vec::new();
    let mut stack: Vec<usize> = Vec::new();
    index.insert(init.clone(), 0);
    states.push(init);
    parents.push((usize::MAX, String::new()));
    stack.push(0);
    let mut transitions = 0usize;

    while let Some(at) = stack.pop() {
        let state = states[at].clone();
        let steps = enabled_steps(&config, &state);
        if steps.is_empty() && !is_terminal(&state) {
            return Err(Violation {
                kind: ViolationKind::Deadlock {
                    state: format!("{state:?}"),
                },
                trace: trace_to(&parents, at),
            });
        }
        for (label, outcome) in steps {
            transitions += 1;
            let next = match outcome {
                Ok(next) => next,
                Err(kind) => {
                    let mut trace = trace_to(&parents, at);
                    trace.push(label);
                    return Err(Violation { kind, trace });
                }
            };
            if !index.contains_key(&next) {
                let id = states.len();
                index.insert(next.clone(), id);
                states.push(next);
                parents.push((at, label));
                stack.push(id);
            }
        }
    }
    Ok(Stats {
        states: states.len(),
        transitions,
    })
}

fn is_terminal(s: &State) -> bool {
    s.coord == CoordPc::Done && s.workers.iter().all(|&w| w == WorkerPc::Exited)
}

fn trace_to(parents: &[(usize, String)], mut at: usize) -> Vec<String> {
    let mut out = Vec::new();
    while at != 0 {
        let (parent, label) = &parents[at];
        out.push(label.clone());
        at = *parent;
    }
    out.reverse();
    out
}

type StepOutcome = Result<State, ViolationKind>;

/// All steps enabled in `s`, as `(label, outcome)` pairs.
fn enabled_steps(config: &Config, s: &State) -> Vec<(String, StepOutcome)> {
    let mut steps = Vec::new();
    if let Some((label, outcome)) = coordinator_step(config, s) {
        steps.push((label, outcome));
    }
    for i in 0..config.workers {
        if let Some((label, outcome)) = worker_step(config, s, i) {
            steps.push((label, outcome));
        }
    }
    steps
}

/// Banks an unpark for worker `i`, honoring the `drop_park_token` bug.
fn unpark_worker(config: &Config, s: &mut State, i: usize) {
    if !config.bugs.drop_park_token || s.workers[i] == WorkerPc::Parked {
        s.worker_token[i] = true;
    }
}

/// Banks an unpark for the coordinator, honoring the `drop_park_token` bug.
fn unpark_coordinator(config: &Config, s: &mut State) {
    if !config.bugs.drop_park_token || matches!(s.coord, CoordPc::WaitParked { .. }) {
        s.coord_token = true;
    }
}

/// The coordinator script's next label after finishing job setup for
/// `phase`: the next write/publish pair, or the arm/wait that follows.
fn after_job_setup(config: &Config, phase: usize, next_job: usize) -> CoordPc {
    if next_job < config.jobs {
        if config.bugs.publish_before_write {
            CoordPc::Publish {
                phase,
                job: next_job,
            }
        } else {
            CoordPc::Write {
                phase,
                job: next_job,
            }
        }
    } else if config.bugs.arm_after_publish {
        CoordPc::Arm { phase }
    } else {
        CoordPc::WaitCheck { phase }
    }
}

fn coordinator_step(config: &Config, s: &State) -> Option<(String, StepOutcome)> {
    let mut n = s.clone();
    let (label, outcome): (String, StepOutcome) = match s.coord {
        CoordPc::Register { phase } => {
            n.coord_registered = true;
            n.coord = if config.bugs.arm_after_publish {
                after_job_setup(config, phase, 0)
            } else {
                CoordPc::Arm { phase }
            };
            (format!("coord: register (phase {phase})"), Ok(n))
        }
        CoordPc::Arm { phase } => {
            n.pending = config.jobs;
            n.coord = if config.bugs.arm_after_publish {
                CoordPc::WaitCheck { phase }
            } else {
                after_job_setup(config, phase, 0)
            };
            (format!("coord: arm pending={} ", config.jobs), Ok(n))
        }
        CoordPc::Write { phase, job } => {
            let label = format!("coord: write job {job} (phase {phase})");
            if s.owner[job] != Owner::Coordinator {
                return Some((
                    label,
                    Err(ViolationKind::DoubleOwnership {
                        cell: job,
                        access: "coordinator wrote a cell it does not own",
                    }),
                ));
            }
            n.job_panics[job] = phase == 0 && config.panic_job == Some(job);
            n.coord = if config.bugs.publish_before_write {
                // Bug ordering: this write trails its publish.
                after_job_setup(config, phase, job + 1)
            } else {
                CoordPc::Publish { phase, job }
            };
            (label, Ok(n))
        }
        CoordPc::Publish { phase, job } => {
            n.cells[job] = HAS_WORK;
            n.owner[job] = Owner::Worker;
            unpark_worker(config, &mut n, job);
            n.coord = if config.bugs.publish_before_write {
                CoordPc::Write { phase, job }
            } else {
                after_job_setup(config, phase, job + 1)
            };
            (format!("coord: publish job {job} (phase {phase})"), Ok(n))
        }
        CoordPc::WaitCheck { phase } => {
            if s.pending == 0 {
                n.coord = CoordPc::Unregister { phase };
                (format!("coord: wait sees pending=0 (phase {phase})"), Ok(n))
            } else {
                n.coord = CoordPc::WaitPark { phase };
                (
                    format!("coord: wait sees pending={} (phase {phase})", s.pending),
                    Ok(n),
                )
            }
        }
        CoordPc::WaitPark { phase } => {
            if s.coord_token {
                n.coord_token = false;
                n.coord = CoordPc::WaitCheck { phase };
                (
                    format!("coord: park consumes banked token (phase {phase})"),
                    Ok(n),
                )
            } else {
                n.coord = CoordPc::WaitParked { phase };
                (format!("coord: parks (phase {phase})"), Ok(n))
            }
        }
        CoordPc::WaitParked { phase } => {
            if !s.coord_token {
                return None; // blocked until a worker unparks us
            }
            n.coord_token = false;
            n.coord = CoordPc::WaitCheck { phase };
            (format!("coord: unparked (phase {phase})"), Ok(n))
        }
        CoordPc::Unregister { phase } => {
            n.coord_registered = false;
            n.coord = CoordPc::CheckPoison { phase };
            (format!("coord: unregister (phase {phase})"), Ok(n))
        }
        CoordPc::CheckPoison { phase } => {
            if s.cells.contains(&POISONED) {
                // The re-thrown panic unwinds into WorkerRuntime::drop.
                n.coord = CoordPc::ShutdownStore { cell: 0 };
                (
                    format!("coord: poison found, unwinding to drop (phase {phase})"),
                    Ok(n),
                )
            } else {
                n.coord = next_gather(config, phase, 0);
                (format!("coord: no poison (phase {phase})"), Ok(n))
            }
        }
        CoordPc::Gather { phase, job } => {
            let label = format!("coord: gather job {job} (phase {phase})");
            if s.owner[job] != Owner::Coordinator {
                return Some((
                    label,
                    Err(ViolationKind::DoubleOwnership {
                        cell: job,
                        access: "coordinator gathered a cell it does not own",
                    }),
                ));
            }
            if s.cells[job] != IDLE {
                return Some((label, Err(ViolationKind::IncompleteJob { cell: job })));
            }
            n.coord = next_gather(config, phase, job + 1);
            (label, Ok(n))
        }
        CoordPc::ShutdownStore { cell } => {
            n.cells[cell] = SHUTDOWN;
            n.coord = if cell + 1 < config.workers {
                CoordPc::ShutdownStore { cell: cell + 1 }
            } else if config.bugs.skip_shutdown_unpark {
                CoordPc::Join { cell: 0 }
            } else {
                CoordPc::ShutdownUnpark { cell: 0 }
            };
            (format!("coord: store SHUTDOWN to cell {cell}"), Ok(n))
        }
        CoordPc::ShutdownUnpark { cell } => {
            unpark_worker(config, &mut n, cell);
            n.coord = if cell + 1 < config.workers {
                CoordPc::ShutdownUnpark { cell: cell + 1 }
            } else {
                CoordPc::Join { cell: 0 }
            };
            (format!("coord: shutdown-unpark worker {cell}"), Ok(n))
        }
        CoordPc::Join { cell } => {
            if s.workers[cell] != WorkerPc::Exited {
                return None; // join blocks until the worker exits
            }
            n.coord = if cell + 1 < config.workers {
                CoordPc::Join { cell: cell + 1 }
            } else {
                CoordPc::Done
            };
            (format!("coord: joined worker {cell}"), Ok(n))
        }
        CoordPc::Done => return None,
    };
    Some((label, outcome))
}

/// After gathering `job` jobs of `phase`: the next gather, the next phase,
/// or the drop sequence.
fn next_gather(config: &Config, phase: usize, job: usize) -> CoordPc {
    if job < config.jobs {
        CoordPc::Gather { phase, job }
    } else if phase + 1 < config.phases {
        CoordPc::Register { phase: phase + 1 }
    } else {
        CoordPc::ShutdownStore { cell: 0 }
    }
}

fn worker_step(config: &Config, s: &State, i: usize) -> Option<(String, StepOutcome)> {
    let mut n = s.clone();
    let (label, outcome): (String, StepOutcome) = match s.workers[i] {
        WorkerPc::Check => {
            // The real decision function, not a transcription of it.
            match mailbox::worker_observe(s.cells[i]) {
                WorkerStep::Run => {
                    if s.owner[i] != Owner::Worker {
                        return Some((
                            format!("worker {i}: observed HAS_WORK"),
                            Err(ViolationKind::DoubleOwnership {
                                cell: i,
                                access: "worker ran a job in a cell it does not own",
                            }),
                        ));
                    }
                    n.workers[i] = WorkerPc::Running;
                    (format!("worker {i}: observed HAS_WORK, running"), Ok(n))
                }
                WorkerStep::Exit => {
                    n.workers[i] = WorkerPc::Exited;
                    (format!("worker {i}: observed SHUTDOWN, exiting"), Ok(n))
                }
                WorkerStep::Wait => {
                    n.workers[i] = WorkerPc::ParkDecided;
                    (format!("worker {i}: observed no work"), Ok(n))
                }
            }
        }
        WorkerPc::ParkDecided => {
            if s.worker_token[i] {
                n.worker_token[i] = false;
                n.workers[i] = WorkerPc::Check;
                (format!("worker {i}: park consumes banked token"), Ok(n))
            } else {
                n.workers[i] = WorkerPc::Parked;
                (format!("worker {i}: parks"), Ok(n))
            }
        }
        WorkerPc::Parked => {
            if !s.worker_token[i] {
                return None; // blocked until an unpark banks a token
            }
            n.worker_token[i] = false;
            n.workers[i] = WorkerPc::Check;
            (format!("worker {i}: unparked"), Ok(n))
        }
        WorkerPc::Running => {
            if s.owner[i] != Owner::Worker {
                return Some((
                    format!("worker {i}: run_job"),
                    Err(ViolationKind::DoubleOwnership {
                        cell: i,
                        access: "cell buffers changed hands mid-job",
                    }),
                ));
            }
            n.workers[i] = WorkerPc::Publish;
            let verb = if s.job_panics[i] {
                "panics"
            } else {
                "finishes"
            };
            (format!("worker {i}: run_job {verb}"), Ok(n))
        }
        WorkerPc::Publish => {
            // The real publish function decides IDLE vs POISONED.
            n.cells[i] = mailbox::worker_publish(s.job_panics[i]);
            n.owner[i] = Owner::Coordinator;
            n.workers[i] = WorkerPc::Decrement;
            (format!("worker {i}: publishes {}", n.cells[i]), Ok(n))
        }
        WorkerPc::Decrement => {
            if s.pending == 0 {
                return Some((
                    format!("worker {i}: fetch_sub pending"),
                    Err(ViolationKind::PendingUnderflow),
                ));
            }
            n.pending -= 1;
            n.workers[i] = if n.pending == 0 {
                WorkerPc::Notify
            } else {
                WorkerPc::Check
            };
            (
                format!("worker {i}: pending {} -> {}", s.pending, n.pending),
                Ok(n),
            )
        }
        WorkerPc::Notify => {
            if s.coord_registered {
                unpark_coordinator(config, &mut n);
            }
            n.workers[i] = WorkerPc::Check;
            (format!("worker {i}: unparks coordinator"), Ok(n))
        }
        WorkerPc::Exited => return None,
    };
    Some((label, outcome))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smallest_world_passes() {
        let stats = explore(Config::correct(1, 1, 1)).expect("1 worker, 1 job, 1 phase");
        assert!(stats.states > 10);
    }

    #[test]
    fn zero_jobs_passes() {
        explore(Config::correct(2, 0, 1)).expect("empty phase still joins");
    }

    #[test]
    fn dropped_park_token_is_a_lost_wakeup() {
        let config = Config {
            bugs: Bugs {
                drop_park_token: true,
                ..Bugs::default()
            },
            ..Config::correct(1, 1, 1)
        };
        let violation = explore(config).expect_err("unpark without token banking");
        assert!(matches!(violation.kind, ViolationKind::Deadlock { .. }));
        assert!(!violation.trace.is_empty());
    }
}
