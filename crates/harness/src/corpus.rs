//! Well-formed seeds for the mutation fuzzers.
//!
//! Mutation fuzzing is only as good as its starting points: a mutator fed
//! garbage explores the "reject immediately" subspace forever. These seeds
//! are valid messages the repo's own builders emit — plus hand-written
//! variants (compact headers, LF endings, addr-spec forms) the builders
//! never produce — so single mutations land *near* the accept/reject
//! boundary where parser bugs live. RTP/RTCP seeds pin sequence numbers and
//! timestamps to the 16-/32-bit wrap points the satellite bugs lived at.

use vids_rtp::packet::RtpPacket;
use vids_rtp::rtcp_wire::{ReportBlock, RtcpPacket};
use vids_sip::method::Method;
use vids_sip::status::StatusCode;
use vids_sip::uri::SipUri;
use vids_sip::Request;

/// Sequence numbers straddling the 16-bit wrap and the serial-comparison
/// half-window boundary (RFC 1982 / RFC 3550 §A.1).
pub const SEQ_EXTREMES: [u16; 8] = [0, 1, 2, 0x7FFF, 0x8000, 0x8001, 0xFFFE, 0xFFFF];

/// Timestamps straddling the 32-bit wrap and the signed-difference
/// boundary — the values the jitter estimator's unsigned-delta bug needed.
pub const TS_EXTREMES: [u32; 8] = [
    0,
    1,
    160,
    0x7FFF_FFFF,
    0x8000_0000,
    0x8000_0001,
    u32::MAX - 160,
    u32::MAX,
];

/// Well-formed SIP message texts: everything the testbed's builders emit
/// plus hand-written wire variants (compact names, LF-only endings,
/// addr-spec `From`/`To`) that are legal but never generated.
pub fn sip_seeds() -> Vec<String> {
    let from = SipUri::new("alice", "a.example.com");
    let to = SipUri::new("bob", "b.example.com");
    let invite = Request::invite(&from, &to, "fuzz-call-1").with_body(
        "application/sdp",
        "v=0\r\no=alice 1 1 IN IP4 10.1.0.10\r\nm=audio 20000 RTP/AVP 18\r\n",
    );
    let mut seeds = vec![
        invite.to_string(),
        invite.response(StatusCode::TRYING).to_string(),
        invite
            .response(StatusCode::RINGING)
            .with_to_tag("tag-b1")
            .to_string(),
        invite
            .response(StatusCode::OK)
            .with_to_tag("tag-b1")
            .with_body("application/sdp", "v=0\r\nm=audio 20002 RTP/AVP 18\r\n")
            .to_string(),
        Request::in_dialog(Method::Ack, &invite, 1, Some("tag-b1")).to_string(),
        Request::in_dialog(Method::Bye, &invite, 2, Some("tag-b1")).to_string(),
        Request::new(Method::Register, SipUri::new("alice", "a.example.com")).to_string(),
    ];
    // Compact header names + LF-only line endings: legal per RFC 3261
    // §7.3.3, never emitted by the builders above.
    seeds.push(
        "BYE sip:bob@b.example.com SIP/2.0\n\
         v: SIP/2.0/UDP a.example.com:5060;branch=z9hG4bK-fz\n\
         f: <sip:alice@a.example.com>;tag=fa\n\
         t: <sip:bob@b.example.com>;tag=fb\n\
         i: fuzz-call-2\n\
         CSeq: 2 BYE\n\
         l: 0\n\n"
            .to_owned(),
    );
    // addr-spec (no angle brackets) name-addr forms with hoisted tags.
    seeds.push(
        "OPTIONS sip:b.example.com SIP/2.0\r\n\
         Via: SIP/2.0/UDP a.example.com;branch=z9hG4bK-opt\r\n\
         From: sip:alice@a.example.com;tag=oa\r\n\
         To: sip:bob@b.example.com\r\n\
         Call-ID: fuzz-call-3\r\n\
         CSeq: 7 OPTIONS\r\n\
         Content-Length: 4\r\n\r\nping"
            .to_owned(),
    );
    seeds
}

/// Well-formed RTP wire packets at every seq/timestamp extreme pair, plus a
/// few mid-stream shapes (marker bit, padding flag, empty payload).
pub fn rtp_seeds() -> Vec<Vec<u8>> {
    let mut seeds = Vec::new();
    for (i, &seq) in SEQ_EXTREMES.iter().enumerate() {
        let ts = TS_EXTREMES[i % TS_EXTREMES.len()];
        seeds.push(
            RtpPacket::new(18, seq, ts, 0xFACE_0001)
                .with_payload(vec![0xAB; 10])
                .to_bytes(),
        );
    }
    seeds.push(
        RtpPacket::new(0, 100, 16_000, 0xFACE_0002)
            .with_marker()
            .to_bytes(),
    );
    let mut padded = RtpPacket::new(96, 0xFFFF, u32::MAX, 0xFACE_0003)
        .with_payload(vec![1, 2, 3])
        .to_bytes();
    padded[0] |= 0x20; // padding flag survives the parser
    seeds.push(padded);
    seeds.push(RtpPacket::new(127, 0, 0, 0).to_bytes());
    seeds
}

/// Well-formed RTCP wire packets: SR and RR with 0/1/2 report blocks, with
/// the block fields at wrap extremes.
pub fn rtcp_seeds() -> Vec<Vec<u8>> {
    let block = |ssrc: u32, seq: u32| ReportBlock {
        ssrc,
        fraction_lost: 255,
        cumulative_lost: 0xFF_FFFF,
        highest_seq: seq,
        jitter: u32::MAX,
        last_sr: 0,
        delay_since_last_sr: 1,
    };
    vec![
        RtcpPacket::SenderReport {
            ssrc: 0xBEEF_0001,
            ntp_timestamp: u64::MAX,
            rtp_timestamp: u32::MAX,
            packet_count: 0xFFFF,
            octet_count: u32::MAX,
            reports: vec![block(1, 0x0001_FFFF), block(2, 0)],
        }
        .to_bytes(),
        RtcpPacket::SenderReport {
            ssrc: 0,
            ntp_timestamp: 0,
            rtp_timestamp: 0,
            packet_count: 0,
            octet_count: 0,
            reports: vec![],
        }
        .to_bytes(),
        RtcpPacket::ReceiverReport {
            ssrc: 0xBEEF_0002,
            reports: vec![block(3, 0x8000_0000)],
        }
        .to_bytes(),
        RtcpPacket::ReceiverReport {
            ssrc: 7,
            reports: vec![],
        }
        .to_bytes(),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use vids_sip::parse::parse_message;
    use vids_sip::view::parse_view;

    #[test]
    fn every_sip_seed_is_accepted_by_both_parsers() {
        for text in sip_seeds() {
            assert!(parse_message(&text).is_ok(), "owned rejects seed: {text:?}");
            assert!(parse_view(&text).is_ok(), "view rejects seed: {text:?}");
        }
    }

    #[test]
    fn every_rtp_seed_parses() {
        for bytes in rtp_seeds() {
            assert!(RtpPacket::parse(&bytes).is_ok());
        }
    }

    #[test]
    fn every_rtcp_seed_parses() {
        for bytes in rtcp_seeds() {
            assert!(RtcpPacket::parse(&bytes).is_ok());
        }
    }
}
