//! Structure-aware mutations over SIP text and RTP/RTCP wire bytes.
//!
//! Each mutator applies *one* randomly chosen damage class per call; the
//! fuzz loops stack 1–3 applications so most cases stay near the
//! accept/reject boundary instead of degenerating into noise. The damage
//! classes are the ones real wires and real attackers produce — the same
//! classes the paper's testbed had to survive: datagram truncation,
//! duplicated/reordered headers, compact-form and case flips, bare-LF line
//! endings, hostile `Content-Length`, and field extremes around the 16- and
//! 32-bit wrap points.

use crate::corpus::{SEQ_EXTREMES, TS_EXTREMES};
use crate::rng::XorShift64;

/// Hostile `Content-Length` values: huge, overflowing, negative, non-numeric,
/// and off-by-one shapes.
const HOSTILE_CONTENT_LENGTHS: [&str; 8] = [
    "9999",
    "4294967295",
    "18446744073709551616",
    "-1",
    "many",
    "1e9",
    "0x10",
    " 12 34",
];

/// Canonical/compact header-name pairs (RFC 3261 §7.3.3).
const COMPACT_PAIRS: [(&str, &str); 7] = [
    ("Via", "v"),
    ("From", "f"),
    ("To", "t"),
    ("Call-ID", "i"),
    ("Contact", "m"),
    ("Content-Type", "c"),
    ("Content-Length", "l"),
];

/// Applies one random SIP damage class to `text`.
pub fn mutate_sip(rng: &mut XorShift64, text: &str) -> String {
    match rng.below(10) {
        // Truncate mid-message: the datagram the wire actually delivered.
        0 => {
            if text.is_empty() {
                return text.to_owned();
            }
            let cut = rng.below(text.len());
            let mut cut = cut;
            while !text.is_char_boundary(cut) {
                cut -= 1;
            }
            text[..cut].to_owned()
        }
        // Duplicate a random header line.
        1 => edit_lines(rng, text, |rng, lines| {
            if lines.len() > 1 {
                let i = 1 + rng.below(lines.len() - 1);
                let dup = lines[i].clone();
                lines.insert(i, dup);
            }
        }),
        // Swap two header lines (reordering must not change verdicts,
        // except for Via where only the topmost counts).
        2 => edit_lines(rng, text, |rng, lines| {
            if lines.len() > 2 {
                let i = 1 + rng.below(lines.len() - 1);
                let j = 1 + rng.below(lines.len() - 1);
                lines.swap(i, j);
            }
        }),
        // Flip header-name casing: grammar is case-insensitive there.
        3 => edit_lines(rng, text, |rng, lines| {
            if lines.len() > 1 {
                let i = 1 + rng.below(lines.len() - 1);
                let line = &lines[i];
                if let Some(colon) = line.find(':') {
                    let flipped: String = line[..colon]
                        .chars()
                        .map(|c| {
                            if c.is_ascii_lowercase() {
                                c.to_ascii_uppercase()
                            } else {
                                c.to_ascii_lowercase()
                            }
                        })
                        .collect();
                    lines[i] = format!("{flipped}{}", &line[colon..]);
                }
            }
        }),
        // Swap a canonical header name for its compact form or back.
        4 => edit_lines(rng, text, |rng, lines| {
            let (canon, compact) = *rng.pick(&COMPACT_PAIRS);
            for line in lines.iter_mut().skip(1) {
                if let Some(rest) = strip_name(line, canon) {
                    *line = format!("{compact}:{rest}");
                    break;
                }
                if let Some(rest) = strip_name(line, compact) {
                    *line = format!("{canon}:{rest}");
                    break;
                }
            }
        }),
        // Bare-LF line endings (tolerated by both parsers).
        5 => text.replace("\r\n", "\n"),
        // Hostile Content-Length: replace or inject one.
        6 => {
            let value = *rng.pick(&HOSTILE_CONTENT_LENGTHS);
            edit_lines(rng, text, |_, lines| {
                if let Some(line) = lines.iter_mut().skip(1).find(|l| {
                    strip_name(l, "Content-Length").is_some() || strip_name(l, "l").is_some()
                }) {
                    *line = format!("Content-Length: {value}");
                } else if !lines.is_empty() {
                    lines.push(format!("Content-Length: {value}"));
                }
            })
        }
        // Extreme CSeq number.
        7 => edit_lines(rng, text, |rng, lines| {
            let value = *rng.pick(&["4294967295", "4294967296", "0", "-7"]);
            if let Some(line) = lines
                .iter_mut()
                .skip(1)
                .find(|l| strip_name(l, "CSeq").is_some())
            {
                let method = line
                    .rsplit(char::is_whitespace)
                    .next()
                    .unwrap_or("INVITE")
                    .to_owned();
                *line = format!("CSeq: {value} {method}");
            }
        }),
        // Insert a random byte.
        8 => {
            let mut bytes = text.as_bytes().to_vec();
            let pos = rng.below(bytes.len() + 1);
            bytes.insert(pos, (rng.next_u64() & 0xFF) as u8);
            String::from_utf8_lossy(&bytes).into_owned()
        }
        // Delete a random byte.
        _ => {
            if text.is_empty() {
                return text.to_owned();
            }
            let mut bytes = text.as_bytes().to_vec();
            bytes.remove(rng.below(bytes.len()));
            String::from_utf8_lossy(&bytes).into_owned()
        }
    }
}

fn strip_name<'a>(line: &'a str, name: &str) -> Option<&'a str> {
    let (n, rest) = line.split_once(':')?;
    n.trim().eq_ignore_ascii_case(name).then_some(rest)
}

fn edit_lines(
    rng: &mut XorShift64,
    text: &str,
    f: impl FnOnce(&mut XorShift64, &mut Vec<String>),
) -> String {
    // Preserve the head/body split: only header lines are edited.
    let (head, body) = match text.split_once("\r\n\r\n") {
        Some((h, b)) => (h, Some(("\r\n\r\n", b))),
        None => match text.split_once("\n\n") {
            Some((h, b)) => (h, Some(("\n\n", b))),
            None => (text, None),
        },
    };
    let mut lines: Vec<String> = head.lines().map(str::to_owned).collect();
    f(rng, &mut lines);
    let mut out = lines.join("\r\n");
    if let Some((sep, body)) = body {
        out.push_str(sep);
        out.push_str(body);
    }
    out
}

/// Applies one random wire damage class to an RTP/RTCP datagram.
pub fn mutate_wire(rng: &mut XorShift64, bytes: &[u8]) -> Vec<u8> {
    let mut out = bytes.to_vec();
    match rng.below(9) {
        // Truncate — including below the fixed header.
        0 => {
            let keep = rng.below(out.len() + 1);
            out.truncate(keep);
        }
        // Extend with random tail bytes.
        1 => {
            for _ in 0..=rng.below(24) {
                out.push((rng.next_u64() & 0xFF) as u8);
            }
        }
        // Flip one random bit anywhere.
        2 => {
            if !out.is_empty() {
                let i = rng.below(out.len());
                out[i] ^= 1 << rng.below(8);
            }
        }
        // Mangle the version / padding / extension / CSRC-count byte.
        3 => {
            if !out.is_empty() {
                out[0] = (rng.next_u64() & 0xFF) as u8;
            }
        }
        // Marker/payload-type byte (RTP) or packet-type byte (RTCP).
        4 => {
            if out.len() > 1 {
                out[1] = (rng.next_u64() & 0xFF) as u8;
            }
        }
        // Extreme sequence number (RTP offset 2) — wrap-point values.
        5 => {
            if out.len() >= 4 {
                let seq = *rng.pick(&SEQ_EXTREMES);
                out[2..4].copy_from_slice(&seq.to_be_bytes());
            }
        }
        // Extreme timestamp (RTP offset 4) — wrap-point values.
        6 => {
            if out.len() >= 8 {
                let ts = *rng.pick(&TS_EXTREMES);
                out[4..8].copy_from_slice(&ts.to_be_bytes());
            }
        }
        // Hostile RTCP length field (offset 2, 16-bit word count).
        7 => {
            if out.len() >= 4 {
                let words: u16 = *rng.pick(&[0, 1, 6, 7, 0x7FFF, 0xFFFF]);
                out[2..4].copy_from_slice(&words.to_be_bytes());
            }
        }
        // Hostile RTCP report count (low 5 bits of byte 0).
        _ => {
            if !out.is_empty() {
                out[0] = (out[0] & 0xE0) | (rng.next_u64() & 0x1F) as u8;
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::corpus;

    #[test]
    fn sip_mutations_cover_every_class_without_panicking() {
        let seeds = corpus::sip_seeds();
        let mut rng = XorShift64::new(7);
        for i in 0..2_000 {
            let seed = &seeds[i % seeds.len()];
            let _ = mutate_sip(&mut rng, seed);
        }
    }

    #[test]
    fn wire_mutations_cover_every_class_without_panicking() {
        let mut seeds = corpus::rtp_seeds();
        seeds.extend(corpus::rtcp_seeds());
        let mut rng = XorShift64::new(9);
        for i in 0..2_000 {
            let seed = &seeds[i % seeds.len()];
            let _ = mutate_wire(&mut rng, seed);
        }
    }

    #[test]
    fn truncation_respects_char_boundaries() {
        let text = "INVITE sip:bob@b.example.com SIP/2.0\r\nX: déjà vu\r\n\r\n";
        let mut rng = XorShift64::new(3);
        for _ in 0..500 {
            let _ = mutate_sip(&mut rng, text);
        }
    }
}
