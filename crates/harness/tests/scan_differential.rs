//! SWAR-vs-scalar equivalence under the wire fuzzer.
//!
//! The proptests in `vids-scan` cover uniform random bytes; this target
//! feeds the scan primitives the same *structure-aware* mutated SIP text
//! and binary datagrams the parser fuzzer uses, so the inputs concentrate
//! on the byte patterns the hot path actually scans — CRLF runs, header
//! colons, folded whitespace, truncated words — where an alignment or
//! tail-handling bug in the 8-byte loop would bite. Budget follows
//! `VIDS_FUZZ_ITERS` like every other fuzz target.

use vids_harness::corpus;
use vids_harness::mutate::{mutate_sip, mutate_wire};
use vids_harness::rng::XorShift64;
use vids_scan::{
    eq_ignore_case, eq_ignore_case_scalar, find_byte, find_byte2, find_byte2_scalar,
    find_byte_scalar, find_seq, find_seq_scalar,
};

/// Asserts every finder agrees with its scalar twin on `bytes`, probing
/// with the delimiters the SIP/RTP scanners use plus a fuzzed needle.
fn assert_equivalent(bytes: &[u8], rng: &mut XorShift64) {
    for needle in [
        b'\r',
        b'\n',
        b':',
        b' ',
        b'\0',
        (rng.next_u64() & 0xFF) as u8,
    ] {
        assert_eq!(
            find_byte(bytes, needle),
            find_byte_scalar(bytes, needle),
            "find_byte({needle:#x}) diverged on {bytes:?}"
        );
    }
    assert_eq!(
        find_byte2(bytes, b'\r', b'\n'),
        find_byte2_scalar(bytes, b'\r', b'\n'),
        "find_byte2 diverged on {bytes:?}"
    );
    for seq in [&b"\r\n"[..], b"\r\n\r\n", b"SIP/2.0"] {
        assert_eq!(
            find_seq(bytes, seq),
            find_seq_scalar(bytes, seq),
            "find_seq({seq:?}) diverged on {bytes:?}"
        );
    }
    // Case-insensitive comparison of two fuzz-chosen windows of the same
    // buffer (header-name matching compares short overlapping slices).
    if !bytes.is_empty() {
        let a_start = rng.below(bytes.len());
        let b_start = rng.below(bytes.len());
        let len = rng.below(bytes.len() - a_start.max(b_start) + 1);
        let a = &bytes[a_start..a_start + len];
        let b = &bytes[b_start..b_start + len];
        assert_eq!(
            eq_ignore_case(a, b),
            eq_ignore_case_scalar(a, b),
            "eq_ignore_case diverged on {a:?} vs {b:?}"
        );
    }
}

#[test]
fn swar_finders_agree_with_scalar_twins_on_fuzzed_wire() {
    let iters = vids_harness::fuzz_iterations();
    let sip_seeds = corpus::sip_seeds();
    let mut wire_seeds = corpus::rtp_seeds();
    wire_seeds.extend(corpus::rtcp_seeds());
    let mut rng = XorShift64::new(0x5CA2_D1FF);

    for i in 0..iters {
        if i % 2 == 0 {
            let seed = rng.pick(&sip_seeds).clone();
            let mutated = mutate_sip(&mut rng, &seed);
            assert_equivalent(mutated.as_bytes(), &mut rng);
        } else {
            let seed = rng.pick(&wire_seeds).clone();
            let mutated = mutate_wire(&mut rng, &seed);
            assert_equivalent(&mutated, &mut rng);
        }
    }
}
