//! Exhaustive interleaving check of the PR-4 mailbox protocol.
//!
//! The model in `vids_harness::model` drives the *real* decision functions
//! (`vids_core::pool::mailbox::{worker_observe, worker_publish}`) through
//! every reachable interleaving of a shrunken world — up to 3 workers, up
//! to 2 batch phases, with and without a panicking job — and asserts the
//! safety properties the lock-free pool depends on:
//!
//! * no lost wakeup (every explored schedule terminates — deadlock-free);
//! * no double buffer ownership (coordinator and worker never touch one
//!   cell's job/result buffers concurrently);
//! * shutdown always joins every worker, even over a poisoned cell.
//!
//! The negative tests flip one protocol knob at a time and assert the
//! checker *catches* the injected bug — otherwise a green sweep would
//! prove nothing about the checker's discriminating power.

use vids_harness::model::{explore, Bugs, Config, ViolationKind};

#[test]
fn correct_protocol_is_exhaustively_safe() {
    let mut worlds = 0usize;
    let mut total_states = 0usize;
    for workers in 1..=3usize {
        for jobs in 0..=workers {
            for phases in 1..=2usize {
                let config = Config::correct(workers, jobs, phases);
                let stats = explore(config).unwrap_or_else(|v| {
                    panic!(
                        "violation in correct protocol ({workers}w/{jobs}j/{phases}p): \
                         {:?}\ntrace:\n  {}",
                        v.kind,
                        v.trace.join("\n  ")
                    )
                });
                worlds += 1;
                total_states += stats.states;
                eprintln!(
                    "{workers}w/{jobs}j/{phases}p: {} states, {} transitions",
                    stats.states, stats.transitions
                );
            }
        }
    }
    eprintln!("checked {worlds} worlds, {total_states} distinct states total");
    assert!(worlds >= 18, "sweep shrank: only {worlds} worlds checked");
}

#[test]
fn panicking_job_still_terminates_and_joins() {
    for workers in 1..=2usize {
        for panic_job in 0..workers {
            let config = Config {
                panic_job: Some(panic_job),
                ..Config::correct(workers, workers, 1)
            };
            let stats = explore(config).unwrap_or_else(|v| {
                panic!(
                    "violation with panicking job {panic_job} of {workers}: {:?}\ntrace:\n  {}",
                    v.kind,
                    v.trace.join("\n  ")
                )
            });
            eprintln!(
                "{workers}w panic@{panic_job}: {} states explored over the POISONED path",
                stats.states
            );
        }
    }
}

/// Flip one protocol knob; the checker must report the matching violation.
fn expect_violation(bugs: Bugs, workers: usize, jobs: usize) -> ViolationKind {
    let config = Config {
        bugs,
        ..Config::correct(workers, jobs, 1)
    };
    match explore(config) {
        Ok(stats) => panic!(
            "checker missed injected bug {bugs:?}: {} states, all green",
            stats.states
        ),
        Err(v) => {
            eprintln!(
                "caught {bugs:?} after {} steps: {:?}",
                v.trace.len(),
                v.kind
            );
            v.kind
        }
    }
}

#[test]
fn checker_catches_a_dropped_park_token() {
    // Without the banked token, an unpark racing ahead of the park is
    // lost and someone sleeps forever.
    let kind = expect_violation(
        Bugs {
            drop_park_token: true,
            ..Bugs::default()
        },
        1,
        1,
    );
    assert!(matches!(kind, ViolationKind::Deadlock { .. }));
}

#[test]
fn checker_catches_publish_before_write() {
    // Publishing HAS_WORK before writing the job hands the worker a cell
    // the coordinator is still writing into.
    let kind = expect_violation(
        Bugs {
            publish_before_write: true,
            ..Bugs::default()
        },
        1,
        1,
    );
    assert!(matches!(kind, ViolationKind::DoubleOwnership { .. }));
}

#[test]
fn checker_catches_arming_pending_late() {
    // An instantly-finishing worker decrements `pending` before the
    // coordinator has armed it.
    let kind = expect_violation(
        Bugs {
            arm_after_publish: true,
            ..Bugs::default()
        },
        2,
        2,
    );
    assert!(matches!(kind, ViolationKind::PendingUnderflow));
}

#[test]
fn checker_catches_shutdown_without_unpark() {
    // Storing SHUTDOWN without unparking leaves a parked worker asleep;
    // join never returns.
    let kind = expect_violation(
        Bugs {
            skip_shutdown_unpark: true,
            ..Bugs::default()
        },
        1,
        0,
    );
    assert!(matches!(kind, ViolationKind::Deadlock { .. }));
}
