//! One pinned test per bug this harness exists to catch (ISSUE 5).
//!
//! Each test fails when its fix is reverted and passes with it applied —
//! they are the executable record of the three satellite bugs, phrased at
//! the harness level (against the public crate APIs the detectors use)
//! rather than as module unit tests, so a refactor of the internals
//! cannot silently retire them.

use vids_rtp::jitter::JitterEstimator;
use vids_rtp::seq::{seq_distance, ExtendedSeq};
use vids_sip::parse::parse_message;

/// Satellite (a): a late packet that *straddles* the wrap — raw value
/// above the high-water mark but older in serial order — must extend into
/// the previous cycle, not the current one.
///
/// Pre-fix, `seq = 65534` arriving after the stream wrapped to `last = 2`
/// extended as `(1 << 16) | 65534` — *ahead* of the stream's highest —
/// so the media-spamming detector saw a phantom ~64k-packet forward leap.
#[test]
fn late_packet_straddling_a_wrap_extends_into_the_previous_cycle() {
    let mut ext = ExtendedSeq::new();
    let mut highest = 0;
    for seq in [65533u16, 65534, 65535, 0, 1, 2] {
        highest = highest.max(ext.update(seq));
    }
    assert_eq!(highest, (1 << 16) | 2, "stream should be one cycle in");

    // The straggler from before the wrap: sent in cycle 0, arriving late.
    let late = ext.update(65534);
    assert_eq!(late, 65534, "straddling late packet belongs to cycle 0");
    assert!(
        late < highest,
        "a late packet must never extend past the high-water mark"
    );
    // And the serial-order distance the detectors reason with stays small.
    assert_eq!(seq_distance(2, 65534), 4);
    // The tracker itself was not disturbed: the next in-order packet
    // continues cycle 1.
    assert_eq!(ext.update(3), (1 << 16) | 3);
}

/// Satellite (b): the jitter estimator's timestamp delta is *signed*.
///
/// Pre-fix, a single reordered pair produced an unsigned `ts_delta` of
/// ~2³² ticks — the filter absorbed minutes of phantom jitter and the
/// QoS-degradation detector fired on a healthy stream. This drives the
/// same swap directly across the 32-bit timestamp wrap, where the signed
/// interpretation matters most.
#[test]
fn one_reordered_packet_across_the_timestamp_wrap_stays_small() {
    let clock = 8_000u32; // narrowband audio, 160 ticks per 20 ms frame
    let start = u32::MAX - 160 * 5; // the stream wraps mid-test
    let mut j = JitterEstimator::new(clock);
    for i in 0..12u32 {
        // Swap packets 4 and 5: the pair lands right at the wrap.
        let logical = match i {
            4 => 5,
            5 => 4,
            _ => i,
        };
        j.on_packet(
            i as f64 * 0.020,
            start.wrapping_add(logical.wrapping_mul(160)),
        );
    }
    // A swap is two one-frame deviations through the 1/16 filter — a few
    // milliseconds at most. The unsigned bug yields ~2³²/8000 ≈ 149 hours.
    assert!(
        j.jitter_secs() < 0.020,
        "jitter = {}s: reorder across the wrap blew up the estimate",
        j.jitter_secs()
    );
}

/// Satellite (c): a `Content-Length` larger than the available body is a
/// parse error with a static reason — not a silent truncation to what
/// arrived, and (worse) not a panic.
///
/// Pre-fix, `parse_message` sliced `body[..len]` unchecked: a hostile
/// length either panicked the UA simulator or manufactured a body the
/// peer never sent.
#[test]
fn content_length_beyond_available_body_is_rejected() {
    let text = "BYE sip:bob@b.example.com SIP/2.0\r\n\
                Via: SIP/2.0/UDP a.example.com;branch=z9hG4bK77\r\n\
                From: <sip:alice@a.example.com>;tag=oa\r\n\
                To: <sip:bob@b.example.com>;tag=ob\r\n\
                Call-ID: reg-cl@a.example.com\r\n\
                CSeq: 2 BYE\r\n\
                Content-Length: 400\r\n\
                \r\n\
                short";
    let err = parse_message(text).expect_err("oversized Content-Length must reject");
    assert!(
        err.to_string()
            .contains("Content-Length exceeds available body"),
        "wrong reason: {err}"
    );

    // The exact advertised length still parses, and the body is intact.
    let ok = text.replace("Content-Length: 400", "Content-Length: 5");
    let msg = parse_message(&ok).expect("exact Content-Length parses");
    assert_eq!(msg.body(), "short");
}

// ---- ISSUE 7: SWAR scan tail/alignment edge cases ------------------------
//
// The scan primitives never take an unsafe 8-byte tail load — the word
// loop runs on `chunks_exact(8)` and the remainder is scanned byte-wise,
// so an out-of-bounds read is impossible by construction (this is the
// Miri satellite resolved by design). These pins are the cases where a
// "round up and mask" tail-load implementation, or the classic inexact
// zero-lane trick, silently goes wrong: if anyone rewrites the loop that
// way, these fail before the fuzzer has to find it.

/// The classic `(x - LO) & HI` has-zero approximation false-positives on
/// a lane that differs from the needle only in the high bit (0x80 vs
/// 0x00, 0xFF vs 0x7F). The exact form `(x - LO) & !x & HI` must not.
#[test]
fn swar_finder_rejects_high_bit_neighbors_of_the_needle() {
    for len in 1..=17usize {
        assert_eq!(vids_scan::find_byte(&vec![0x80u8; len], 0x00), None);
        assert_eq!(vids_scan::find_byte(&vec![0xFFu8; len], 0x7F), None);
        assert_eq!(vids_scan::find_byte2(&vec![0x80u8; len], 0x00, 0x01), None);
    }
}

/// A needle in the byte-wise remainder after the last full 8-byte word:
/// every tail length 1..=7, with the match in the very last byte — the
/// position an over-reading tail load is most tempted to mishandle.
#[test]
fn swar_finder_hits_in_every_remainder_tail_position() {
    for tail in 1..=7usize {
        let len = 8 + tail;
        let mut hay = vec![b'x'; len];
        hay[len - 1] = b'\n';
        assert_eq!(
            vids_scan::find_byte(&hay, b'\n'),
            Some(len - 1),
            "tail {tail}"
        );
        assert_eq!(vids_scan::find_byte2(&hay, b'\r', b'\n'), Some(len - 1));
    }
}

/// A sequence candidate whose continuation would run past the end of the
/// buffer must be rejected without reading past it: the head/body split
/// sees exactly this on a truncated datagram ending in a partial CRLFCRLF.
#[test]
fn swar_seq_scan_rejects_partial_match_at_buffer_end() {
    assert_eq!(
        vids_scan::find_seq(b"INVITE sip:x\r\n\r", b"\r\n\r\n"),
        None
    );
    assert_eq!(vids_scan::find_seq(b"\r\n\r", b"\r\n\r\n"), None);
    assert_eq!(vids_scan::find_seq(b"\r\n\r\r\n\r\n", b"\r\n\r\n"), Some(3));
}

/// Word-at-a-time case folding must fold letters only: `x | 0x20` would
/// also equate `@` with backtick and `[` with `{`, and SIP header names
/// are matched case-insensitively on exactly this path.
#[test]
fn swar_case_fold_folds_letters_only() {
    assert!(vids_scan::eq_ignore_case(b"Call-ID", b"CALL-id"));
    assert!(!vids_scan::eq_ignore_case(b"@", b"`"));
    assert!(!vids_scan::eq_ignore_case(b"[", b"{"));
    assert!(!vids_scan::eq_ignore_case(b"Call\x1dID", b"Call=ID"));
}
