//! One pinned test per bug this harness exists to catch (ISSUE 5).
//!
//! Each test fails when its fix is reverted and passes with it applied —
//! they are the executable record of the three satellite bugs, phrased at
//! the harness level (against the public crate APIs the detectors use)
//! rather than as module unit tests, so a refactor of the internals
//! cannot silently retire them.

use vids_rtp::jitter::JitterEstimator;
use vids_rtp::seq::{seq_distance, ExtendedSeq};
use vids_sip::parse::parse_message;

/// Satellite (a): a late packet that *straddles* the wrap — raw value
/// above the high-water mark but older in serial order — must extend into
/// the previous cycle, not the current one.
///
/// Pre-fix, `seq = 65534` arriving after the stream wrapped to `last = 2`
/// extended as `(1 << 16) | 65534` — *ahead* of the stream's highest —
/// so the media-spamming detector saw a phantom ~64k-packet forward leap.
#[test]
fn late_packet_straddling_a_wrap_extends_into_the_previous_cycle() {
    let mut ext = ExtendedSeq::new();
    let mut highest = 0;
    for seq in [65533u16, 65534, 65535, 0, 1, 2] {
        highest = highest.max(ext.update(seq));
    }
    assert_eq!(highest, (1 << 16) | 2, "stream should be one cycle in");

    // The straggler from before the wrap: sent in cycle 0, arriving late.
    let late = ext.update(65534);
    assert_eq!(late, 65534, "straddling late packet belongs to cycle 0");
    assert!(
        late < highest,
        "a late packet must never extend past the high-water mark"
    );
    // And the serial-order distance the detectors reason with stays small.
    assert_eq!(seq_distance(2, 65534), 4);
    // The tracker itself was not disturbed: the next in-order packet
    // continues cycle 1.
    assert_eq!(ext.update(3), (1 << 16) | 3);
}

/// Satellite (b): the jitter estimator's timestamp delta is *signed*.
///
/// Pre-fix, a single reordered pair produced an unsigned `ts_delta` of
/// ~2³² ticks — the filter absorbed minutes of phantom jitter and the
/// QoS-degradation detector fired on a healthy stream. This drives the
/// same swap directly across the 32-bit timestamp wrap, where the signed
/// interpretation matters most.
#[test]
fn one_reordered_packet_across_the_timestamp_wrap_stays_small() {
    let clock = 8_000u32; // narrowband audio, 160 ticks per 20 ms frame
    let start = u32::MAX - 160 * 5; // the stream wraps mid-test
    let mut j = JitterEstimator::new(clock);
    for i in 0..12u32 {
        // Swap packets 4 and 5: the pair lands right at the wrap.
        let logical = match i {
            4 => 5,
            5 => 4,
            _ => i,
        };
        j.on_packet(
            i as f64 * 0.020,
            start.wrapping_add(logical.wrapping_mul(160)),
        );
    }
    // A swap is two one-frame deviations through the 1/16 filter — a few
    // milliseconds at most. The unsigned bug yields ~2³²/8000 ≈ 149 hours.
    assert!(
        j.jitter_secs() < 0.020,
        "jitter = {}s: reorder across the wrap blew up the estimate",
        j.jitter_secs()
    );
}

/// Satellite (c): a `Content-Length` larger than the available body is a
/// parse error with a static reason — not a silent truncation to what
/// arrived, and (worse) not a panic.
///
/// Pre-fix, `parse_message` sliced `body[..len]` unchecked: a hostile
/// length either panicked the UA simulator or manufactured a body the
/// peer never sent.
#[test]
fn content_length_beyond_available_body_is_rejected() {
    let text = "BYE sip:bob@b.example.com SIP/2.0\r\n\
                Via: SIP/2.0/UDP a.example.com;branch=z9hG4bK77\r\n\
                From: <sip:alice@a.example.com>;tag=oa\r\n\
                To: <sip:bob@b.example.com>;tag=ob\r\n\
                Call-ID: reg-cl@a.example.com\r\n\
                CSeq: 2 BYE\r\n\
                Content-Length: 400\r\n\
                \r\n\
                short";
    let err = parse_message(text).expect_err("oversized Content-Length must reject");
    assert!(
        err.to_string()
            .contains("Content-Length exceeds available body"),
        "wrong reason: {err}"
    );

    // The exact advertised length still parses, and the body is intact.
    let ok = text.replace("Content-Length: 400", "Content-Length: 5");
    let msg = parse_message(&ok).expect("exact Content-Length parses");
    assert_eq!(msg.body(), "short");
}
