//! Differential oracles: independent implementations of the same meaning
//! must agree, byte for byte, under fuzzed input.
//!
//! * **parse → Display → parse**: any SIP text the owned parser accepts
//!   must survive a serialization round trip losslessly, and the second
//!   serialization must be stable.
//! * **view vs owned**: when both SIP parsers accept a fuzzed message,
//!   every monitored field must agree (the classifier trusts the view to
//!   mean what the UA simulator's owned parse means).
//! * **plain `Vids` vs `VidsPool` at 1/4/8 shards**: the same fuzzed
//!   packet stream (well-formed calls + mutated SIP + mutated RTP wire,
//!   ≥ the fuzz budget in packets) must yield byte-identical alert logs
//!   and counters whatever the shard count or batch boundaries.
//! * **telemetry on vs off**: recording must never change detection —
//!   alerts are compared with their telemetry-populated `trace` field
//!   cleared, since attaching transition traces to alerts is telemetry's
//!   one documented, deliberate output difference.

use vids_core::{CollectSink, Config, CostModel, Vids, VidsPool};
use vids_harness::corpus;
use vids_harness::mutate::{mutate_sip, mutate_wire};
use vids_harness::rng::XorShift64;
use vids_netsim::packet::{Address, Packet, Payload};
use vids_netsim::time::SimTime;
use vids_sip::parse::parse_message;
use vids_sip::view::parse_view;

#[test]
fn accepted_fuzz_cases_round_trip_through_display() {
    let seeds = corpus::sip_seeds();
    let mut rng = XorShift64::new(0xD1FF_0001);
    let iters = vids_harness::fuzz_iterations();
    let mut accepted = 0u64;
    for i in 0..iters {
        let mut text = rng.pick(&seeds).clone();
        for _ in 0..=rng.below(3) {
            text = mutate_sip(&mut rng, &text);
        }
        let Ok(first) = parse_message(&text) else {
            continue;
        };
        accepted += 1;
        let rendered = first.to_string();
        let second = parse_message(&rendered).unwrap_or_else(|e| {
            panic!(
                "case {i}: accepted message failed to re-parse its own Display ({e}): {rendered:?}"
            )
        });
        assert_eq!(
            first, second,
            "case {i}: parse -> Display -> parse was lossy for {text:?}"
        );
        assert_eq!(
            rendered,
            second.to_string(),
            "case {i}: Display is not stable for {text:?}"
        );
    }
    eprintln!("round-trip: {accepted}/{iters} cases accepted");
    assert!(accepted > 0, "mutator degenerated: nothing accepted");
}

#[test]
fn view_and_owned_parser_agree_on_monitored_fields() {
    let seeds = corpus::sip_seeds();
    let mut rng = XorShift64::new(0xD1FF_0002);
    let iters = vids_harness::fuzz_iterations();
    let mut both = 0u64;
    for i in 0..iters {
        let mut text = rng.pick(&seeds).clone();
        for _ in 0..=rng.below(3) {
            text = mutate_sip(&mut rng, &text);
        }
        let (Ok(owned), Ok(view)) = (parse_message(&text), parse_view(&text)) else {
            continue;
        };
        both += 1;
        let headers = owned.headers();
        assert_eq!(view.call_id, owned.call_id(), "case {i}: {text:?}");
        assert_eq!(view.is_request(), owned.is_request(), "case {i}: {text:?}");
        assert_eq!(view.method(), owned.method(), "case {i}: {text:?}");
        assert_eq!(view.status(), owned.status(), "case {i}: {text:?}");
        assert_eq!(
            view.from.and_then(|f| f.tag),
            headers.from_header().and_then(|f| f.tag()),
            "case {i}: {text:?}"
        );
        assert_eq!(
            view.to.and_then(|t| t.tag),
            headers.to_header().and_then(|t| t.tag()),
            "case {i}: {text:?}"
        );
        assert_eq!(
            view.cseq,
            headers.cseq().map(|c| (c.seq, c.method)),
            "case {i}: {text:?}"
        );
        assert_eq!(view.body, owned.body(), "case {i}: {text:?}");
    }
    eprintln!("view-vs-owned: {both}/{iters} cases accepted by both");
    assert!(both > 0, "mutator degenerated: nothing accepted by both");
}

const CALLEE: Address = Address::new(10, 2, 0, 10, 5060);

/// A fuzzed traffic trace: clean established calls interleaved with mutated
/// SIP texts and mutated RTP datagrams, at least `min_packets` long, with
/// non-decreasing timestamps and unique packet ids.
fn fuzzed_trace(seed: u64, min_packets: usize) -> Vec<(Packet, SimTime)> {
    let mut rng = XorShift64::new(seed);
    let sip_seeds = corpus::sip_seeds();
    let mut wire_seeds = corpus::rtp_seeds();
    wire_seeds.extend(corpus::rtcp_seeds());
    let mut trace = Vec::with_capacity(min_packets);
    let mut at_ms = 0u64;
    while trace.len() < min_packets {
        at_ms += rng.below(3) as u64;
        let at = SimTime::from_millis(at_ms);
        let src = Address::new(10, 1, (rng.below(3) + 1) as u8, rng.below(5) as u8, 5060);
        let payload = match rng.below(4) {
            // An untouched well-formed seed keeps machines moving.
            0 => Payload::Sip(rng.pick(&sip_seeds).clone()),
            // Mutated SIP: the monitor must classify or reject, never skew.
            1 => {
                let mut text = rng.pick(&sip_seeds).clone();
                for _ in 0..=rng.below(3) {
                    text = mutate_sip(&mut rng, &text);
                }
                Payload::Sip(text)
            }
            // Mutated RTP/RTCP wire, from media-looking ports.
            _ => {
                let mut bytes = rng.pick(&wire_seeds).clone();
                for _ in 0..=rng.below(3) {
                    bytes = mutate_wire(&mut rng, &bytes);
                }
                Payload::Rtp(bytes)
            }
        };
        let (src, dst) = if matches!(payload, Payload::Rtp(_)) {
            (src.with_port(20_000), CALLEE.with_port(30_000))
        } else {
            (src, CALLEE)
        };
        trace.push((
            Packet {
                src,
                dst,
                payload,
                id: trace.len() as u64,
                sent_at: at,
            },
            at,
        ));
    }
    trace
}

#[test]
fn pool_matches_plain_engine_on_fuzzed_traffic_at_every_shard_count() {
    let iters = vids_harness::fuzz_iterations() as usize;
    let trace = fuzzed_trace(0xD1FF_0003, iters.max(10_000));

    // Reference: the plain single-engine monitor, packet at a time.
    let mut plain = Vids::with_cost(Config::default(), CostModel::free());
    let mut plain_sink = CollectSink::new();
    for (packet, at) in &trace {
        plain.process(packet, *at, &mut plain_sink);
    }
    for flush in [30u64, 40] {
        plain.tick(SimTime::from_secs(flush), &mut plain_sink);
    }

    for shards in [1usize, 4, 8] {
        let mut rng = XorShift64::new(0x000B_A7C4 ^ shards as u64);
        let config = Config::builder().shards(shards).build().unwrap();
        let mut pool = VidsPool::with_cost(config, CostModel::free());
        let mut pool_sink = CollectSink::new();
        let mut i = 0;
        while i < trace.len() {
            let size = 1 + rng.below(32);
            let end = (i + size).min(trace.len());
            let now = trace[i].1;
            let packets: Vec<Packet> = trace[i..end].iter().map(|(p, _)| p.clone()).collect();
            pool.process_batch(&packets, now, &mut pool_sink);
            i = end;
        }
        for flush in [30u64, 40] {
            pool.tick(SimTime::from_secs(flush), &mut pool_sink);
        }
        assert_eq!(
            plain_sink.alerts(),
            pool_sink.alerts(),
            "{shards}-shard pool diverged from the plain engine on fuzzed traffic"
        );
        assert_eq!(plain.alerts(), pool.alerts(), "{shards} shards");
        assert_eq!(plain.counters(), pool.counters(), "{shards} shards");
        assert_eq!(
            plain.monitored_calls(),
            pool.monitored_calls(),
            "{shards} shards"
        );
    }
    eprintln!(
        "pool differential: {} fuzzed packets, {} alerts",
        trace.len(),
        plain.alerts().len()
    );
}

#[test]
fn telemetry_recording_never_changes_detection() {
    let iters = (vids_harness::fuzz_iterations() as usize).max(10_000);
    let trace = fuzzed_trace(0xD1FF_0004, iters);

    let run = |telemetry: bool| {
        let mut vids = Vids::with_cost(Config::default(), CostModel::free());
        if telemetry {
            let _registry = vids.enable_telemetry(64);
        }
        let mut sink = CollectSink::new();
        for (packet, at) in &trace {
            vids.process(packet, *at, &mut sink);
        }
        for flush in [30u64, 40] {
            vids.tick(SimTime::from_secs(flush), &mut sink);
        }
        // Telemetry's one deliberate output difference is attaching
        // transition traces to alerts; blank it before comparing.
        let alerts: Vec<_> = sink
            .alerts()
            .iter()
            .map(|a| {
                let mut a = a.clone();
                a.trace = Vec::new();
                a
            })
            .collect();
        (alerts, vids.counters(), vids.monitored_calls())
    };

    let (alerts_off, counters_off, calls_off) = run(false);
    let (alerts_on, counters_on, calls_on) = run(true);
    assert_eq!(
        alerts_off, alerts_on,
        "telemetry recording changed the alert log"
    );
    assert_eq!(
        counters_off, counters_on,
        "telemetry recording changed the counters"
    );
    assert_eq!(calls_off, calls_on);
    assert!(
        !alerts_off.is_empty(),
        "fuzzed trace produced no alerts; the oracle is vacuous"
    );
}
