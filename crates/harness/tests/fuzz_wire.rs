//! Structure-aware wire fuzzing: the parsers never panic, and every reject
//! is allocation-free.
//!
//! The classifier's front line is `vids_sip::view::parse_view` plus the
//! RTP/RTCP binary parsers — these run on every hostile datagram an
//! attacker sends, so a panic is a remote crash and an allocating reject is
//! a flood amplifier. Both properties are asserted here under a seeded
//! mutation fuzzer (`VIDS_FUZZ_ITERS` overrides the 10k default budget).
//! The owned `parse_message` allocates by design (it builds an owned
//! message for the UA simulators), so it gets the no-panic assertion only.
//!
//! Everything lives in one `#[test]` because the allocation counter is
//! global: parallel tests would interleave counts.

use std::alloc::{GlobalAlloc, Layout, System};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

use vids_harness::mutate::{mutate_sip, mutate_wire};
use vids_harness::rng::XorShift64;
use vids_harness::{corpus, record_bridge};
use vids_rtp::packet::{RtpHeader, RtpPacket};
use vids_rtp::rtcp_wire::RtcpPacket;
use vids_sip::parse::parse_message;
use vids_sip::view::parse_view;

struct CountingAlloc;

static ALLOCS: AtomicU64 = AtomicU64::new(0);
static ARMED: AtomicBool = AtomicBool::new(false);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        if ARMED.load(Ordering::Relaxed) {
            ALLOCS.fetch_add(1, Ordering::Relaxed);
        }
        System.alloc(layout)
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        if ARMED.load(Ordering::Relaxed) {
            ALLOCS.fetch_add(1, Ordering::Relaxed);
        }
        System.alloc_zeroed(layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        if ARMED.load(Ordering::Relaxed) {
            ALLOCS.fetch_add(1, Ordering::Relaxed);
        }
        System.realloc(ptr, layout, new_size)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
}

#[global_allocator]
static ALLOCATOR: CountingAlloc = CountingAlloc;

/// Runs `f` with the counter armed; returns (result, allocations made).
fn count_allocs<R>(f: impl FnOnce() -> R) -> (R, u64) {
    let start = ALLOCS.load(Ordering::SeqCst);
    ARMED.store(true, Ordering::SeqCst);
    let r = f();
    ARMED.store(false, Ordering::SeqCst);
    (r, ALLOCS.load(Ordering::SeqCst) - start)
}

/// Stacks 1–3 SIP mutations on a random seed message.
fn fuzz_case_sip(rng: &mut XorShift64, seeds: &[String]) -> String {
    let mut text = rng.pick(seeds).clone();
    for _ in 0..=rng.below(3) {
        text = mutate_sip(rng, &text);
    }
    text
}

/// Stacks 1–3 wire mutations on a random seed datagram.
fn fuzz_case_wire(rng: &mut XorShift64, seeds: &[Vec<u8>]) -> Vec<u8> {
    let mut bytes = rng.pick(seeds).clone();
    for _ in 0..=rng.below(3) {
        bytes = mutate_wire(rng, &bytes);
    }
    bytes
}

#[test]
fn fuzzed_wire_never_panics_and_rejects_are_alloc_free() {
    let iters = vids_harness::fuzz_iterations();

    // ---- SIP text ------------------------------------------------------
    // Builder seeds plus every SIP payload recorded in the committed
    // `.vdump` corpus: dumps are real wire bytes that drove the engine to
    // an alert, so mutating them explores the paths the recorder proved
    // reachable — not just what the message builders emit.
    let mut seeds = corpus::sip_seeds();
    let dump_seeds = record_bridge::corpus_sip_seeds();
    assert!(
        !dump_seeds.is_empty(),
        "committed corpus dumps contributed no SIP seeds — \
         is crates/harness/corpus/ missing or unreadable?"
    );
    seeds.extend(dump_seeds);
    let mut rng = XorShift64::new(0x051B_F022);
    let mut accepted = 0u64;
    for i in 0..iters {
        let text = fuzz_case_sip(&mut rng, &seeds);
        // The zero-copy view parser: no panic, and *zero* allocations on
        // either verdict (it borrows everything from the input).
        let outcome = catch_unwind(AssertUnwindSafe(|| {
            count_allocs(|| parse_view(&text).is_ok())
        }));
        match outcome {
            Ok((ok, allocs)) => {
                accepted += u64::from(ok);
                assert_eq!(
                    allocs, 0,
                    "parse_view allocated {allocs}x on case {i}: {text:?}"
                );
            }
            Err(_) => panic!("parse_view panicked on case {i}: {text:?}"),
        }
        // The owned parser: must never panic on arbitrary input.
        if catch_unwind(AssertUnwindSafe(|| {
            let _ = parse_message(&text);
        }))
        .is_err()
        {
            panic!("parse_message panicked on case {i}: {text:?}");
        }
    }
    eprintln!("sip fuzz: {iters} cases, {accepted} still accepted");
    assert!(
        accepted > 0,
        "mutator degenerated: nothing parseable in {iters} cases"
    );
    assert!(
        accepted < iters,
        "mutator degenerated: nothing rejected in {iters} cases"
    );

    // ---- RTP wire ------------------------------------------------------
    // Dump-recorded RTP windows ride along the builder seeds the same way
    // (today's committed dumps are signaling-only, so this may add none).
    let mut seeds = corpus::rtp_seeds();
    seeds.extend(record_bridge::corpus_rtp_seeds());
    let mut rng = XorShift64::new(0x0052_D15C);
    let mut accepted = 0u64;
    for i in 0..iters {
        let bytes = fuzz_case_wire(&mut rng, &seeds);
        let outcome = catch_unwind(AssertUnwindSafe(|| {
            let (header, h_allocs) = count_allocs(|| RtpHeader::parse(&bytes));
            let packet = RtpPacket::parse(&bytes);
            (header, h_allocs, packet)
        }));
        let (header, h_allocs, packet) = match outcome {
            Ok(v) => v,
            Err(_) => panic!("RTP parse panicked on case {i}: {bytes:02x?}"),
        };
        // The header view parses without allocating, accept or reject.
        assert_eq!(
            h_allocs, 0,
            "RtpHeader::parse allocated {h_allocs}x on case {i}: {bytes:02x?}"
        );
        // Differential: the classifier's header view and the full packet
        // parser must agree on verdict and on every monitored field.
        match (&header, &packet) {
            (Ok(h), Ok(p)) => {
                accepted += 1;
                assert_eq!(h.sequence_number, p.sequence_number);
                assert_eq!(h.timestamp, p.timestamp);
                assert_eq!(h.ssrc, p.ssrc);
                assert_eq!(h.payload_type, p.payload_type);
                assert_eq!(h.marker, p.marker);
                assert_eq!(h.padding, p.padding);
            }
            (Err(he), Err(pe)) => assert_eq!(he, pe, "divergent reject on case {i}"),
            _ => panic!(
                "RtpHeader and RtpPacket disagree on case {i}: {header:?} vs {packet:?} for {bytes:02x?}"
            ),
        }
        // A rejected datagram costs nothing on the full parser either.
        if packet.is_err() {
            let (_, allocs) = count_allocs(|| RtpPacket::parse(&bytes).is_err());
            assert_eq!(
                allocs, 0,
                "RtpPacket::parse reject allocated {allocs}x on case {i}: {bytes:02x?}"
            );
        }
    }
    eprintln!("rtp fuzz: {iters} cases, {accepted} still accepted");
    assert!(accepted > 0 && accepted < iters, "rtp mutator degenerated");

    // ---- RTCP wire -----------------------------------------------------
    let seeds = corpus::rtcp_seeds();
    let mut rng = XorShift64::new(0x0052_C7CF);
    let mut accepted = 0u64;
    for i in 0..iters {
        let bytes = fuzz_case_wire(&mut rng, &seeds);
        let outcome = catch_unwind(AssertUnwindSafe(|| RtcpPacket::parse(&bytes)));
        let parsed = match outcome {
            Ok(v) => v,
            Err(_) => panic!("RTCP parse panicked on case {i}: {bytes:02x?}"),
        };
        match parsed {
            Ok(_) => accepted += 1,
            Err(_) => {
                let (_, allocs) = count_allocs(|| RtcpPacket::parse(&bytes).is_err());
                assert_eq!(
                    allocs, 0,
                    "RtcpPacket::parse reject allocated {allocs}x on case {i}: {bytes:02x?}"
                );
            }
        }
    }
    eprintln!("rtcp fuzz: {iters} cases, {accepted} still accepted");
    assert!(accepted > 0 && accepted < iters, "rtcp mutator degenerated");
}
