//! Standing gates for the flight recorder (DESIGN.md §7h).
//!
//! 1. **Record-on vs record-off differential**: the ring tap must be a
//!    pure observer — running the identical capture through `vids
//!    replay` with and without the recorder attached must produce
//!    byte-identical alerts and counters.
//! 2. **Committed minimized regression**: `corpus/invite-flood.min.vdump`
//!    is a real forensic dump of an INVITE flood, shrunk by the greedy
//!    drop-one-packet minimizer. It must still replay byte-identically
//!    on every build, stay within the minimizer's size bound, and feed
//!    the SIP fuzzer at least one seed. Regenerate it from a fresh
//!    ≥100-packet flood with `VIDS_REGEN_CORPUS=1 cargo test -p
//!    vids-harness --test record_gate`.

use std::net::SocketAddrV4;

use vids_core::alert::{labels, Alert};
use vids_core::config::Config;
use vids_core::cost::CostModel;
use vids_core::engine::VidsCounters;
use vids_core::pool::VidsPool;
use vids_core::sink::CollectSink;
use vids_harness::record_bridge::{corpus_dir, load_dumps, sip_seeds_from_dump};
use vids_ingest::pcap::PcapWriter;
use vids_ingest::record_tap::RecordTap;
use vids_ingest::replay::replay_pcap;
use vids_netsim::time::SimTime;
use vids_record::{minimize, replay_vdump, Recorder, Vdump};
use vids_rtp::packet::RtpPacket;
use vids_sip::{Request, SipUri};

const FLOOD: usize = 120;

/// ≥100-packet INVITE flood (distinct Call-IDs, one source, 5 ms apart,
/// all inside the 1 s flood window) plus a little unassociated RTP noise
/// so the capture exercises more than one demux class.
fn flood_capture() -> Vec<u8> {
    let mut w = PcapWriter::new();
    let src: SocketAddrV4 = "10.1.0.10:5060".parse().unwrap();
    let dst: SocketAddrV4 = "10.2.0.10:5060".parse().unwrap();
    let media_src: SocketAddrV4 = "10.1.0.20:20000".parse().unwrap();
    let media_dst: SocketAddrV4 = "10.2.0.20:30000".parse().unwrap();
    let to = SipUri::new("bob", "b.example.com");
    for i in 0..FLOOD {
        let invite = Request::invite(
            &SipUri::new("mallory", "a.example.com"),
            &to,
            &format!("gate-flood-{i}"),
        );
        w.push_udp(
            SimTime::from_millis(10 + 5 * i as u64),
            src,
            dst,
            invite.to_string().as_bytes(),
        );
        if i % 40 == 0 {
            let rtp =
                RtpPacket::new(18, i as u16, i as u32 * 80, 0xFACE).with_payload(vec![0xAB; 10]);
            w.push_udp(
                SimTime::from_millis(12 + 5 * i as u64),
                media_src,
                media_dst,
                &rtp.to_bytes(),
            );
        }
    }
    w.into_bytes()
}

fn run(capture: &[u8], record: bool) -> (Vec<Alert>, VidsCounters) {
    let config = Config::default();
    let mut pool = VidsPool::with_cost(config, CostModel::free());
    let mut sink = CollectSink::new();
    let mut recorder = record.then(|| Recorder::with_defaults(1));
    let mut tap = recorder.as_mut().map(|r| RecordTap::new(r, None));
    replay_pcap(
        capture.to_vec(),
        &mut pool,
        config.batch_flush_packets,
        None,
        tap.as_mut(),
        &mut sink,
    )
    .unwrap();
    if let Some(t) = &tap {
        assert!(
            t.recorder.stats().rings.recorded > 0,
            "the tap must actually have observed the capture"
        );
    }
    (sink.into_alerts(), pool.counters())
}

#[test]
fn record_tap_never_changes_detection() {
    let capture = flood_capture();
    let (alerts_off, counters_off) = run(&capture, false);
    let (alerts_on, counters_on) = run(&capture, true);
    assert!(
        alerts_off.iter().any(|a| a.label == labels::INVITE_FLOOD),
        "the gate capture must raise the flood: {alerts_off:?}"
    );
    assert_eq!(alerts_off, alerts_on, "the ring tap changed the alerts");
    assert_eq!(
        counters_off, counters_on,
        "the ring tap changed the counters"
    );
    // Byte-identical includes the rendering.
    assert_eq!(format!("{alerts_off:?}"), format!("{alerts_on:?}"));
}

/// Regenerates `corpus/invite-flood.min.vdump`: record the flood through
/// the real ingest tap, take the first dump the alert produced, and
/// minimize it.
fn regenerate_corpus() {
    let dir = std::env::temp_dir().join("vids-record-gate-regen");
    std::fs::remove_dir_all(&dir).ok();
    let config = Config::default();
    let mut pool = VidsPool::with_cost(config, CostModel::free());
    let mut sink = CollectSink::new();
    let mut recorder = Recorder::with_defaults(1);
    let mut tap = RecordTap::new(&mut recorder, Some(&dir));
    replay_pcap(
        flood_capture(),
        &mut pool,
        config.batch_flush_packets,
        None,
        Some(&mut tap),
        &mut sink,
    )
    .unwrap();
    let written = tap.written.clone();
    assert!(!written.is_empty(), "the flood must produce a dump");
    // The RTP noise raises its own deviation dumps; pick the flood's.
    let dump = written
        .iter()
        .map(|p| Vdump::read_from(p).unwrap())
        .find(|d| d.alert.label == labels::INVITE_FLOOD)
        .expect("no invite-flood dump among the written files");
    assert!(dump.packets.len() >= 100, "regen flood window too small");
    let report = minimize(&dump).expect("the recorded flood must reproduce");
    let out = corpus_dir().join("invite-flood.min.vdump");
    report.dump.write_to(&out).unwrap();
    eprintln!(
        "regenerated {}: {} -> {} packets in {} replays",
        out.display(),
        report.original_packets,
        report.minimized_packets,
        report.replays
    );
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn committed_minimized_flood_dump_replays_byte_identically() {
    if std::env::var("VIDS_REGEN_CORPUS").is_ok_and(|v| v == "1") {
        regenerate_corpus();
    }
    let dumps = load_dumps(&corpus_dir()).unwrap();
    let (path, dump) = dumps
        .iter()
        .find(|(p, _)| {
            p.file_name()
                .is_some_and(|n| n.to_string_lossy().contains("invite-flood"))
        })
        .expect("corpus/invite-flood.min.vdump is missing — run VIDS_REGEN_CORPUS=1");

    // The minimizer's contract: just past the detection threshold, far
    // below the 100+ packets the flood was recorded from.
    let n = dump.config.invite_flood_n as usize;
    assert!(
        dump.packets.len() <= n + 2,
        "{}: {} packets survived minimization (threshold {n})",
        path.display(),
        dump.packets.len()
    );
    assert!(
        dump.packets.len() > n,
        "{}: too few packets to cross the flood threshold",
        path.display()
    );
    assert_eq!(dump.alert.label, labels::INVITE_FLOOD);

    let verdict = replay_vdump(dump);
    assert!(
        verdict.identical(),
        "{}: committed dump diverged (alert={} counters={} snapshot={}): {:?}",
        path.display(),
        verdict.alert_identical,
        verdict.counters_identical,
        verdict.snapshot_identical,
        verdict.outcome.alerts
    );

    // And it feeds the fuzzer: every packet in the window is a SIP seed.
    let seeds = sip_seeds_from_dump(dump);
    assert!(
        !seeds.is_empty(),
        "minimized flood dump must contribute SIP fuzz seeds"
    );
    assert!(seeds.iter().all(|s| s.starts_with("INVITE ")));
}
