//! Whole-session SDP descriptions: parse and serialize.

use std::fmt;
use std::str::FromStr;

use crate::codec::{Codec, PayloadType};
use crate::media::{MediaDescription, MediaKind};

/// A parsed SDP session description.
///
/// Field coverage: `v=`, `o=`, `s=`, `c=`, `t=`, `m=`, `a=`. Unknown lines
/// are tolerated and dropped (RFC 2327 says unknown types should be
/// ignored); the monitor only acts on connection and media information.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SessionDescription {
    /// Origin username (`o=` first field).
    pub origin_user: String,
    /// Origin session id.
    pub session_id: u64,
    /// Origin session version.
    pub session_version: u64,
    /// Origin unicast address (also the default connection address).
    pub origin_addr: String,
    /// Session name (`s=`).
    pub session_name: String,
    /// Session-level connection address (`c=`), if present.
    pub connection_addr: Option<String>,
    /// Media sections in order.
    pub media: Vec<MediaDescription>,
}

impl SessionDescription {
    /// Builds the canonical audio offer the simulated UAs exchange:
    /// one `m=audio` section at `port` offering `codecs`, connection data
    /// pointing at `addr`.
    pub fn audio_offer(user: &str, addr: &str, port: u16, codecs: &[Codec]) -> Self {
        SessionDescription {
            origin_user: user.to_owned(),
            session_id: 1,
            session_version: 1,
            origin_addr: addr.to_owned(),
            session_name: "vids call".to_owned(),
            connection_addr: Some(addr.to_owned()),
            media: vec![MediaDescription::audio(port, codecs)],
        }
    }

    /// The effective connection address: session-level `c=` or the origin.
    pub fn media_addr(&self) -> &str {
        self.connection_addr.as_deref().unwrap_or(&self.origin_addr)
    }

    /// The first audio media section, if any.
    pub fn first_audio(&self) -> Option<&MediaDescription> {
        self.media.iter().find(|m| m.kind == MediaKind::Audio)
    }

    /// Negotiates an answer: keeps only the codecs both sides support,
    /// in the offerer's preference order, answering at `addr`:`port`.
    /// Returns `None` when there is no codec overlap.
    pub fn answer(
        &self,
        user: &str,
        addr: &str,
        port: u16,
        supported: &[Codec],
    ) -> Option<SessionDescription> {
        let offer = self.first_audio()?;
        let common: Vec<Codec> = offer.codecs().filter(|c| supported.contains(c)).collect();
        if common.is_empty() {
            return None;
        }
        Some(SessionDescription::audio_offer(user, addr, port, &common))
    }
}

impl fmt::Display for SessionDescription {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "v=0\r\n")?;
        write!(
            f,
            "o={} {} {} IN IP4 {}\r\n",
            self.origin_user, self.session_id, self.session_version, self.origin_addr
        )?;
        write!(f, "s={}\r\n", self.session_name)?;
        if let Some(addr) = &self.connection_addr {
            write!(f, "c=IN IP4 {addr}\r\n")?;
        }
        write!(f, "t=0 0\r\n")?;
        for m in &self.media {
            write!(f, "{m}")?;
        }
        Ok(())
    }
}

/// Error returned when SDP text cannot be parsed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseSdpError {
    reason: String,
}

impl ParseSdpError {
    fn new(reason: impl Into<String>) -> Self {
        ParseSdpError {
            reason: reason.into(),
        }
    }
}

impl fmt::Display for ParseSdpError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid SDP: {}", self.reason)
    }
}

impl std::error::Error for ParseSdpError {}

impl FromStr for SessionDescription {
    type Err = ParseSdpError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let mut desc = SessionDescription {
            origin_user: String::new(),
            session_id: 0,
            session_version: 0,
            origin_addr: String::new(),
            session_name: String::new(),
            connection_addr: None,
            media: Vec::new(),
        };
        let mut saw_version = false;
        let mut saw_origin = false;

        for line in s.lines() {
            let line = line.trim_end_matches('\r');
            if line.is_empty() {
                continue;
            }
            let (kind, value) = line
                .split_once('=')
                .ok_or_else(|| ParseSdpError::new(format!("line without '=': {line:?}")))?;
            match kind {
                "v" => {
                    if value != "0" {
                        return Err(ParseSdpError::new("unsupported SDP version"));
                    }
                    saw_version = true;
                }
                "o" => {
                    let fields: Vec<&str> = value.split_whitespace().collect();
                    if fields.len() != 6 {
                        return Err(ParseSdpError::new("o= line must have 6 fields"));
                    }
                    desc.origin_user = fields[0].to_owned();
                    desc.session_id = fields[1]
                        .parse()
                        .map_err(|_| ParseSdpError::new("invalid o= session id"))?;
                    desc.session_version = fields[2]
                        .parse()
                        .map_err(|_| ParseSdpError::new("invalid o= session version"))?;
                    desc.origin_addr = fields[5].to_owned();
                    saw_origin = true;
                }
                "s" => desc.session_name = value.to_owned(),
                "c" => {
                    let fields: Vec<&str> = value.split_whitespace().collect();
                    if fields.len() != 3 {
                        return Err(ParseSdpError::new("c= line must have 3 fields"));
                    }
                    let addr = fields[2].to_owned();
                    match desc.media.last_mut() {
                        // Media-level c= overrides for that section; the
                        // model keeps a single session address, so the last
                        // one seen wins — adequate for this testbed.
                        Some(_) | None => desc.connection_addr = Some(addr),
                    }
                }
                "m" => {
                    let fields: Vec<&str> = value.split_whitespace().collect();
                    if fields.len() < 4 {
                        return Err(ParseSdpError::new("m= line must have >= 4 fields"));
                    }
                    let kind: MediaKind = fields[0]
                        .parse()
                        .map_err(|_| ParseSdpError::new("unknown media kind"))?;
                    let port: u16 = fields[1]
                        .parse()
                        .map_err(|_| ParseSdpError::new("invalid media port"))?;
                    let mut formats = Vec::new();
                    for tok in &fields[3..] {
                        let pt: u8 = tok
                            .parse()
                            .map_err(|_| ParseSdpError::new("invalid payload type"))?;
                        formats.push(PayloadType(pt));
                    }
                    desc.media.push(MediaDescription {
                        kind,
                        port,
                        protocol: fields[2].to_owned(),
                        formats,
                        attributes: Vec::new(),
                    });
                }
                "a" => {
                    if let Some(m) = desc.media.last_mut() {
                        m.attributes.push(value.to_owned());
                    }
                    // Session-level attributes are ignored.
                }
                // t=, b=, k=, z=, i=, u=, e=, p=, r= — tolerated, ignored.
                _ => {}
            }
        }

        if !saw_version {
            return Err(ParseSdpError::new("missing v= line"));
        }
        if !saw_origin {
            return Err(ParseSdpError::new("missing o= line"));
        }
        Ok(desc)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn offer_round_trips() {
        let offer = SessionDescription::audio_offer(
            "alice",
            "10.0.0.3",
            49170,
            &[Codec::G729, Codec::Pcmu],
        );
        let parsed: SessionDescription = offer.to_string().parse().unwrap();
        assert_eq!(parsed, offer);
        assert_eq!(parsed.media_addr(), "10.0.0.3");
        assert_eq!(parsed.first_audio().unwrap().port, 49170);
    }

    #[test]
    fn parses_rfc_style_description() {
        let text = "v=0\r\n\
                    o=alice 2890844526 2890844526 IN IP4 host.atlanta.example.com\r\n\
                    s=-\r\n\
                    c=IN IP4 192.0.2.101\r\n\
                    t=0 0\r\n\
                    m=audio 49172 RTP/AVP 0 18\r\n\
                    a=rtpmap:0 PCMU/8000\r\n\
                    a=rtpmap:18 G729/8000\r\n";
        let desc: SessionDescription = text.parse().unwrap();
        assert_eq!(desc.media_addr(), "192.0.2.101");
        let audio = desc.first_audio().unwrap();
        assert_eq!(audio.port, 49172);
        let codecs: Vec<Codec> = audio.codecs().collect();
        assert_eq!(codecs, vec![Codec::Pcmu, Codec::G729]);
    }

    #[test]
    fn answer_negotiates_common_codecs() {
        let offer = SessionDescription::audio_offer(
            "alice",
            "10.0.0.3",
            49170,
            &[Codec::G729, Codec::Pcmu],
        );
        let answer = offer
            .answer("bob", "10.0.1.9", 50000, &[Codec::Pcmu, Codec::Gsm])
            .unwrap();
        let codecs: Vec<Codec> = answer.first_audio().unwrap().codecs().collect();
        assert_eq!(codecs, vec![Codec::Pcmu]);
        assert_eq!(answer.media_addr(), "10.0.1.9");
    }

    #[test]
    fn answer_fails_without_common_codec() {
        let offer = SessionDescription::audio_offer("alice", "10.0.0.3", 49170, &[Codec::G729]);
        assert!(offer
            .answer("bob", "10.0.1.9", 50000, &[Codec::Gsm])
            .is_none());
    }

    #[test]
    fn missing_mandatory_lines_fail() {
        assert!("".parse::<SessionDescription>().is_err());
        assert!("v=0\r\n".parse::<SessionDescription>().is_err());
        assert!("o=a 1 1 IN IP4 h\r\n"
            .parse::<SessionDescription>()
            .is_err());
        assert!("v=1\r\no=a 1 1 IN IP4 h\r\n"
            .parse::<SessionDescription>()
            .is_err());
    }

    #[test]
    fn malformed_lines_fail() {
        let bad_m = "v=0\r\no=a 1 1 IN IP4 h\r\nm=audio\r\n";
        assert!(bad_m.parse::<SessionDescription>().is_err());
        let bad_c = "v=0\r\no=a 1 1 IN IP4 h\r\nc=IN IP4\r\n";
        assert!(bad_c.parse::<SessionDescription>().is_err());
        let no_eq = "v=0\r\no=a 1 1 IN IP4 h\r\nbogus\r\n";
        assert!(no_eq.parse::<SessionDescription>().is_err());
    }

    #[test]
    fn connection_falls_back_to_origin() {
        let text = "v=0\r\no=bob 1 1 IN IP4 10.9.8.7\r\ns=x\r\nm=audio 4000 RTP/AVP 18\r\n";
        let desc: SessionDescription = text.parse().unwrap();
        assert_eq!(desc.media_addr(), "10.9.8.7");
    }

    #[test]
    fn unknown_lines_are_ignored() {
        let text = "v=0\r\no=a 1 1 IN IP4 h\r\ns=x\r\nb=AS:64\r\nk=clear:zzz\r\nm=audio 4000 RTP/AVP 18\r\n";
        let desc: SessionDescription = text.parse().unwrap();
        assert_eq!(desc.media.len(), 1);
    }
}
