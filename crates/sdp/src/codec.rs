//! Audio codec registry: static RTP payload types (RFC 3551 Table 4) and the
//! codec parameters the QoS model needs (sample rate, frame size, bit rate).

use std::fmt;

/// An RTP payload type number (7 bits).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct PayloadType(pub u8);

impl fmt::Display for PayloadType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

/// Audio codecs relevant to the paper's testbed. The evaluation uses G.729
/// (8 kbit/s, 10 ms frames); G.711 is the common fallback and serves as the
/// "changed encoding scheme" in the RTP-flooding threat (§3.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Codec {
    /// ITU-T G.711 µ-law, payload type 0, 64 kbit/s.
    Pcmu,
    /// ITU-T G.711 A-law, payload type 8, 64 kbit/s.
    Pcma,
    /// ITU-T G.723.1, payload type 4, 6.3 kbit/s.
    G723,
    /// ITU-T G.729, payload type 18, 8 kbit/s — the paper's codec.
    G729,
    /// GSM full rate, payload type 3, 13 kbit/s.
    Gsm,
}

impl Codec {
    /// All registered codecs.
    pub const ALL: [Codec; 5] = [
        Codec::Pcmu,
        Codec::Pcma,
        Codec::G723,
        Codec::G729,
        Codec::Gsm,
    ];

    /// The static RTP payload type (RFC 3551).
    pub fn payload_type(&self) -> PayloadType {
        PayloadType(match self {
            Codec::Pcmu => 0,
            Codec::Gsm => 3,
            Codec::G723 => 4,
            Codec::Pcma => 8,
            Codec::G729 => 18,
        })
    }

    /// Looks a codec up by payload type.
    pub fn from_payload_type(pt: PayloadType) -> Option<Codec> {
        Codec::ALL.iter().find(|c| c.payload_type() == pt).copied()
    }

    /// The `a=rtpmap` encoding name.
    pub fn encoding_name(&self) -> &'static str {
        match self {
            Codec::Pcmu => "PCMU",
            Codec::Pcma => "PCMA",
            Codec::G723 => "G723",
            Codec::G729 => "G729",
            Codec::Gsm => "GSM",
        }
    }

    /// RTP clock rate in Hz (8000 for all narrowband audio codecs here).
    pub fn clock_rate(&self) -> u32 {
        8_000
    }

    /// Codec frame duration in milliseconds.
    pub fn frame_ms(&self) -> u32 {
        match self {
            Codec::Pcmu | Codec::Pcma => 20,
            Codec::G723 => 30,
            Codec::G729 => 10,
            Codec::Gsm => 20,
        }
    }

    /// Media bit rate in bits per second (payload only).
    pub fn bit_rate(&self) -> u32 {
        match self {
            Codec::Pcmu | Codec::Pcma => 64_000,
            Codec::G723 => 6_300,
            Codec::G729 => 8_000,
            Codec::Gsm => 13_000,
        }
    }

    /// Payload bytes per RTP packet at one frame per packet.
    pub fn payload_bytes_per_packet(&self) -> usize {
        (self.bit_rate() as usize * self.frame_ms() as usize) / 8 / 1_000
    }

    /// RTP timestamp increment per packet (clock ticks per frame).
    pub fn timestamp_increment(&self) -> u32 {
        self.clock_rate() / 1_000 * self.frame_ms()
    }
}

impl fmt::Display for Codec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}/{}", self.encoding_name(), self.clock_rate())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn payload_type_round_trip() {
        for codec in Codec::ALL {
            assert_eq!(Codec::from_payload_type(codec.payload_type()), Some(codec));
        }
        assert_eq!(Codec::from_payload_type(PayloadType(77)), None);
    }

    #[test]
    fn g729_matches_paper_parameters() {
        // §7.1: G.729 with frame size 10 ms, coding rate 8 kbit/s.
        assert_eq!(Codec::G729.frame_ms(), 10);
        assert_eq!(Codec::G729.bit_rate(), 8_000);
        assert_eq!(Codec::G729.payload_bytes_per_packet(), 10);
        assert_eq!(Codec::G729.timestamp_increment(), 80);
    }

    #[test]
    fn g711_is_64kbps() {
        assert_eq!(Codec::Pcmu.payload_bytes_per_packet(), 160);
        assert_eq!(Codec::Pcmu.timestamp_increment(), 160);
    }

    #[test]
    fn display_is_rtpmap_form() {
        assert_eq!(Codec::G729.to_string(), "G729/8000");
    }
}
