//! Media descriptions (`m=` sections and their attributes).

use std::fmt;
use std::str::FromStr;

use crate::codec::{Codec, PayloadType};

/// The media type of an `m=` line.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum MediaKind {
    /// `m=audio` — the only kind the testbed generates.
    #[default]
    Audio,
    /// `m=video`.
    Video,
    /// `m=application`.
    Application,
}

impl MediaKind {
    /// The token used on the wire.
    pub fn as_str(&self) -> &'static str {
        match self {
            MediaKind::Audio => "audio",
            MediaKind::Video => "video",
            MediaKind::Application => "application",
        }
    }
}

impl fmt::Display for MediaKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

impl FromStr for MediaKind {
    type Err = ();

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "audio" => Ok(MediaKind::Audio),
            "video" => Ok(MediaKind::Video),
            "application" => Ok(MediaKind::Application),
            _ => Err(()),
        }
    }
}

/// One `m=` section: kind, transport port, offered payload types, and any
/// `a=` attribute lines that belong to it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MediaDescription {
    /// Media kind (audio/video/application).
    pub kind: MediaKind,
    /// UDP port the offerer will receive RTP on.
    pub port: u16,
    /// Transport protocol, normally `RTP/AVP`.
    pub protocol: String,
    /// Offered payload types, in preference order.
    pub formats: Vec<PayloadType>,
    /// `a=` attribute lines (without the `a=` prefix), in order.
    pub attributes: Vec<String>,
}

impl MediaDescription {
    /// Creates an `m=audio <port> RTP/AVP ...` section offering `codecs`,
    /// with matching `a=rtpmap` attributes.
    pub fn audio(port: u16, codecs: &[Codec]) -> Self {
        MediaDescription {
            kind: MediaKind::Audio,
            port,
            protocol: "RTP/AVP".to_owned(),
            formats: codecs.iter().map(|c| c.payload_type()).collect(),
            attributes: codecs
                .iter()
                .map(|c| format!("rtpmap:{} {}", c.payload_type(), c))
                .collect(),
        }
    }

    /// The codecs this section offers (known payload types only).
    pub fn codecs(&self) -> impl Iterator<Item = Codec> + '_ {
        self.formats
            .iter()
            .filter_map(|pt| Codec::from_payload_type(*pt))
    }

    /// Whether the given payload type is offered.
    pub fn offers(&self, pt: PayloadType) -> bool {
        self.formats.contains(&pt)
    }
}

impl fmt::Display for MediaDescription {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "m={} {} {}", self.kind, self.port, self.protocol)?;
        for pt in &self.formats {
            write!(f, " {pt}")?;
        }
        write!(f, "\r\n")?;
        for attr in &self.attributes {
            write!(f, "a={attr}\r\n")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn audio_section_serializes() {
        let m = MediaDescription::audio(49170, &[Codec::G729, Codec::Pcmu]);
        let text = m.to_string();
        assert!(text.starts_with("m=audio 49170 RTP/AVP 18 0\r\n"));
        assert!(text.contains("a=rtpmap:18 G729/8000\r\n"));
        assert!(text.contains("a=rtpmap:0 PCMU/8000\r\n"));
    }

    #[test]
    fn codec_iteration_skips_unknown() {
        let mut m = MediaDescription::audio(4000, &[Codec::G729]);
        m.formats.push(PayloadType(99)); // dynamic type we don't know
        let codecs: Vec<Codec> = m.codecs().collect();
        assert_eq!(codecs, vec![Codec::G729]);
        assert!(m.offers(PayloadType(99)));
        assert!(!m.offers(PayloadType(5)));
    }

    #[test]
    fn media_kind_parse() {
        assert_eq!("audio".parse::<MediaKind>(), Ok(MediaKind::Audio));
        assert!("smellovision".parse::<MediaKind>().is_err());
    }
}
