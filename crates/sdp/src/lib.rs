//! # vids-sdp — Session Description Protocol substrate
//!
//! A from-scratch SDP (RFC 2327) implementation covering what SIP call setup
//! needs: the origin (`o=`), connection (`c=`) and media (`m=`) lines plus
//! `a=rtpmap` attributes. The paper's RTP protocol state machine is
//! initialized from exactly this information — "IP address, port number of
//! the source, and offered media encoding schemes" (§4.2) — which the SIP
//! machine writes into the global shared variables.
//!
//! ```
//! use vids_sdp::{SessionDescription, Codec};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let offer = SessionDescription::audio_offer("alice", "10.0.0.3", 49170, &[Codec::G729]);
//! let parsed: SessionDescription = offer.to_string().parse()?;
//! let media = parsed.first_audio().unwrap();
//! assert_eq!(media.port, 49170);
//! assert!(media.codecs().any(|c| c == Codec::G729));
//! # Ok(())
//! # }
//! ```

pub mod codec;
pub mod media;
pub mod session;

pub use codec::{Codec, PayloadType};
pub use media::{MediaDescription, MediaKind};
pub use session::{ParseSdpError, SessionDescription};

/// The MIME type carried in SIP `Content-Type` for SDP bodies.
pub const MIME_TYPE: &str = "application/sdp";
