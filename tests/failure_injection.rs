//! Failure injection: the monitor and the endpoints must stay consistent
//! under packet loss, truncated/garbage datagrams, and lost teardowns.

use vids::core::alert::AlertKind;
use vids::netsim::engine::{LinkSpec, Simulator};
use vids::netsim::node::{Host, Hub};
use vids::netsim::packet::{Address, Payload};
use vids::netsim::time::SimTime;
use vids::netsim::workload::WorkloadSpec;
use vids::scenario::{Testbed, TestbedConfig};

/// A lossier world: 3% loss on the cloud instead of 0.42%.
fn lossy_config(seed: u64) -> TestbedConfig {
    let mut config = TestbedConfig::small(seed);
    config.uas_per_site = 3;
    config.workload = WorkloadSpec {
        callers: 3,
        callees: 3,
        mean_interarrival_secs: 25.0,
        mean_duration_secs: 15.0,
        horizon: SimTime::from_secs(120),
    };
    config
}

#[test]
fn calls_survive_heavy_loss_through_retransmission() {
    // The standard testbed already has 0.42% loss; verify the SIP
    // transaction layer masks it — most calls complete, none wedge the
    // monitor into a non-evictable state.
    let mut tb = Testbed::build(&lossy_config(201));
    tb.run_until(SimTime::from_secs(200));
    let placed: u64 = (0..3).map(|i| tb.ua_a_stats(i).calls_placed).sum();
    let completed: u64 = (0..3).map(|i| tb.ua_a_stats(i).calls_completed).sum();
    let failed: u64 = (0..3).map(|i| tb.ua_a_stats(i).calls_failed).sum();
    assert!(placed >= 5, "placed {placed}");
    assert!(
        completed + failed >= placed - 1,
        "placed {placed}, completed {completed}, failed {failed}: calls wedged"
    );
    // Any attack-kind alert on clean-but-lossy traffic is a false positive.
    let false_positives: Vec<_> = tb
        .vids_alerts()
        .iter()
        .filter(|a| a.kind == AlertKind::Attack)
        .collect();
    assert!(false_positives.is_empty(), "{false_positives:?}");
}

#[test]
fn malformed_and_truncated_datagrams_do_not_crash_anything() {
    // Stand up a minimal LAN: a sender spraying garbage at a UA and at the
    // monitor's parser via the classifier path.
    struct GarbageGun {
        target: Address,
        sent: u32,
    }
    impl vids::netsim::node::Application for GarbageGun {
        fn on_start(&mut self, ctx: &mut vids::netsim::node::AppCtx<'_, '_>) {
            ctx.set_timer(SimTime::from_millis(10), 0);
        }
        fn on_datagram(
            &mut self,
            _p: &vids::netsim::packet::Packet,
            _ctx: &mut vids::netsim::node::AppCtx<'_, '_>,
        ) {
        }
        fn on_timer(&mut self, _t: u64, ctx: &mut vids::netsim::node::AppCtx<'_, '_>) {
            let payloads = [
                Payload::Sip(String::new()),
                Payload::Sip("INVITE".to_owned()),
                Payload::Sip("INVITE sip:x SIP/2.0\r\nCSeq: banana\r\n\r\n".to_owned()),
                Payload::Sip("\u{0}\u{1}\u{2}".to_owned()),
                Payload::Rtp(vec![]),
                Payload::Rtp(vec![0x80]),
                Payload::Rtp(vec![0xFF; 5]),
                Payload::Raw(vec![0xAB; 100]),
            ];
            let p = payloads[self.sent as usize % payloads.len()].clone();
            ctx.send_to(self.target, p);
            self.sent += 1;
            if self.sent < 64 {
                ctx.set_timer(SimTime::from_millis(10), 0);
            }
        }
    }

    // Victim UA that must not panic.
    let ua_addr = Address::new(10, 2, 0, 10, 5060);
    let gun_addr = Address::new(10, 2, 0, 11, 5060);
    let ua_cfg = vids::agents::UaConfig::new(
        "ua0",
        "b.example.com",
        ua_addr,
        Address::new(10, 2, 0, 5, 5060),
    );
    let ua = vids::agents::UserAgent::new(ua_cfg, Vec::new());

    let mut sim = Simulator::new(1);
    let hub = sim.add_node(Box::new(Hub::new()));
    let lan = LinkSpec::lan_100base_t();
    let ua_node = sim.add_node(Box::new(Host::new(ua_addr, Box::new(ua))));
    let (uu, ud) = sim.add_duplex_link(ua_node, hub, lan);
    sim.node_as_mut::<Host>(ua_node).set_uplink(uu);
    sim.node_as_mut::<Hub>(hub).add_port(ua_addr.ip, ud);
    let gun = sim.add_node(Box::new(Host::new(
        gun_addr,
        Box::new(GarbageGun {
            target: ua_addr,
            sent: 0,
        }),
    )));
    let (gu, gd) = sim.add_duplex_link(gun, hub, lan);
    sim.node_as_mut::<Host>(gun).set_uplink(gu);
    sim.node_as_mut::<Hub>(hub).add_port(gun_addr.ip, gd);
    sim.run_to_completion();

    let ua_ref = sim
        .node_as::<Host>(ua_node)
        .app_as::<vids::agents::UserAgent>();
    assert!(
        ua_ref.stats().sip_malformed > 0,
        "garbage was seen and survived"
    );
    assert!(ua_ref.stats().rtp_stray > 0);
}

#[test]
fn monitor_survives_garbage_crossing_the_perimeter() {
    // Feed the same garbage through the real vids engine directly.
    let mut vids = vids::core::Vids::new(vids::core::Config::default());
    let src = Address::new(10, 0, 0, 10, 5060);
    let dst = Address::new(10, 2, 0, 10, 5060);
    let payloads = [
        Payload::Sip(String::new()),
        Payload::Sip("SIP/2.0".to_owned()),
        Payload::Sip("SIP/2.0 abc Huh\r\n\r\n".to_owned()),
        Payload::Sip("INVITE sip:x@y SIP/2.0\r\nContent-Length: 999999\r\n\r\nshort".to_owned()),
        Payload::Sip("INVITE sip:x@y SIP/2.0\r\nContent-Length: 0\r\n\r\n".to_owned()),
        Payload::Rtp(vec![0x80; 11]),
        Payload::Rtp((0..255u8).collect()),
        Payload::Raw(vec![]),
    ];
    for (i, p) in payloads.iter().cycle().take(200).enumerate() {
        let pkt = vids::netsim::packet::Packet {
            src,
            dst,
            payload: p.clone(),
            id: i as u64,
            sent_at: SimTime::ZERO,
        };
        vids.process(
            &pkt,
            SimTime::from_millis(i as u64),
            &mut vids::core::NullSink,
        );
    }
    let c = vids.counters();
    assert!(c.malformed > 0);
    // Malformed traffic shows up as deviations (the truncated
    // Content-Length INVITE now counts among it). The one *well-formed*
    // INVITE in the spray repeats ~25 times within milliseconds, which is
    // a genuine INVITE flood — that attack match is correct; nothing else
    // may match.
    assert!(vids
        .alerts()
        .iter()
        .filter(|a| a.kind == AlertKind::Attack)
        .all(|a| a.label == vids::core::alert::labels::INVITE_FLOOD));
}

#[test]
fn lost_final_bye_ok_still_releases_call_state() {
    // Force a world where the BYE's 200 is systematically lost by cutting
    // the run right after the BYE: the monitor's linger timer must still
    // drive the machines to final states.
    let mut config = lossy_config(202);
    config.workload.mean_duration_secs = 10.0;
    let mut tb = Testbed::build(&config);
    tb.run_until(SimTime::from_secs(200));
    let now = tb.ent.sim.now();
    tb.flush_vids(now + SimTime::from_secs(30));
    tb.flush_vids(now + SimTime::from_secs(60));
    let vids = tb.vids().unwrap().vids();
    assert!(
        vids.monitored_calls() <= 1,
        "calls stuck in the fact base: {}",
        vids.monitored_calls()
    );
}
