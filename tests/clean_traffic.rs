//! False-positive test (half of experiment E6): sustained legitimate
//! traffic through the monitored perimeter must raise **zero** alerts —
//! the paper reports "100% detection accuracy with zero false positive"
//! for specification-conformant traffic.

use vids::netsim::time::SimTime;
use vids::netsim::workload::WorkloadSpec;
use vids::scenario::{Testbed, TestbedConfig};

fn busy_config(seed: u64, minutes: u64) -> TestbedConfig {
    let mut config = TestbedConfig::small(seed);
    config.uas_per_site = 5;
    config.workload = WorkloadSpec {
        callers: 5,
        callees: 5,
        mean_interarrival_secs: 45.0,
        mean_duration_secs: 30.0,
        horizon: SimTime::from_secs(minutes * 60),
    };
    config
}

#[test]
fn five_minutes_of_calls_raise_no_alarms() {
    let mut tb = Testbed::build(&busy_config(101, 5));
    tb.run_until(SimTime::from_secs(6 * 60));

    let placed: u64 = (0..5).map(|i| tb.ua_a_stats(i).calls_placed).sum();
    let completed: u64 = (0..5).map(|i| tb.ua_a_stats(i).calls_completed).sum();
    assert!(placed >= 10, "workload too thin: {placed} calls");
    assert!(
        completed as f64 >= placed as f64 * 0.8,
        "{completed}/{placed} calls completed"
    );

    assert!(
        tb.vids_alerts().is_empty(),
        "false positives: {:?}",
        tb.vids_alerts()
    );

    // The monitor actually did work.
    let vids = tb.vids().unwrap();
    let c = vids.vids().counters();
    assert!(c.sip_packets > placed * 4, "sip packets {}", c.sip_packets);
    assert!(c.rtp_packets > 10_000, "rtp packets {}", c.rtp_packets);
    assert_eq!(c.malformed, 0);
}

#[test]
fn finished_calls_are_evicted_keeping_memory_bounded() {
    let mut tb = Testbed::build(&busy_config(102, 5));
    tb.run_until(SimTime::from_secs(7 * 60));
    // Flush eviction timers.
    let now = tb.ent.sim.now();
    tb.flush_vids(now + SimTime::from_secs(30));
    tb.flush_vids(now + SimTime::from_secs(60));
    let vids = tb.vids().unwrap().vids();
    let stats = vids.factbase_stats();
    assert!(stats.calls_created >= 10);
    assert!(
        stats.calls_evicted >= stats.calls_created - 2,
        "evicted {} of {}",
        stats.calls_evicted,
        stats.calls_created
    );
    assert!(
        vids.monitored_calls() <= 2,
        "still monitoring {}",
        vids.monitored_calls()
    );
    // §7.3: monitoring memory stays small once calls finish.
    assert!(
        vids.memory_bytes() < 64 * 1024,
        "memory {}",
        vids.memory_bytes()
    );
}

#[test]
fn per_call_memory_matches_paper_ballpark() {
    // The paper: ~450 B of SIP state + ~40 B of RTP state per call. Our
    // VarMap accounting lands in the same order of magnitude.
    let mut tb = Testbed::build(&busy_config(103, 3));
    tb.run_until(SimTime::from_secs(120));
    let vids = tb.vids().unwrap().vids();
    let calls = vids.monitored_calls();
    if calls == 0 {
        return; // nothing concurrent at this instant; other tests cover it
    }
    let per_call = vids.memory_bytes() / calls;
    assert!(
        (100..6_000).contains(&per_call),
        "per-call state {per_call} B for {calls} calls"
    );
}

#[test]
fn deterministic_replay_produces_identical_alert_logs() {
    let run = |seed: u64| {
        let mut tb = Testbed::build(&busy_config(seed, 2));
        tb.run_until(SimTime::from_secs(150));
        (tb.vids_alerts().to_vec(), tb.vids().unwrap().packets_seen())
    };
    let (a1, p1) = run(7);
    let (a2, p2) = run(7);
    assert_eq!(a1, a2);
    assert_eq!(p1, p2);
    let (_, p3) = run(8);
    assert_ne!(p1, p3, "different seeds produce different traffic");
}
