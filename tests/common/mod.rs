//! Shared traffic builders for the integration suites.
//!
//! [`mixed_trace`] is the canonical adversarial packet stream: clean
//! calls, an INVITE flood, a BYE-DoS, a DRDoS reflection, strays,
//! malformed datagrams and a registration hijack — every alert path in
//! one trace. `tests/pool_determinism.rs` replays it through every
//! ingestion API; `tests/replay_differential.rs` renders it to pcap and
//! replays the capture through the wire tier.

#![allow(dead_code)]

use vids::attacks::craft::{self, Target};
use vids::netsim::packet::{Address, Packet, Payload};
use vids::netsim::time::SimTime;
use vids::rtp::packet::RtpPacket;
use vids::sdp::{Codec, SessionDescription};
use vids::sip::headers::{CSeq, Header, NameAddr, Via};
use vids::sip::{Method, Request, SipUri, StatusCode};

pub fn pkt(src: Address, dst: Address, payload: Payload, at_ms: u64, id: u64) -> (Packet, SimTime) {
    let at = SimTime::from_millis(at_ms);
    (
        Packet {
            src,
            dst,
            payload,
            id,
            sent_at: at,
        },
        at,
    )
}

pub fn invite(call_id: &str, caller_ip: &str, media_port: u16) -> Request {
    let sdp = SessionDescription::audio_offer("alice", caller_ip, media_port, &[Codec::G729]);
    Request::invite(
        &SipUri::new("alice", "a.example.com"),
        &SipUri::new("bob", "b.example.com"),
        call_id,
    )
    .with_body(vids::sdp::MIME_TYPE, sdp.to_string())
}

/// A full clean call `k` starting at `t0`, with distinct endpoints and media
/// coordinates per call so calls land on different shards.
pub fn clean_call(trace: &mut Vec<(Packet, SimTime)>, k: u8, t0: u64) {
    let caller = Address::new(10, 1, 0, k, 5060);
    let callee = Address::new(10, 2, 0, k, 5060);
    let caller_ip = format!("10.1.0.{k}");
    let callee_ip = format!("10.2.0.{k}");
    let inv = invite(&format!("det-clean-{k}"), &caller_ip, 20_000);
    trace.push(pkt(caller, callee, Payload::Sip(inv.to_string()), t0, 0));
    let ringing = inv.response(StatusCode::RINGING).with_to_tag("tt");
    trace.push(pkt(
        callee,
        caller,
        Payload::Sip(ringing.to_string()),
        t0 + 30,
        0,
    ));
    let answer = SessionDescription::audio_offer("bob", &callee_ip, 30_000, &[Codec::G729]);
    let ok = inv
        .response(StatusCode::OK)
        .with_to_tag("tt")
        .with_body(vids::sdp::MIME_TYPE, answer.to_string());
    trace.push(pkt(
        callee,
        caller,
        Payload::Sip(ok.to_string()),
        t0 + 60,
        0,
    ));
    let ack = Request::in_dialog(Method::Ack, &inv, 1, Some("tt"));
    trace.push(pkt(
        caller,
        callee,
        Payload::Sip(ack.to_string()),
        t0 + 90,
        0,
    ));
    for i in 0..10u16 {
        let fwd = RtpPacket::new(18, 100 + i, (i as u32) * 80, 7).with_payload(vec![0; 10]);
        trace.push(pkt(
            caller.with_port(20_000),
            callee.with_port(30_000),
            Payload::Rtp(fwd.to_bytes()),
            t0 + 100 + i as u64 * 10,
            0,
        ));
        let rev = RtpPacket::new(18, 500 + i, (i as u32) * 80, 9).with_payload(vec![0; 10]);
        trace.push(pkt(
            callee.with_port(30_000),
            caller.with_port(20_000),
            Payload::Rtp(rev.to_bytes()),
            t0 + 105 + i as u64 * 10,
            0,
        ));
    }
    let bye = Request::in_dialog(Method::Bye, &inv, 2, Some("tt"));
    trace.push(pkt(
        caller,
        callee,
        Payload::Sip(bye.to_string()),
        t0 + 260,
        0,
    ));
    let bye_ok = bye.response(StatusCode::OK);
    trace.push(pkt(
        callee,
        caller,
        Payload::Sip(bye_ok.to_string()),
        t0 + 290,
        0,
    ));
}

pub fn register_packet(
    src: Address,
    registrar: Address,
    contact_ip: &str,
    expires: u32,
) -> Payload {
    let aor = SipUri::new("roamer", "b.example.com");
    let mut req = Request::new(Method::Register, SipUri::host_only("b.example.com"));
    req.headers
        .push(Header::Via(Via::udp(src.ip_string(), 5060, "z9hG4bK-r1")));
    req.headers
        .push(Header::From(NameAddr::new(aor.clone()).with_tag("rt")));
    req.headers.push(Header::To(NameAddr::new(aor)));
    req.headers.push(Header::CallId("det-reg".to_owned()));
    req.headers
        .push(Header::CSeq(CSeq::new(1, Method::Register)));
    req.headers.push(Header::Contact(NameAddr::new(SipUri::new(
        "roamer", contact_ip,
    ))));
    req.headers.push(Header::Expires(expires));
    req.headers.push(Header::ContentLength(0));
    let _ = registrar;
    Payload::Sip(req.to_string())
}

/// The full mixed trace, times strictly non-decreasing.
pub fn mixed_trace() -> Vec<(Packet, SimTime)> {
    let mut trace = Vec::new();

    // Clean calls, staggered.
    for k in 1..=3u8 {
        clean_call(&mut trace, k, (k as u64 - 1) * 40);
    }

    // INVITE flood against one phone (paper Fig. 4), via the attack crafts.
    let attacker = Address::new(172, 16, 0, 66, 5060);
    let victim_phone = Address::new(10, 2, 0, 9, 5060);
    let target = SipUri::new("bob9", "b.example.com");
    for i in 0..15u64 {
        let text = craft::flood_invite(&target, attacker, "flooder", &format!("det-flood-{i}"));
        trace.push(pkt(
            attacker,
            victim_phone,
            Payload::Sip(text),
            2_000 + i * 10,
            0,
        ));
    }

    // BYE DoS (paper §3.1 / Fig. 5): establish a call, forge its BYE from a
    // sniffed dialog snapshot, keep the media flowing past timer T.
    let caller = Address::new(10, 1, 0, 7, 5060);
    let callee = Address::new(10, 2, 0, 7, 5060);
    let inv = invite("det-victim", "10.1.0.7", 22_000);
    trace.push(pkt(caller, callee, Payload::Sip(inv.to_string()), 3_000, 0));
    let answer = SessionDescription::audio_offer("bob", "10.2.0.7", 32_000, &[Codec::G729]);
    let ok = inv
        .response(StatusCode::OK)
        .with_to_tag("tt")
        .with_body(vids::sdp::MIME_TYPE, answer.to_string());
    trace.push(pkt(callee, caller, Payload::Sip(ok.to_string()), 3_050, 0));
    let ack = Request::in_dialog(Method::Ack, &inv, 1, Some("tt"));
    trace.push(pkt(caller, callee, Payload::Sip(ack.to_string()), 3_100, 0));
    let snap = craft::DialogSnapshot {
        call_id: "det-victim".to_owned(),
        caller_from: NameAddr::new(SipUri::new("alice", "a.example.com")).with_tag("tag-alice"),
        callee_to: NameAddr::new(SipUri::new("bob", "b.example.com")).with_tag("tt"),
        caller_addr: caller,
        callee_addr: callee,
        callee_media: Some(callee.with_port(32_000)),
        caller_media: Some(caller.with_port(22_000)),
        caller_ssrc: Some(7),
        caller_rtp_cursor: Some((40, 3_200)),
        invite_branch: "z9hG4bK-det-victim".to_owned(),
    };
    let (victim, spoof) = snap.endpoints(Target::Callee);
    let bye = craft::spoofed_bye(&snap, Target::Callee);
    trace.push(pkt(
        spoof.with_port(5060),
        victim,
        Payload::Sip(bye),
        3_500,
        0,
    ));
    // The oblivious caller keeps streaming well past T = 200 ms.
    for i in 0..30u16 {
        let media = RtpPacket::new(18, 40 + i, (40 + i as u32) * 80, 7).with_payload(vec![0; 10]);
        trace.push(pkt(
            caller.with_port(22_000),
            callee.with_port(32_000),
            Payload::Rtp(media.to_bytes()),
            3_520 + i as u64 * 40,
            0,
        ));
    }

    // DRDoS reflection: responses to a call nobody monitored.
    let ghost = invite("det-ghost", "10.9.9.9", 24_000);
    let ghost_ok = ghost.response(StatusCode::OK);
    for i in 0..12u64 {
        trace.push(pkt(
            Address::new(172, 16, 0, 80, 5060),
            Address::new(10, 2, 0, 5, 5060),
            Payload::Sip(ghost_ok.to_string()),
            5_000 + i * 5,
            0,
        ));
    }

    // Strays: unassociated RTP, malformed SIP and RTP, raw background noise.
    let stray = RtpPacket::new(18, 1, 0, 3).with_payload(vec![0; 10]);
    trace.push(pkt(
        Address::new(172, 16, 0, 90, 40_000),
        Address::new(10, 2, 0, 2, 41_000),
        Payload::Rtp(stray.to_bytes()),
        5_200,
        0,
    ));
    trace.push(pkt(
        Address::new(172, 16, 0, 90, 5060),
        Address::new(10, 2, 0, 2, 5060),
        Payload::Sip("garbage".to_owned()),
        5_210,
        0,
    ));
    trace.push(pkt(
        Address::new(172, 16, 0, 90, 40_000),
        Address::new(10, 2, 0, 2, 41_000),
        Payload::Rtp(vec![0x80; 3]),
        5_220,
        0,
    ));
    trace.push(pkt(
        Address::new(172, 16, 0, 90, 1_000),
        Address::new(10, 2, 0, 2, 1_000),
        Payload::Raw(vec![1, 2, 3]),
        5_230,
        0,
    ));

    // Registration, then a hijack attempt from a foreign source.
    let owner = Address::new(10, 0, 0, 20, 5060);
    let registrar = Address::new(10, 2, 0, 1, 5060);
    trace.push(pkt(
        owner,
        registrar,
        register_packet(owner, registrar, "10.0.0.20", 3_600),
        5_400,
        0,
    ));
    let hijacker = Address::new(172, 16, 0, 66, 5060);
    trace.push(pkt(
        hijacker,
        registrar,
        register_packet(hijacker, registrar, "172.16.0.66", 3_600),
        5_500,
        0,
    ));

    // Stable order with unique packet ids.
    trace.sort_by_key(|(p, at)| (*at, p.id));
    for (i, (p, _)) in trace.iter_mut().enumerate() {
        p.id = i as u64;
    }
    trace
}

/// [`mixed_trace`] restricted to packets whose wire rendering classifies
/// identically to the in-process path.
///
/// Exactly one trace element is excluded: the 3-byte `Payload::Rtp`
/// stray. In process it arrives *tagged* as RTP and is rejected as
/// malformed RTP; on the wire there is no tag — 3 bytes without an RTP
/// version field demux to `Unknown` and are ignored. Every other packet
/// (including the SIP garbage, which rides port 5060 both ways) maps
/// identically.
pub fn wire_safe_trace() -> Vec<(Packet, SimTime)> {
    mixed_trace()
        .into_iter()
        .filter(|(p, _)| match &p.payload {
            Payload::Rtp(bytes) => bytes.len() >= 12 && bytes[0] >> 6 == 2,
            Payload::Sip(_) | Payload::Raw(_) => true,
        })
        .collect()
}
