//! QoS-impact shape tests (experiments E2–E4): the inline monitor's cost on
//! call-setup delay, RTP delay and CPU matches the paper's Figs. 9–10 and
//! §7.3 within loose bands. The benches print the full series; these tests
//! pin the *shape* so regressions fail fast.

use vids::netsim::stats::Summary;
use vids::netsim::time::SimTime;
use vids::netsim::workload::WorkloadSpec;
use vids::scenario::{Testbed, TestbedConfig};

fn qos_config(seed: u64) -> TestbedConfig {
    let mut config = TestbedConfig::small(seed);
    config.uas_per_site = 3;
    config.workload = WorkloadSpec {
        callers: 3,
        callees: 3,
        mean_interarrival_secs: 30.0,
        mean_duration_secs: 20.0,
        horizon: SimTime::from_secs(180),
    };
    config
}

struct QosRun {
    setup: Summary,
    rtp_delay: Summary,
    rtp_jitter: Summary,
}

fn measure(config: &TestbedConfig) -> QosRun {
    let mut tb = Testbed::build(config);
    tb.run_until(SimTime::from_secs(240));
    let mut setup = Summary::new();
    let mut rtp_delay = Summary::new();
    let mut rtp_jitter = Summary::new();
    for i in 0..3 {
        let s = tb.ua_a_stats(i);
        setup.merge(&s.setup_delays.summary());
        rtp_delay.merge(&s.rtp_delay);
        rtp_jitter.merge(&s.rtp_jitter);
        let sb = tb.ua_b(i).stats();
        rtp_delay.merge(&sb.rtp_delay);
        rtp_jitter.merge(&sb.rtp_jitter);
    }
    QosRun {
        setup,
        rtp_delay,
        rtp_jitter,
    }
}

#[test]
fn vids_adds_about_100ms_to_call_setup() {
    let with = measure(&qos_config(55));
    let without = measure(&qos_config(55).without_vids());
    assert!(
        with.setup.count() >= 3,
        "too few calls: {}",
        with.setup.count()
    );
    assert_eq!(
        with.setup.count(),
        without.setup.count(),
        "same plan, same call count"
    );
    let added = with.setup.mean() - without.setup.mean();
    // Paper Fig. 9: ≈ +100 ms (INVITE + 180 each held 50 ms at the tap).
    assert!(
        (0.080..0.130).contains(&added),
        "setup delta {added:.4} s (with {:.4}, without {:.4})",
        with.setup.mean(),
        without.setup.mean()
    );
}

#[test]
fn vids_adds_about_1_5ms_to_rtp_delay() {
    let with = measure(&qos_config(56));
    let without = measure(&qos_config(56).without_vids());
    assert!(with.rtp_delay.count() > 10_000);
    let added = with.rtp_delay.mean() - without.rtp_delay.mean();
    // Paper Fig. 10: ≈ +1.5 ms.
    assert!(
        (0.0010..0.0022).contains(&added),
        "rtp delay delta {added:.5} s"
    );
}

#[test]
fn vids_jitter_impact_is_negligible() {
    let with = measure(&qos_config(57));
    let without = measure(&qos_config(57).without_vids());
    let delta = (with.rtp_jitter.mean() - without.rtp_jitter.mean()).abs();
    // Paper Fig. 10: delay variation grows by ~2·10⁻⁴ s; ours stays within
    // a 1 ms band because the tap's hold is constant.
    assert!(delta < 0.001, "jitter delta {delta:.6} s");
}

#[test]
fn one_way_delay_stays_within_voip_budget() {
    // §7.4: "the latency upper-bound is 150 ms for one way traffic" — even
    // with vids inline, the testbed path keeps within it.
    let with = measure(&qos_config(58));
    assert!(
        with.rtp_delay.mean() < 0.150,
        "mean one-way delay {:.4} s",
        with.rtp_delay.mean()
    );
    assert!(
        with.rtp_delay.max() < 0.200,
        "max {:.4}",
        with.rtp_delay.max()
    );
}

#[test]
fn modeled_cpu_overhead_is_a_few_percent() {
    let mut tb = Testbed::build(&qos_config(59));
    tb.run_until(SimTime::from_secs(240));
    let overhead = tb.vids().unwrap().cpu_overhead();
    // Paper §7.3: 3.6 % on the 2006 testbed's call volume. Our small
    // 3-caller testbed carries less media, so accept a broad band around
    // the modeled per-packet costs.
    assert!(
        (0.0005..0.05).contains(&overhead),
        "modeled CPU overhead {overhead}"
    );
}
