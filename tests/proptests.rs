//! Property-based tests over the protocol substrates and the EFSM engine.

use proptest::prelude::*;

use vids::efsm::machine::MachineDef;
use vids::efsm::{Event, MachineInstance, VarMap};
use vids::rtp::packet::RtpPacket;
use vids::rtp::seq::{seq_distance, seq_greater, ExtendedSeq};
use vids::rtp::JitterEstimator;
use vids::sdp::{Codec, SessionDescription};
use vids::sip::headers::{CSeq, NameAddr, Via};
use vids::sip::parse::parse_message;
use vids::sip::{Message, Method, Request, SipUri, StatusCode};

fn arb_user() -> impl Strategy<Value = String> {
    "[a-z][a-z0-9]{0,8}"
}

fn arb_host() -> impl Strategy<Value = String> {
    "[a-z][a-z0-9]{0,6}(\\.[a-z]{2,5}){1,2}"
}

fn arb_uri() -> impl Strategy<Value = SipUri> {
    (arb_user(), arb_host(), proptest::option::of(1024u16..65535)).prop_map(|(user, host, port)| {
        let uri = SipUri::new(user, host);
        match port {
            Some(p) => uri.with_port(p),
            None => uri,
        }
    })
}

proptest! {
    #[test]
    fn sip_uri_display_parse_round_trips(uri in arb_uri()) {
        let text = uri.to_string();
        let parsed: SipUri = text.parse().unwrap();
        prop_assert_eq!(parsed, uri);
    }

    #[test]
    fn via_round_trips(host in arb_host(), port in 1024u16..65535, branch in "[A-Za-z0-9]{4,20}") {
        let via = Via::udp(host, port, format!("z9hG4bK{branch}"));
        let parsed: Via = via.to_string().parse().unwrap();
        prop_assert_eq!(parsed, via);
    }

    #[test]
    fn name_addr_round_trips(uri in arb_uri(), name in proptest::option::of("[A-Za-z ]{1,12}"), tag in proptest::option::of("[a-z0-9]{1,10}")) {
        let mut na = NameAddr::new(uri);
        if let Some(n) = name { na = na.with_display_name(n); }
        if let Some(t) = tag { na = na.with_tag(t); }
        let parsed: NameAddr = na.to_string().parse().unwrap();
        prop_assert_eq!(parsed, na);
    }

    #[test]
    fn cseq_round_trips(seq in 0u32..u32::MAX, idx in 0usize..13) {
        let cseq = CSeq::new(seq, Method::ALL[idx]);
        prop_assert_eq!(cseq.to_string().parse::<CSeq>().unwrap(), cseq);
    }

    #[test]
    fn generated_requests_round_trip(from in arb_uri(), to in arb_uri(), call in "[a-z0-9-]{3,24}", cseq in 1u32..1000) {
        let invite = Request::invite(&from, &to, &call);
        let ack = Request::in_dialog(Method::Ack, &invite, cseq, Some("tt"));
        let bye = Request::in_dialog(Method::Bye, &invite, cseq, Some("tt"));
        for req in [invite, ack, bye] {
            let parsed = parse_message(&req.to_string()).unwrap();
            prop_assert_eq!(parsed, Message::Request(req));
        }
    }

    #[test]
    fn generated_responses_round_trip(from in arb_uri(), to in arb_uri(), code in 100u16..700) {
        let invite = Request::invite(&from, &to, "prop-resp");
        let resp = invite.response(StatusCode::new(code).unwrap()).with_to_tag("tag9");
        let parsed = parse_message(&resp.to_string()).unwrap();
        prop_assert_eq!(parsed, Message::Response(resp));
    }

    #[test]
    fn parser_never_panics_on_arbitrary_text(text in ".{0,400}") {
        let _ = parse_message(&text);
    }

    #[test]
    fn sdp_round_trips(user in arb_user(), a in 1u8..255, b in 0u8..255, port in 1024u16..65535, codecs in proptest::sample::subsequence(Codec::ALL.to_vec(), 1..5)) {
        let addr = format!("10.{a}.0.{b}");
        let sdp = SessionDescription::audio_offer(&user, &addr, port, &codecs);
        let parsed: SessionDescription = sdp.to_string().parse().unwrap();
        prop_assert_eq!(parsed, sdp);
    }

    #[test]
    fn sdp_parser_never_panics(text in ".{0,300}") {
        let _ = text.parse::<SessionDescription>();
    }

    #[test]
    fn rtp_round_trips(pt in 0u8..128, seq in any::<u16>(), ts in any::<u32>(), ssrc in any::<u32>(), payload in proptest::collection::vec(any::<u8>(), 0..200), marker in any::<bool>()) {
        let mut pkt = RtpPacket::new(pt, seq, ts, ssrc).with_payload(payload);
        if marker { pkt = pkt.with_marker(); }
        prop_assert_eq!(RtpPacket::parse(&pkt.to_bytes()).unwrap(), pkt);
    }

    #[test]
    fn rtp_parser_never_panics(bytes in proptest::collection::vec(any::<u8>(), 0..64)) {
        let _ = RtpPacket::parse(&bytes);
    }

    #[test]
    fn seq_greater_is_antisymmetric(a in any::<u16>(), b in any::<u16>()) {
        if a != b {
            // Exactly one direction wins unless they sit exactly half the
            // space apart (the RFC 1982 undefined case).
            let forward = seq_greater(a, b);
            let backward = seq_greater(b, a);
            if a.wrapping_sub(b) == 0x8000 {
                prop_assert!(!forward && !backward);
            } else {
                prop_assert!(forward != backward);
            }
        } else {
            prop_assert!(!seq_greater(a, b));
        }
    }

    #[test]
    fn seq_distance_inverts(a in any::<u16>(), b in any::<u16>()) {
        let d = seq_distance(a, b);
        prop_assert_eq!(b.wrapping_add(d as u16), a);
    }

    #[test]
    fn extended_seq_is_monotone_for_small_steps(start in any::<u16>(), steps in proptest::collection::vec(1u16..100, 1..60)) {
        let mut ext = ExtendedSeq::new();
        let mut seq = start;
        let mut last = ext.update(seq);
        for step in steps {
            seq = seq.wrapping_add(step);
            let v = ext.update(seq);
            prop_assert!(v > last, "extended seq must strictly grow: {v} after {last}");
            last = v;
        }
    }

    #[test]
    fn jitter_is_nonnegative_and_bounded(arrival_noise in proptest::collection::vec(0u32..20_000, 2..100)) {
        // Arrivals: nominal 10 ms spacing with bounded added noise (µs).
        let mut j = JitterEstimator::new(8_000);
        let mut ts = 0u32;
        for (i, noise) in arrival_noise.iter().enumerate() {
            let arrival = i as f64 * 0.010 + *noise as f64 * 1e-6;
            j.on_packet(arrival, ts);
            ts = ts.wrapping_add(80);
        }
        let jit = j.jitter_secs();
        prop_assert!(jit >= 0.0);
        // Noise ≤ 20 ms per packet bounds deviation to ≤ 30 ms per step.
        prop_assert!(jit < 0.040, "jitter {jit}");
    }

    #[test]
    fn efsm_counter_never_miscounts(events in proptest::collection::vec(0u8..3, 1..80)) {
        // A machine counting "a" events; arbitrary interleavings of a/b/c
        // must leave the counter equal to the number of "a"s delivered.
        let mut def = MachineDef::new("m");
        let s = def.add_state("S");
        def.add_transition(s, "a", s).action(|ctx| { ctx.locals.increment("n"); });
        def.add_transition(s, "b", s);
        def.set_unmatched_policy(vids::efsm::machine::UnmatchedPolicy::Ignore);
        let def = def.build().unwrap();
        let mut m = MachineInstance::new(&def);
        let mut globals = VarMap::new();
        let mut expected = 0u64;
        for e in &events {
            let name = ["a", "b", "c"][*e as usize];
            m.step(&def, &Event::data(name), &mut globals);
            if *e == 0 { expected += 1; }
        }
        prop_assert_eq!(m.locals().uint("n").unwrap_or(0), expected);
    }

    #[test]
    fn classifier_never_panics_on_random_payloads(sip in ".{0,200}", rtp in proptest::collection::vec(any::<u8>(), 0..100)) {
        use vids::netsim::packet::{Address, Packet, Payload};
        use vids::netsim::time::SimTime;
        for payload in [Payload::Sip(sip.clone()), Payload::Rtp(rtp.clone()), Payload::Raw(rtp.clone())] {
            let pkt = Packet {
                src: Address::new(10, 0, 0, 1, 5060),
                dst: Address::new(10, 2, 0, 1, 5060),
                payload,
                id: 0,
                sent_at: SimTime::ZERO,
            };
            let _ = vids::core::classify::classify(&pkt);
        }
    }

    #[test]
    fn vids_engine_never_panics_on_random_sip(texts in proptest::collection::vec(".{0,150}", 1..20)) {
        use vids::netsim::packet::{Address, Packet, Payload};
        use vids::netsim::time::SimTime;
        let mut vids = vids::core::Vids::new(vids::core::Config::default());
        for (i, t) in texts.iter().enumerate() {
            let pkt = Packet {
                src: Address::new(10, 0, 0, 1, 5060),
                dst: Address::new(10, 2, 0, 1, 5060),
                payload: Payload::Sip(t.clone()),
                id: i as u64,
                sent_at: SimTime::ZERO,
            };
            vids.process(&pkt, SimTime::from_millis(i as u64 * 10), &mut vids::core::NullSink);
        }
    }
}

/// Model-based test of the monitor: random *valid* call flows — arbitrary
/// retransmission counts, optional ringing, interleaved in-profile media,
/// lossy teardown — must never trip the specification machines.
mod valid_flows {
    use proptest::prelude::*;
    use vids::core::{Config, CostModel, Vids};
    use vids::netsim::packet::{Address, Packet, Payload};
    use vids::netsim::time::SimTime;
    use vids::rtp::packet::RtpPacket;
    use vids::sdp::{Codec, SessionDescription};
    use vids::sip::{Method, Request, StatusCode};

    const CALLER: Address = Address::new(10, 1, 0, 10, 5060);
    const CALLEE: Address = Address::new(10, 2, 0, 10, 5060);

    #[derive(Debug, Clone)]
    struct FlowShape {
        invite_retrans: usize,
        ringing_count: usize,
        ok_retrans: usize,
        media_packets: u16,
        media_loss_stride: u16,
        bye_retrans: usize,
        drop_bye_ok: bool,
    }

    fn arb_flow() -> impl Strategy<Value = FlowShape> {
        (
            0usize..3,
            0usize..4,
            0usize..3,
            1u16..60,
            2u16..20,
            0usize..3,
            any::<bool>(),
        )
            .prop_map(
                |(
                    invite_retrans,
                    ringing_count,
                    ok_retrans,
                    media_packets,
                    media_loss_stride,
                    bye_retrans,
                    drop_bye_ok,
                )| FlowShape {
                    invite_retrans,
                    ringing_count,
                    ok_retrans,
                    media_packets,
                    media_loss_stride,
                    bye_retrans,
                    drop_bye_ok,
                },
            )
    }

    fn run_flow(shape: &FlowShape) -> Vec<vids::core::Alert> {
        let mut vids = Vids::with_cost(Config::default(), CostModel::free());
        let mut t = 0u64;
        let mut step = |vids: &mut Vids, src: Address, dst: Address, payload: Payload| {
            t += 20;
            let mut sink = vids::core::CollectSink::new();
            vids.process(
                &Packet {
                    src,
                    dst,
                    payload,
                    id: t,
                    sent_at: SimTime::ZERO,
                },
                SimTime::from_millis(t),
                &mut sink,
            );
            sink.into_alerts()
        };

        let sdp = SessionDescription::audio_offer("a", "10.1.0.10", 20_000, &[Codec::G729]);
        let invite = Request::invite(
            &vids::sip::SipUri::new("a", "a.example.com"),
            &vids::sip::SipUri::new("b", "b.example.com"),
            "prop-flow",
        )
        .with_body(vids::sdp::MIME_TYPE, sdp.to_string());
        for _ in 0..=shape.invite_retrans {
            step(&mut vids, CALLER, CALLEE, Payload::Sip(invite.to_string()));
        }
        for _ in 0..shape.ringing_count {
            let ringing = invite.response(StatusCode::RINGING).with_to_tag("tt");
            step(&mut vids, CALLEE, CALLER, Payload::Sip(ringing.to_string()));
        }
        let answer = SessionDescription::audio_offer("b", "10.2.0.10", 30_000, &[Codec::G729]);
        let ok = invite
            .response(StatusCode::OK)
            .with_to_tag("tt")
            .with_body(vids::sdp::MIME_TYPE, answer.to_string());
        for _ in 0..=shape.ok_retrans {
            step(&mut vids, CALLEE, CALLER, Payload::Sip(ok.to_string()));
        }
        let ack = Request::in_dialog(Method::Ack, &invite, 1, Some("tt"));
        step(&mut vids, CALLER, CALLEE, Payload::Sip(ack.to_string()));

        // In-profile media with occasional single-packet loss.
        for i in 0..shape.media_packets {
            if i % shape.media_loss_stride == 0 && i > 0 {
                continue; // a lost packet: small seq/ts gap downstream
            }
            let rtp = RtpPacket::new(18, 100 + i, i as u32 * 80, 7).with_payload(vec![0; 10]);
            step(
                &mut vids,
                CALLER.with_port(20_000),
                CALLEE.with_port(30_000),
                Payload::Rtp(rtp.to_bytes()),
            );
        }

        let bye = Request::in_dialog(Method::Bye, &invite, 2, Some("tt"));
        for _ in 0..=shape.bye_retrans {
            step(&mut vids, CALLER, CALLEE, Payload::Sip(bye.to_string()));
        }
        if !shape.drop_bye_ok {
            let bye_ok = bye.response(StatusCode::OK);
            step(&mut vids, CALLEE, CALLER, Payload::Sip(bye_ok.to_string()));
        }
        // Flush timers far past every linger.
        vids.tick(SimTime::from_secs(60), &mut vids::core::NullSink);
        vids.tick(SimTime::from_secs(120), &mut vids::core::NullSink);
        vids.alerts().to_vec()
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]
        #[test]
        fn valid_flows_never_alert(shape in arb_flow()) {
            let alerts = run_flow(&shape);
            prop_assert!(alerts.is_empty(), "{shape:?} -> {alerts:?}");
        }
    }
}

/// Properties of the telemetry log₂ histogram: the bucket map is monotone,
/// recording conserves the total count, and merging is associative and
/// commutative (the pool merges shard histograms in arbitrary groupings, so
/// the grouping must never show in a snapshot).
mod telemetry_hist {
    use proptest::prelude::*;
    use vids::telemetry::{AtomicHistogram, HistSnapshot};

    fn record_all(values: &[u64]) -> HistSnapshot {
        let h = AtomicHistogram::new();
        for &v in values {
            h.record(v);
        }
        h.snapshot()
    }

    proptest! {
        #[test]
        fn bucket_of_is_monotone(a in any::<u64>(), b in any::<u64>()) {
            let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
            prop_assert!(
                vids::telemetry::bucket_of(lo) <= vids::telemetry::bucket_of(hi),
                "bucket_of({lo}) > bucket_of({hi})"
            );
        }

        #[test]
        fn every_value_lands_at_or_above_its_bucket_lower_bound(v in any::<u64>()) {
            let b = vids::telemetry::bucket_of(v);
            prop_assert!(vids::telemetry::bucket_lower_bound(b) <= v);
            if b + 1 < vids::telemetry::LOG2_BUCKETS {
                prop_assert!(v < vids::telemetry::bucket_lower_bound(b + 1));
            }
        }

        #[test]
        fn recording_conserves_the_total(values in proptest::collection::vec(any::<u64>(), 0..200)) {
            let snap = record_all(&values);
            prop_assert_eq!(snap.total(), values.len() as u64);
            let nonzero_sum: u64 = snap.nonzero().iter().map(|(_, n)| n).sum();
            prop_assert_eq!(nonzero_sum, values.len() as u64);
        }

        #[test]
        fn merge_is_associative_and_commutative(
            xs in proptest::collection::vec(any::<u64>(), 0..60),
            ys in proptest::collection::vec(any::<u64>(), 0..60),
            zs in proptest::collection::vec(any::<u64>(), 0..60),
        ) {
            let (x, y, z) = (record_all(&xs), record_all(&ys), record_all(&zs));

            // (x ∪ y) ∪ z == x ∪ (y ∪ z)
            let mut left = x.clone();
            left.merge(&y);
            left.merge(&z);
            let mut yz = y.clone();
            yz.merge(&z);
            let mut right = x.clone();
            right.merge(&yz);
            prop_assert_eq!(&left, &right);

            // x ∪ y == y ∪ x
            let mut xy = x.clone();
            xy.merge(&y);
            let mut yx = y.clone();
            yx.merge(&x);
            prop_assert_eq!(&xy, &yx);

            // And both equal one histogram fed the concatenation.
            let mut all = xs.clone();
            all.extend(&ys);
            all.extend(&zs);
            prop_assert_eq!(left, record_all(&all));
        }
    }
}

/// Model test for the tentpole data structure: `VarMap` — a sorted inline
/// small-vec keyed by interned symbols that spills to the heap past
/// [`vids::efsm::value::VARMAP_INLINE`] entries — must agree with a plain
/// `BTreeMap<String, Value>` under any op sequence. Twenty distinct keys
/// guarantee sequences that cross the inline→spill boundary.
mod varmap_model {
    use std::collections::BTreeMap;

    use proptest::prelude::*;
    use vids::efsm::{Value, VarMap};

    proptest! {
        #[test]
        fn varmap_matches_btreemap_model(
            ops in proptest::collection::vec((0u8..4, 0usize..20, any::<u64>()), 0..80)
        ) {
            let keys: Vec<String> = (0..20).map(|i| format!("pv_{i:02}")).collect();
            let mut map = VarMap::new();
            let mut model: BTreeMap<&str, Value> = BTreeMap::new();
            for (kind, key, val) in ops {
                let name = keys[key].as_str();
                match kind {
                    0 => {
                        map.set(name, val);
                        model.insert(name, Value::Uint(val));
                    }
                    1 => {
                        let s = format!("v{}", val % 50);
                        map.set(name, s.as_str());
                        model.insert(name, Value::Str(s));
                    }
                    2 => {
                        // Str and Sym compare as the same logical string, so
                        // the removed values match across representations.
                        let got = map.remove(name);
                        let want = model.remove(name);
                        prop_assert_eq!(got, want);
                    }
                    _ => {
                        let next = map.increment(name);
                        let want = model.get(name).and_then(Value::as_uint).unwrap_or(0) + 1;
                        model.insert(name, Value::Uint(want));
                        prop_assert_eq!(next, want);
                    }
                }
                prop_assert_eq!(map.len(), model.len());
            }
            for name in &keys {
                prop_assert_eq!(map.get(name.as_str()), model.get(name.as_str()));
            }
            // Same contents under iteration, whatever the internal order.
            let flat: BTreeMap<&str, &Value> = map.iter().collect();
            let model_ref: BTreeMap<&str, &Value> = model.iter().map(|(k, v)| (*k, v)).collect();
            prop_assert_eq!(flat, model_ref);
        }
    }
}
