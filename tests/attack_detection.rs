//! End-to-end detection of every §3 attack (experiment E6).
//!
//! Each test builds the Fig. 7 testbed with vids inline, lets legitimate
//! calls flow, launches one attack from an Internet host, and asserts that
//! vids raises exactly the expected attack label — with the victim-side
//! effect visible where the attack lands.

use vids::attacks::craft::{self, Target};
use vids::attacks::AttackKind;
use vids::core::alert::labels;
use vids::core::alert::AlertKind;
use vids::netsim::time::SimTime;
use vids::netsim::topology::{ua_addr, SITE_B};
use vids::scenario::{Testbed, TestbedConfig};

fn secs(s: u64) -> SimTime {
    SimTime::from_secs(s)
}

/// A testbed whose first call establishes quickly and holds long enough to
/// attack mid-call (a 600 s mean makes a sub-3 s holding time vanishingly
/// unlikely, so the sniffed call is still up when the attack lands).
fn attackable_config(seed: u64) -> TestbedConfig {
    let mut config = TestbedConfig::small(seed);
    config.workload.mean_interarrival_secs = 5.0;
    config.workload.mean_duration_secs = 600.0;
    config.workload.horizon = secs(30);
    config
}

fn labels_of(tb: &Testbed) -> Vec<String> {
    tb.vids_alerts().iter().map(|a| a.label.clone()).collect()
}

/// Schedules a one-shot attack three times, 100 ms apart: the Internet
/// cloud drops 0.42 % of packets, and a real attacker retransmits a forged
/// message that shows no effect.
fn schedule_redundant(
    tb: &mut Testbed,
    attacker: vids::netsim::engine::NodeId,
    at: SimTime,
    kind: AttackKind,
) {
    for k in 0..3u64 {
        tb.attacker_mut(attacker)
            .schedule(at + SimTime::from_millis(k * 100), kind.clone());
    }
}

#[test]
fn invite_flood_is_detected() {
    let mut tb = Testbed::build(&attackable_config(21));
    let (attacker, _) = tb.add_attacker();
    let victim_uri = vids::agents::ua_uri(0, vids::agents::site_domain(SITE_B));
    tb.attacker_mut(attacker).schedule(
        secs(5),
        AttackKind::InviteFlood {
            target_uri: victim_uri,
            target_addr: ua_addr(SITE_B, 0),
            rate_pps: 100.0,
            count: 50,
        },
    );
    tb.run_until(secs(20));
    assert!(
        labels_of(&tb).iter().any(|l| l == labels::INVITE_FLOOD),
        "alerts: {:?}",
        tb.vids_alerts()
    );
}

#[test]
fn bye_dos_is_detected_via_cross_protocol_interaction() {
    let mut tb = Testbed::build(&attackable_config(22));
    let (attacker, _) = tb.add_attacker();
    let snap = tb
        .run_until_call_established(0, secs(1), secs(120))
        .expect("no call established");
    let attack_at = tb.ent.sim.now() + secs(2);
    // The well-spoofed BYE tears the callee down; the caller keeps
    // streaming RTP, which is exactly Fig. 5's detection signature.
    let (victim, spoof_src) = snap.endpoints(Target::Callee);
    let message = craft::spoofed_bye(&snap, Target::Callee);
    schedule_redundant(
        &mut tb,
        attacker,
        attack_at,
        AttackKind::SpoofedBye {
            victim,
            message,
            spoof_src,
        },
    );
    let deadline = attack_at + secs(10);
    tb.run_until(deadline);
    assert!(
        labels_of(&tb).iter().any(|l| l == labels::RTP_AFTER_BYE),
        "alerts: {:?}",
        tb.vids_alerts()
    );
    // Victim effect: the callee actually tore the call down prematurely.
    let byes: u64 = (0..2).map(|i| tb.ua_b(i).stats().byes_received).sum();
    assert!(byes >= 1);
}

#[test]
fn lazy_spoofed_bye_is_caught_at_the_sip_layer() {
    let mut tb = Testbed::build(&attackable_config(23));
    let (attacker, _) = tb.add_attacker();
    let mut snap = tb
        .run_until_call_established(0, secs(1), secs(120))
        .expect("no call established");
    // A lazy attacker who did not sniff the tags forges garbage ones.
    snap.caller_from.set_tag("forged-tag");
    snap.callee_to.set_tag("forged-tag-2");
    let attack_at = tb.ent.sim.now() + secs(2);
    let (victim, spoof_src) = snap.endpoints(Target::Callee);
    let message = craft::spoofed_bye(&snap, Target::Callee);
    schedule_redundant(
        &mut tb,
        attacker,
        attack_at,
        AttackKind::SpoofedBye {
            victim,
            message,
            spoof_src,
        },
    );
    tb.run_until(attack_at + secs(5));
    assert!(
        labels_of(&tb).iter().any(|l| l == labels::SPOOFED_BYE),
        "alerts: {:?}",
        tb.vids_alerts()
    );
}

#[test]
fn cancel_dos_with_foreign_tags_is_detected() {
    let mut tb = Testbed::build(&attackable_config(24));
    let (attacker, _) = tb.add_attacker();
    // Catch a call in its ringing phase (the 2 s answer delay window).
    let mut now = tb.ent.sim.now();
    let snap = loop {
        now += SimTime::from_millis(200);
        tb.run_until(now);
        if let Some(snap) = tb.sniff_ringing_call(0) {
            break snap;
        }
        assert!(now < secs(120), "no ringing call found");
    };
    let mut lazy = snap.clone();
    lazy.caller_from.set_tag("evil");
    let (victim, spoof_src) = lazy.endpoints(Target::Callee);
    let message = craft::spoofed_cancel(&lazy);
    schedule_redundant(
        &mut tb,
        attacker,
        now,
        AttackKind::SpoofedCancel {
            victim,
            message,
            spoof_src,
        },
    );
    tb.run_until(now + secs(5));
    assert!(
        labels_of(&tb).iter().any(|l| l == labels::SPOOFED_CANCEL),
        "alerts: {:?}",
        tb.vids_alerts()
    );
}

#[test]
fn media_spam_is_detected() {
    let mut tb = Testbed::build(&attackable_config(25));
    let (attacker, _) = tb.add_attacker();
    let snap = tb
        .run_until_call_established(0, secs(1), secs(120))
        .expect("no call established");
    let attack_at = tb.ent.sim.now() + secs(1);
    // Fabricated RTP with the sniffed SSRC and a big seq/timestamp jump
    // (§3.2: "by having the same SSRC identifier with higher sequence
    // number or timestamp in the spoofed RTP packets").
    let (seq, ts) = snap.caller_rtp_cursor.unwrap();
    tb.attacker_mut(attacker).schedule(
        attack_at,
        AttackKind::MediaSpam {
            victim: snap.callee_media.unwrap(),
            ssrc: snap.caller_ssrc.unwrap(),
            payload_type: 18,
            start_seq: seq.wrapping_add(2_000),
            start_timestamp: ts.wrapping_add(500_000),
            spoof_src: snap.caller_media.unwrap(),
            rate_pps: 100.0,
            count: 20,
        },
    );
    tb.run_until(attack_at + secs(5));
    assert!(
        labels_of(&tb).iter().any(|l| l == labels::MEDIA_SPAM),
        "alerts: {:?}",
        tb.vids_alerts()
    );
}

#[test]
fn rtp_flood_from_foreign_source_is_detected() {
    let mut tb = Testbed::build(&attackable_config(26));
    let (attacker, _) = tb.add_attacker();
    let snap = tb
        .run_until_call_established(0, secs(1), secs(120))
        .expect("no call established");
    let attack_at = tb.ent.sim.now() + secs(1);
    tb.attacker_mut(attacker).schedule(
        attack_at,
        AttackKind::RtpFlood {
            victim: snap.callee_media.unwrap(),
            payload_type: 18,
            payload_bytes: 160,
            rate_pps: 500.0,
            count: 100,
        },
    );
    tb.run_until(attack_at + secs(5));
    assert!(
        labels_of(&tb)
            .iter()
            .any(|l| l == labels::RTP_FOREIGN_SOURCE),
        "alerts: {:?}",
        tb.vids_alerts()
    );
}

#[test]
fn codec_change_flood_is_detected() {
    let mut tb = Testbed::build(&attackable_config(27));
    let (attacker, _) = tb.add_attacker();
    let snap = tb
        .run_until_call_established(0, secs(1), secs(120))
        .expect("no call established");
    let attack_at = tb.ent.sim.now() + secs(1);
    // §3.2: "changing the encoding scheme or flooding with RTP packets":
    // spoof the caller's media source but claim G.711 instead of G.729.
    let (seq, ts) = snap.caller_rtp_cursor.unwrap();
    tb.attacker_mut(attacker).schedule(
        attack_at,
        AttackKind::MediaSpam {
            victim: snap.callee_media.unwrap(),
            ssrc: snap.caller_ssrc.unwrap(),
            payload_type: 0, // PCMU
            start_seq: seq,
            start_timestamp: ts,
            spoof_src: snap.caller_media.unwrap(),
            rate_pps: 200.0,
            count: 50,
        },
    );
    tb.run_until(attack_at + secs(5));
    assert!(
        labels_of(&tb)
            .iter()
            .any(|l| l == labels::RTP_CODEC_VIOLATION),
        "alerts: {:?}",
        tb.vids_alerts()
    );
}

#[test]
fn call_hijack_reinvite_is_detected() {
    let mut tb = Testbed::build(&attackable_config(28));
    let (attacker, attacker_addr) = tb.add_attacker();
    let snap = tb
        .run_until_call_established(0, secs(1), secs(120))
        .expect("no call established");
    let attack_at = tb.ent.sim.now() + secs(1);
    let (victim, spoof_src) = snap.endpoints(Target::Callee);
    let message = craft::spoofed_reinvite(&snap, attacker_addr.with_port(44_000));
    schedule_redundant(
        &mut tb,
        attacker,
        attack_at,
        AttackKind::ReinviteHijack {
            victim,
            message,
            spoof_src,
        },
    );
    tb.run_until(attack_at + secs(5));
    assert!(
        labels_of(&tb).iter().any(|l| l == labels::CALL_HIJACK),
        "alerts: {:?}",
        tb.vids_alerts()
    );
    // Victim effect: the callee redirected its media to the attacker.
    let hijacked = tb
        .ent
        .sim
        .node_as::<vids::netsim::node::Host>(attacker)
        .app_as::<vids::attacks::Attacker>()
        .stats()
        .packets_received;
    assert!(
        hijacked > 0,
        "attacker received {hijacked} hijacked packets"
    );
}

#[test]
fn billing_fraud_is_detected() {
    let mut config = attackable_config(29);
    config.workload.mean_duration_secs = 8.0;
    // Site-A UA 0 misbehaves: BYE for billing, media keeps flowing.
    config.fraud_caller_0 = Some(secs(5));
    let mut tb = Testbed::build(&config);
    tb.run_until(secs(120));
    assert!(
        labels_of(&tb).iter().any(|l| l == labels::RTP_AFTER_BYE),
        "alerts: {:?}",
        tb.vids_alerts()
    );
}

#[test]
fn drdos_reflection_is_detected() {
    let mut tb = Testbed::build(&attackable_config(30));
    let (attacker, _) = tb.add_attacker();
    // Reflect off site B's UAs (which answer OPTIONS with 200) toward a
    // site-A victim: both probe and reflected response cross the monitor.
    let victim = vids::netsim::topology::ua_addr(vids::netsim::topology::SITE_A, 1);
    let reflectors = vec![ua_addr(SITE_B, 0), ua_addr(SITE_B, 1)];
    tb.attacker_mut(attacker).schedule(
        secs(5),
        AttackKind::Drdos {
            reflectors,
            victim,
            per_reflector: 15,
            rate_pps: 200.0,
        },
    );
    tb.run_until(secs(20));
    assert!(
        labels_of(&tb).iter().any(|l| l == labels::RESPONSE_FLOOD),
        "alerts: {:?}",
        tb.vids_alerts()
    );
}

#[test]
fn attack_alerts_carry_attack_kind_and_time() {
    let mut tb = Testbed::build(&attackable_config(31));
    let (attacker, _) = tb.add_attacker();
    let victim_uri = vids::agents::ua_uri(0, vids::agents::site_domain(SITE_B));
    tb.attacker_mut(attacker).schedule(
        secs(5),
        AttackKind::InviteFlood {
            target_uri: victim_uri,
            target_addr: ua_addr(SITE_B, 0),
            rate_pps: 200.0,
            count: 40,
        },
    );
    tb.run_until(secs(15));
    let alert = tb
        .vids_alerts()
        .iter()
        .find(|a| a.label == labels::INVITE_FLOOD)
        .expect("flood alert");
    assert_eq!(alert.kind, AlertKind::Attack);
    // The flood started at t=5 s and the 11th INVITE lands ~55 ms later.
    assert!(
        alert.time_ms >= 5_000 && alert.time_ms < 7_000,
        "t={}",
        alert.time_ms
    );
}
