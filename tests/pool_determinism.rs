//! Determinism of the sharded engine: whatever the shard count, and however
//! the batch boundaries fall, `VidsPool` must produce byte-identical alert
//! sequences — and packet-at-a-time it must match a plain `Vids` exactly.
//!
//! The trace mixes clean calls, an INVITE flood, a BYE-DoS (spoofed BYE
//! followed by media, crafted with `vids::attacks::craft`), a DRDoS response
//! reflection, unassociated RTP, malformed datagrams and a registration
//! hijack, so every alert path crosses the pool's routing and merge logic.

mod common;

use common::mixed_trace;
use vids::core::alert::{labels, Alert, AlertKind};
use vids::core::{CollectSink, Config, CostModel, Monitor, NullSink, Vids, VidsPool};
use vids::netsim::packet::Packet;
use vids::netsim::time::SimTime;

/// Replays the trace through a pool in batches of `batch_size`, then
/// flushes, returning the persistent alert log.
fn run_pool(shards: usize, batch_size: usize) -> (Vec<Alert>, vids::core::VidsCounters) {
    let config = Config::builder().shards(shards).build().unwrap();
    let mut pool = VidsPool::with_cost(config, CostModel::free());
    let trace = mixed_trace();
    for chunk in trace.chunks(batch_size) {
        let now = chunk[0].1;
        let packets: Vec<Packet> = chunk.iter().map(|(p, _)| p.clone()).collect();
        pool.process_batch(&packets, now, &mut NullSink);
    }
    pool.tick(SimTime::from_secs(30), &mut NullSink);
    pool.tick(SimTime::from_secs(40), &mut NullSink);
    (pool.alerts().to_vec(), pool.counters())
}

#[test]
fn shard_count_never_changes_the_alert_sequence() {
    let (reference, ref_counters) = run_pool(1, 25);
    assert!(
        reference.iter().any(|a| a.label == labels::INVITE_FLOOD),
        "flood missing: {reference:?}"
    );
    assert!(reference.iter().any(|a| a.label == labels::RTP_AFTER_BYE));
    assert!(reference.iter().any(|a| a.label == labels::RESPONSE_FLOOD));
    assert!(reference
        .iter()
        .any(|a| a.label == labels::REGISTRATION_HIJACK));
    assert!(reference.iter().any(|a| a.label == "unassociated-rtp"));
    assert!(reference.iter().any(|a| a.label.starts_with("malformed-")));
    for shards in [4usize, 8] {
        let (alerts, counters) = run_pool(shards, 25);
        assert_eq!(reference, alerts, "{shards} shards diverged from 1 shard");
        assert_eq!(ref_counters, counters);
    }
}

/// Like [`run_pool`], but with telemetry enabled; returns the
/// wall-clock-free merged snapshot and the alert log.
fn run_pool_telemetry(
    shards: usize,
    batch_size: usize,
) -> (vids::telemetry::SlabSnapshot, Vec<Alert>) {
    let config = Config::builder().shards(shards).build().unwrap();
    let mut pool = VidsPool::with_cost(config, CostModel::free());
    pool.enable_telemetry(64);
    let trace = mixed_trace();
    for chunk in trace.chunks(batch_size) {
        let now = chunk[0].1;
        let packets: Vec<Packet> = chunk.iter().map(|(p, _)| p.clone()).collect();
        pool.process_batch(&packets, now, &mut NullSink);
    }
    pool.tick(SimTime::from_secs(30), &mut NullSink);
    pool.tick(SimTime::from_secs(40), &mut NullSink);
    let snap = pool.telemetry_snapshot(SimTime::from_secs(40)).unwrap();
    (snap.deterministic(), pool.alerts().to_vec())
}

#[test]
fn telemetry_snapshot_is_shard_count_invariant() {
    use vids::telemetry::Counter;

    let (reference, ref_alerts) = run_pool_telemetry(1, 25);
    assert!(reference.counter(Counter::Transitions) > 0);
    assert!(reference.counter(Counter::SyncDeliveries) > 0);
    assert!(reference.counter(Counter::AlertsAttack) > 0);
    assert_eq!(
        reference.counter(Counter::MergeNanos),
        0,
        "deterministic() must zero wall-clock slots"
    );
    // Machine-attributed alerts carry the offending scope's recent
    // transitions; telemetry is on, so none of them may be empty.
    let machine_labels = [
        labels::INVITE_FLOOD,
        labels::RTP_AFTER_BYE,
        labels::RESPONSE_FLOOD,
        labels::REGISTRATION_HIJACK,
    ];
    for label in machine_labels {
        let alert = ref_alerts
            .iter()
            .find(|a| a.label == label)
            .unwrap_or_else(|| panic!("{label} missing"));
        assert!(!alert.trace.is_empty(), "{label} alert has no trace");
    }
    assert!(reference.gauge(vids::telemetry::Gauge::LiveCalls) > 0);
    for shards in [4usize, 8] {
        let (snap, alerts) = run_pool_telemetry(shards, 25);
        assert_eq!(
            reference, snap,
            "{shards}-shard merged telemetry diverged from 1 shard"
        );
        assert_eq!(ref_alerts, alerts);
    }
}

#[test]
fn batch_boundaries_never_change_the_alert_sequence() {
    let (reference, _) = run_pool(4, 25);
    for batch_size in [1usize, 7, 1_000] {
        let (alerts, _) = run_pool(4, batch_size);
        assert_eq!(
            reference, alerts,
            "batch size {batch_size} diverged from 25"
        );
    }
}

#[test]
fn pool_matches_the_plain_engine_packet_at_a_time() {
    let mut plain = Vids::with_cost(Config::default(), CostModel::free());
    let pool_config = Config::builder().shards(4).build().unwrap();
    let mut pool = VidsPool::with_cost(pool_config, CostModel::free());
    let mut plain_sink = CollectSink::new();
    let mut pool_sink = CollectSink::new();
    for (packet, at) in mixed_trace() {
        plain.process(&packet, at, &mut plain_sink);
        Monitor::process(&mut pool, &packet, at, &mut pool_sink);
    }
    for flush in [30u64, 40] {
        plain.tick(SimTime::from_secs(flush), &mut plain_sink);
        pool.tick(SimTime::from_secs(flush), &mut pool_sink);
    }
    assert!(!plain_sink.is_empty());
    assert_eq!(plain_sink.alerts(), pool_sink.alerts());
    assert_eq!(plain.alerts(), pool.alerts());
    assert_eq!(plain.counters(), pool.counters());
    assert_eq!(plain.monitored_calls(), pool.monitored_calls());
    // Every alert the attacks were built to trigger is attributed the same
    // kind either way.
    assert!(pool
        .alerts()
        .iter()
        .any(|a| a.kind == AlertKind::Attack && a.label == labels::RTP_AFTER_BYE));
}

/// The persistent worker runtime reuses queue/classify/merge buffers across
/// batches. Reusing one pool for 50 consecutive batches must be
/// byte-identical to the fresh-pool reference, and two independent pools
/// replaying the same 50 batches must agree with each other exactly —
/// i.e. no state leaks between batches through the recycled buffers and no
/// thread-schedule dependence survives the merge.
#[test]
fn one_pool_reused_across_fifty_batches_is_byte_identical() {
    let (reference, ref_counters) = run_pool(4, 25);
    let trace = mixed_trace();
    let batch = (trace.len() / 50).max(1);
    assert!(
        trace.chunks(batch).count() >= 50,
        "trace too short to form 50 batches"
    );
    let mut runs = Vec::new();
    for _ in 0..2 {
        let config = Config::builder().shards(4).build().unwrap();
        let mut pool = VidsPool::with_cost(config, CostModel::free());
        for chunk in trace.chunks(batch) {
            let now = chunk[0].1;
            let packets: Vec<Packet> = chunk.iter().map(|(p, _)| p.clone()).collect();
            pool.process_batch(&packets, now, &mut NullSink);
        }
        pool.tick(SimTime::from_secs(30), &mut NullSink);
        pool.tick(SimTime::from_secs(40), &mut NullSink);
        runs.push((pool.alerts().to_vec(), pool.counters()));
    }
    assert_eq!(runs[0], runs[1], "two identical 50-batch replays diverged");
    assert_eq!(
        format!("{:?}", runs[0].0),
        format!("{:?}", runs[1].0),
        "alert renderings diverged between replays"
    );
    assert_eq!(
        runs[0].0, reference,
        "50-batch replay diverged from reference"
    );
    assert_eq!(runs[0].1, ref_counters);
}

/// Interleaves every ingestion API the pool offers — per-packet
/// `Monitor::process`, `process_batch`, `process_batch`, and forced
/// timer sweeps mid-stream — and requires the alert log and counters to be
/// shard-count invariant anyway.
fn run_interleaved(shards: usize) -> (Vec<Alert>, vids::core::VidsCounters) {
    let config = Config::builder().shards(shards).build().unwrap();
    let mut pool = VidsPool::with_cost(config, CostModel::free());
    let mut sink = CollectSink::new();
    let trace = mixed_trace();
    for (i, chunk) in trace.chunks(13).enumerate() {
        let now = chunk[0].1;
        match i % 3 {
            0 => {
                for (packet, at) in chunk {
                    Monitor::process(&mut pool, packet, *at, &mut sink);
                }
            }
            1 => {
                let packets: Vec<Packet> = chunk.iter().map(|(p, _)| p.clone()).collect();
                pool.process_batch(&packets, now, &mut NullSink);
            }
            _ => {
                let packets: Vec<Packet> = chunk.iter().map(|(p, _)| p.clone()).collect();
                pool.process_batch(&packets, now, &mut sink);
                // Force a sweep mid-stream at the batch's last timestamp.
                pool.tick(chunk[chunk.len() - 1].1, &mut sink);
            }
        }
    }
    pool.tick(SimTime::from_secs(30), &mut NullSink);
    pool.tick(SimTime::from_secs(40), &mut NullSink);
    (pool.alerts().to_vec(), pool.counters())
}

#[test]
fn interleaved_apis_are_shard_count_invariant() {
    let (reference, ref_counters) = run_interleaved(1);
    assert!(
        reference.iter().any(|a| a.label == labels::INVITE_FLOOD),
        "interleaved run lost the flood: {reference:?}"
    );
    assert!(reference.iter().any(|a| a.label == labels::RTP_AFTER_BYE));
    for shards in [4usize, 8] {
        let (alerts, counters) = run_interleaved(shards);
        assert_eq!(
            reference, alerts,
            "interleaved APIs at {shards} shards diverged from 1 shard"
        );
        assert_eq!(ref_counters, counters);
    }
}

/// Deterministic xorshift64 step; the stress test below must be replayable,
/// so no ambient randomness.
fn xorshift(state: &mut u64) -> u64 {
    *state ^= *state << 13;
    *state ^= *state >> 7;
    *state ^= *state << 17;
    *state
}

/// Seeded stress: one persistent pool ingests the trace in random-size
/// batches (1..=32 packets) with random forced sweeps, while a plain `Vids`
/// consumes the identical stream packet-at-a-time. Both must emit the same
/// alerts, in the same order, with the same counters.
#[test]
fn randomized_batch_sizes_match_the_plain_engine() {
    let trace = mixed_trace();
    for shards in [1usize, 4, 8] {
        let mut rng: u64 = 0x9E37_79B9_7F4A_7C15;
        let mut plain = Vids::with_cost(Config::default(), CostModel::free());
        let config = Config::builder().shards(shards).build().unwrap();
        let mut pool = VidsPool::with_cost(config, CostModel::free());
        let mut plain_sink = CollectSink::new();
        let mut pool_sink = CollectSink::new();
        let mut i = 0;
        while i < trace.len() {
            let size = 1 + (xorshift(&mut rng) % 32) as usize;
            let end = (i + size).min(trace.len());
            let now = trace[i].1;
            let packets: Vec<Packet> = trace[i..end].iter().map(|(p, _)| p.clone()).collect();
            pool.process_batch(&packets, now, &mut pool_sink);
            for (packet, at) in &trace[i..end] {
                plain.process(packet, *at, &mut plain_sink);
            }
            if xorshift(&mut rng).is_multiple_of(5) {
                let at = trace[end - 1].1;
                plain.tick(at, &mut plain_sink);
                pool.tick(at, &mut pool_sink);
            }
            i = end;
        }
        for flush in [30u64, 40] {
            plain.tick(SimTime::from_secs(flush), &mut plain_sink);
            pool.tick(SimTime::from_secs(flush), &mut pool_sink);
        }
        assert!(!plain_sink.is_empty());
        assert_eq!(
            plain_sink.alerts(),
            pool_sink.alerts(),
            "{shards}-shard pool diverged from the plain engine under random batching"
        );
        assert_eq!(plain.alerts(), pool.alerts());
        assert_eq!(plain.counters(), pool.counters());
        assert_eq!(plain.monitored_calls(), pool.monitored_calls());
    }
}
