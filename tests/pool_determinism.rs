//! Determinism of the sharded engine: whatever the shard count, and however
//! the batch boundaries fall, `VidsPool` must produce byte-identical alert
//! sequences — and packet-at-a-time it must match a plain `Vids` exactly.
//!
//! The trace mixes clean calls, an INVITE flood, a BYE-DoS (spoofed BYE
//! followed by media, crafted with `vids::attacks::craft`), a DRDoS response
//! reflection, unassociated RTP, malformed datagrams and a registration
//! hijack, so every alert path crosses the pool's routing and merge logic.

use vids::attacks::craft::{self, Target};
use vids::core::alert::{labels, Alert, AlertKind};
use vids::core::{CollectSink, Config, CostModel, Monitor, Vids, VidsPool};
use vids::netsim::packet::{Address, Packet, Payload};
use vids::netsim::time::SimTime;
use vids::rtp::packet::RtpPacket;
use vids::sdp::{Codec, SessionDescription};
use vids::sip::headers::{CSeq, Header, NameAddr, Via};
use vids::sip::{Method, Request, SipUri, StatusCode};

fn pkt(src: Address, dst: Address, payload: Payload, at_ms: u64, id: u64) -> (Packet, SimTime) {
    let at = SimTime::from_millis(at_ms);
    (
        Packet {
            src,
            dst,
            payload,
            id,
            sent_at: at,
        },
        at,
    )
}

fn invite(call_id: &str, caller_ip: &str, media_port: u16) -> Request {
    let sdp = SessionDescription::audio_offer("alice", caller_ip, media_port, &[Codec::G729]);
    Request::invite(
        &SipUri::new("alice", "a.example.com"),
        &SipUri::new("bob", "b.example.com"),
        call_id,
    )
    .with_body(vids::sdp::MIME_TYPE, sdp.to_string())
}

/// A full clean call `k` starting at `t0`, with distinct endpoints and media
/// coordinates per call so calls land on different shards.
fn clean_call(trace: &mut Vec<(Packet, SimTime)>, k: u8, t0: u64) {
    let caller = Address::new(10, 1, 0, k, 5060);
    let callee = Address::new(10, 2, 0, k, 5060);
    let caller_ip = format!("10.1.0.{k}");
    let callee_ip = format!("10.2.0.{k}");
    let inv = invite(&format!("det-clean-{k}"), &caller_ip, 20_000);
    trace.push(pkt(caller, callee, Payload::Sip(inv.to_string()), t0, 0));
    let ringing = inv.response(StatusCode::RINGING).with_to_tag("tt");
    trace.push(pkt(
        callee,
        caller,
        Payload::Sip(ringing.to_string()),
        t0 + 30,
        0,
    ));
    let answer = SessionDescription::audio_offer("bob", &callee_ip, 30_000, &[Codec::G729]);
    let ok = inv
        .response(StatusCode::OK)
        .with_to_tag("tt")
        .with_body(vids::sdp::MIME_TYPE, answer.to_string());
    trace.push(pkt(
        callee,
        caller,
        Payload::Sip(ok.to_string()),
        t0 + 60,
        0,
    ));
    let ack = Request::in_dialog(Method::Ack, &inv, 1, Some("tt"));
    trace.push(pkt(
        caller,
        callee,
        Payload::Sip(ack.to_string()),
        t0 + 90,
        0,
    ));
    for i in 0..10u16 {
        let fwd = RtpPacket::new(18, 100 + i, (i as u32) * 80, 7).with_payload(vec![0; 10]);
        trace.push(pkt(
            caller.with_port(20_000),
            callee.with_port(30_000),
            Payload::Rtp(fwd.to_bytes()),
            t0 + 100 + i as u64 * 10,
            0,
        ));
        let rev = RtpPacket::new(18, 500 + i, (i as u32) * 80, 9).with_payload(vec![0; 10]);
        trace.push(pkt(
            callee.with_port(30_000),
            caller.with_port(20_000),
            Payload::Rtp(rev.to_bytes()),
            t0 + 105 + i as u64 * 10,
            0,
        ));
    }
    let bye = Request::in_dialog(Method::Bye, &inv, 2, Some("tt"));
    trace.push(pkt(
        caller,
        callee,
        Payload::Sip(bye.to_string()),
        t0 + 260,
        0,
    ));
    let bye_ok = bye.response(StatusCode::OK);
    trace.push(pkt(
        callee,
        caller,
        Payload::Sip(bye_ok.to_string()),
        t0 + 290,
        0,
    ));
}

fn register_packet(src: Address, registrar: Address, contact_ip: &str, expires: u32) -> Payload {
    let aor = SipUri::new("roamer", "b.example.com");
    let mut req = Request::new(Method::Register, SipUri::host_only("b.example.com"));
    req.headers
        .push(Header::Via(Via::udp(src.ip_string(), 5060, "z9hG4bK-r1")));
    req.headers
        .push(Header::From(NameAddr::new(aor.clone()).with_tag("rt")));
    req.headers.push(Header::To(NameAddr::new(aor)));
    req.headers.push(Header::CallId("det-reg".to_owned()));
    req.headers
        .push(Header::CSeq(CSeq::new(1, Method::Register)));
    req.headers.push(Header::Contact(NameAddr::new(SipUri::new(
        "roamer", contact_ip,
    ))));
    req.headers.push(Header::Expires(expires));
    req.headers.push(Header::ContentLength(0));
    let _ = registrar;
    Payload::Sip(req.to_string())
}

/// The full mixed trace, times strictly non-decreasing.
fn mixed_trace() -> Vec<(Packet, SimTime)> {
    let mut trace = Vec::new();

    // Clean calls, staggered.
    for k in 1..=3u8 {
        clean_call(&mut trace, k, (k as u64 - 1) * 40);
    }

    // INVITE flood against one phone (paper Fig. 4), via the attack crafts.
    let attacker = Address::new(172, 16, 0, 66, 5060);
    let victim_phone = Address::new(10, 2, 0, 9, 5060);
    let target = SipUri::new("bob9", "b.example.com");
    for i in 0..15u64 {
        let text = craft::flood_invite(&target, attacker, "flooder", &format!("det-flood-{i}"));
        trace.push(pkt(
            attacker,
            victim_phone,
            Payload::Sip(text),
            2_000 + i * 10,
            0,
        ));
    }

    // BYE DoS (paper §3.1 / Fig. 5): establish a call, forge its BYE from a
    // sniffed dialog snapshot, keep the media flowing past timer T.
    let caller = Address::new(10, 1, 0, 7, 5060);
    let callee = Address::new(10, 2, 0, 7, 5060);
    let inv = invite("det-victim", "10.1.0.7", 22_000);
    trace.push(pkt(caller, callee, Payload::Sip(inv.to_string()), 3_000, 0));
    let answer = SessionDescription::audio_offer("bob", "10.2.0.7", 32_000, &[Codec::G729]);
    let ok = inv
        .response(StatusCode::OK)
        .with_to_tag("tt")
        .with_body(vids::sdp::MIME_TYPE, answer.to_string());
    trace.push(pkt(callee, caller, Payload::Sip(ok.to_string()), 3_050, 0));
    let ack = Request::in_dialog(Method::Ack, &inv, 1, Some("tt"));
    trace.push(pkt(caller, callee, Payload::Sip(ack.to_string()), 3_100, 0));
    let snap = craft::DialogSnapshot {
        call_id: "det-victim".to_owned(),
        caller_from: NameAddr::new(SipUri::new("alice", "a.example.com")).with_tag("tag-alice"),
        callee_to: NameAddr::new(SipUri::new("bob", "b.example.com")).with_tag("tt"),
        caller_addr: caller,
        callee_addr: callee,
        callee_media: Some(callee.with_port(32_000)),
        caller_media: Some(caller.with_port(22_000)),
        caller_ssrc: Some(7),
        caller_rtp_cursor: Some((40, 3_200)),
        invite_branch: "z9hG4bK-det-victim".to_owned(),
    };
    let (victim, spoof) = snap.endpoints(Target::Callee);
    let bye = craft::spoofed_bye(&snap, Target::Callee);
    trace.push(pkt(
        spoof.with_port(5060),
        victim,
        Payload::Sip(bye),
        3_500,
        0,
    ));
    // The oblivious caller keeps streaming well past T = 200 ms.
    for i in 0..30u16 {
        let media = RtpPacket::new(18, 40 + i, (40 + i as u32) * 80, 7).with_payload(vec![0; 10]);
        trace.push(pkt(
            caller.with_port(22_000),
            callee.with_port(32_000),
            Payload::Rtp(media.to_bytes()),
            3_520 + i as u64 * 40,
            0,
        ));
    }

    // DRDoS reflection: responses to a call nobody monitored.
    let ghost = invite("det-ghost", "10.9.9.9", 24_000);
    let ghost_ok = ghost.response(StatusCode::OK);
    for i in 0..12u64 {
        trace.push(pkt(
            Address::new(172, 16, 0, 80, 5060),
            Address::new(10, 2, 0, 5, 5060),
            Payload::Sip(ghost_ok.to_string()),
            5_000 + i * 5,
            0,
        ));
    }

    // Strays: unassociated RTP, malformed SIP and RTP, raw background noise.
    let stray = RtpPacket::new(18, 1, 0, 3).with_payload(vec![0; 10]);
    trace.push(pkt(
        Address::new(172, 16, 0, 90, 40_000),
        Address::new(10, 2, 0, 2, 41_000),
        Payload::Rtp(stray.to_bytes()),
        5_200,
        0,
    ));
    trace.push(pkt(
        Address::new(172, 16, 0, 90, 5060),
        Address::new(10, 2, 0, 2, 5060),
        Payload::Sip("garbage".to_owned()),
        5_210,
        0,
    ));
    trace.push(pkt(
        Address::new(172, 16, 0, 90, 40_000),
        Address::new(10, 2, 0, 2, 41_000),
        Payload::Rtp(vec![0x80; 3]),
        5_220,
        0,
    ));
    trace.push(pkt(
        Address::new(172, 16, 0, 90, 1_000),
        Address::new(10, 2, 0, 2, 1_000),
        Payload::Raw(vec![1, 2, 3]),
        5_230,
        0,
    ));

    // Registration, then a hijack attempt from a foreign source.
    let owner = Address::new(10, 0, 0, 20, 5060);
    let registrar = Address::new(10, 2, 0, 1, 5060);
    trace.push(pkt(
        owner,
        registrar,
        register_packet(owner, registrar, "10.0.0.20", 3_600),
        5_400,
        0,
    ));
    let hijacker = Address::new(172, 16, 0, 66, 5060);
    trace.push(pkt(
        hijacker,
        registrar,
        register_packet(hijacker, registrar, "172.16.0.66", 3_600),
        5_500,
        0,
    ));

    // Stable order with unique packet ids.
    trace.sort_by_key(|(p, at)| (*at, p.id));
    for (i, (p, _)) in trace.iter_mut().enumerate() {
        p.id = i as u64;
    }
    trace
}

/// Replays the trace through a pool in batches of `batch_size`, then
/// flushes, returning the persistent alert log.
fn run_pool(shards: usize, batch_size: usize) -> (Vec<Alert>, vids::core::VidsCounters) {
    let config = Config::builder().shards(shards).build().unwrap();
    let mut pool = VidsPool::with_cost(config, CostModel::free());
    let trace = mixed_trace();
    for chunk in trace.chunks(batch_size) {
        let now = chunk[0].1;
        let packets: Vec<Packet> = chunk.iter().map(|(p, _)| p.clone()).collect();
        pool.process_batch(&packets, now);
    }
    pool.tick(SimTime::from_secs(30));
    pool.tick(SimTime::from_secs(40));
    (pool.alerts().to_vec(), pool.counters())
}

#[test]
fn shard_count_never_changes_the_alert_sequence() {
    let (reference, ref_counters) = run_pool(1, 25);
    assert!(
        reference.iter().any(|a| a.label == labels::INVITE_FLOOD),
        "flood missing: {reference:?}"
    );
    assert!(reference.iter().any(|a| a.label == labels::RTP_AFTER_BYE));
    assert!(reference.iter().any(|a| a.label == labels::RESPONSE_FLOOD));
    assert!(reference
        .iter()
        .any(|a| a.label == labels::REGISTRATION_HIJACK));
    assert!(reference.iter().any(|a| a.label == "unassociated-rtp"));
    assert!(reference.iter().any(|a| a.label.starts_with("malformed-")));
    for shards in [4usize, 8] {
        let (alerts, counters) = run_pool(shards, 25);
        assert_eq!(reference, alerts, "{shards} shards diverged from 1 shard");
        assert_eq!(ref_counters, counters);
    }
}

/// Like [`run_pool`], but with telemetry enabled; returns the
/// wall-clock-free merged snapshot and the alert log.
fn run_pool_telemetry(
    shards: usize,
    batch_size: usize,
) -> (vids::telemetry::SlabSnapshot, Vec<Alert>) {
    let config = Config::builder().shards(shards).build().unwrap();
    let mut pool = VidsPool::with_cost(config, CostModel::free());
    pool.enable_telemetry(64);
    let trace = mixed_trace();
    for chunk in trace.chunks(batch_size) {
        let now = chunk[0].1;
        let packets: Vec<Packet> = chunk.iter().map(|(p, _)| p.clone()).collect();
        pool.process_batch(&packets, now);
    }
    pool.tick(SimTime::from_secs(30));
    pool.tick(SimTime::from_secs(40));
    let snap = pool.telemetry_snapshot(SimTime::from_secs(40)).unwrap();
    (snap.deterministic(), pool.alerts().to_vec())
}

#[test]
fn telemetry_snapshot_is_shard_count_invariant() {
    use vids::telemetry::Counter;

    let (reference, ref_alerts) = run_pool_telemetry(1, 25);
    assert!(reference.counter(Counter::Transitions) > 0);
    assert!(reference.counter(Counter::SyncDeliveries) > 0);
    assert!(reference.counter(Counter::AlertsAttack) > 0);
    assert_eq!(
        reference.counter(Counter::MergeNanos),
        0,
        "deterministic() must zero wall-clock slots"
    );
    // Machine-attributed alerts carry the offending scope's recent
    // transitions; telemetry is on, so none of them may be empty.
    let machine_labels = [
        labels::INVITE_FLOOD,
        labels::RTP_AFTER_BYE,
        labels::RESPONSE_FLOOD,
        labels::REGISTRATION_HIJACK,
    ];
    for label in machine_labels {
        let alert = ref_alerts
            .iter()
            .find(|a| a.label == label)
            .unwrap_or_else(|| panic!("{label} missing"));
        assert!(!alert.trace.is_empty(), "{label} alert has no trace");
    }
    assert!(reference.gauge(vids::telemetry::Gauge::LiveCalls) > 0);
    for shards in [4usize, 8] {
        let (snap, alerts) = run_pool_telemetry(shards, 25);
        assert_eq!(
            reference, snap,
            "{shards}-shard merged telemetry diverged from 1 shard"
        );
        assert_eq!(ref_alerts, alerts);
    }
}

#[test]
fn batch_boundaries_never_change_the_alert_sequence() {
    let (reference, _) = run_pool(4, 25);
    for batch_size in [1usize, 7, 1_000] {
        let (alerts, _) = run_pool(4, batch_size);
        assert_eq!(
            reference, alerts,
            "batch size {batch_size} diverged from 25"
        );
    }
}

#[test]
fn pool_matches_the_plain_engine_packet_at_a_time() {
    let mut plain = Vids::with_cost(Config::default(), CostModel::free());
    let pool_config = Config::builder().shards(4).build().unwrap();
    let mut pool = VidsPool::with_cost(pool_config, CostModel::free());
    let mut plain_sink = CollectSink::new();
    let mut pool_sink = CollectSink::new();
    for (packet, at) in mixed_trace() {
        plain.process_into(&packet, at, &mut plain_sink);
        Monitor::process(&mut pool, &packet, at, &mut pool_sink);
    }
    for flush in [30u64, 40] {
        plain.tick_into(SimTime::from_secs(flush), &mut plain_sink);
        pool.tick_into(SimTime::from_secs(flush), &mut pool_sink);
    }
    assert!(!plain_sink.is_empty());
    assert_eq!(plain_sink.alerts(), pool_sink.alerts());
    assert_eq!(plain.alerts(), pool.alerts());
    assert_eq!(plain.counters(), pool.counters());
    assert_eq!(plain.monitored_calls(), pool.monitored_calls());
    // Every alert the attacks were built to trigger is attributed the same
    // kind either way.
    assert!(pool
        .alerts()
        .iter()
        .any(|a| a.kind == AlertKind::Attack && a.label == labels::RTP_AFTER_BYE));
}

/// The persistent worker runtime reuses queue/classify/merge buffers across
/// batches. Reusing one pool for 50 consecutive batches must be
/// byte-identical to the fresh-pool reference, and two independent pools
/// replaying the same 50 batches must agree with each other exactly —
/// i.e. no state leaks between batches through the recycled buffers and no
/// thread-schedule dependence survives the merge.
#[test]
fn one_pool_reused_across_fifty_batches_is_byte_identical() {
    let (reference, ref_counters) = run_pool(4, 25);
    let trace = mixed_trace();
    let batch = (trace.len() / 50).max(1);
    assert!(
        trace.chunks(batch).count() >= 50,
        "trace too short to form 50 batches"
    );
    let mut runs = Vec::new();
    for _ in 0..2 {
        let config = Config::builder().shards(4).build().unwrap();
        let mut pool = VidsPool::with_cost(config, CostModel::free());
        for chunk in trace.chunks(batch) {
            let now = chunk[0].1;
            let packets: Vec<Packet> = chunk.iter().map(|(p, _)| p.clone()).collect();
            pool.process_batch(&packets, now);
        }
        pool.tick(SimTime::from_secs(30));
        pool.tick(SimTime::from_secs(40));
        runs.push((pool.alerts().to_vec(), pool.counters()));
    }
    assert_eq!(runs[0], runs[1], "two identical 50-batch replays diverged");
    assert_eq!(
        format!("{:?}", runs[0].0),
        format!("{:?}", runs[1].0),
        "alert renderings diverged between replays"
    );
    assert_eq!(
        runs[0].0, reference,
        "50-batch replay diverged from reference"
    );
    assert_eq!(runs[0].1, ref_counters);
}

/// Interleaves every ingestion API the pool offers — per-packet
/// `Monitor::process`, `process_batch`, `process_batch_into`, and forced
/// timer sweeps mid-stream — and requires the alert log and counters to be
/// shard-count invariant anyway.
fn run_interleaved(shards: usize) -> (Vec<Alert>, vids::core::VidsCounters) {
    let config = Config::builder().shards(shards).build().unwrap();
    let mut pool = VidsPool::with_cost(config, CostModel::free());
    let mut sink = CollectSink::new();
    let trace = mixed_trace();
    for (i, chunk) in trace.chunks(13).enumerate() {
        let now = chunk[0].1;
        match i % 3 {
            0 => {
                for (packet, at) in chunk {
                    Monitor::process(&mut pool, packet, *at, &mut sink);
                }
            }
            1 => {
                let packets: Vec<Packet> = chunk.iter().map(|(p, _)| p.clone()).collect();
                pool.process_batch(&packets, now);
            }
            _ => {
                let packets: Vec<Packet> = chunk.iter().map(|(p, _)| p.clone()).collect();
                pool.process_batch_into(&packets, now, &mut sink);
                // Force a sweep mid-stream at the batch's last timestamp.
                pool.tick_into(chunk[chunk.len() - 1].1, &mut sink);
            }
        }
    }
    pool.tick(SimTime::from_secs(30));
    pool.tick(SimTime::from_secs(40));
    (pool.alerts().to_vec(), pool.counters())
}

#[test]
fn interleaved_apis_are_shard_count_invariant() {
    let (reference, ref_counters) = run_interleaved(1);
    assert!(
        reference.iter().any(|a| a.label == labels::INVITE_FLOOD),
        "interleaved run lost the flood: {reference:?}"
    );
    assert!(reference.iter().any(|a| a.label == labels::RTP_AFTER_BYE));
    for shards in [4usize, 8] {
        let (alerts, counters) = run_interleaved(shards);
        assert_eq!(
            reference, alerts,
            "interleaved APIs at {shards} shards diverged from 1 shard"
        );
        assert_eq!(ref_counters, counters);
    }
}

/// Deterministic xorshift64 step; the stress test below must be replayable,
/// so no ambient randomness.
fn xorshift(state: &mut u64) -> u64 {
    *state ^= *state << 13;
    *state ^= *state >> 7;
    *state ^= *state << 17;
    *state
}

/// Seeded stress: one persistent pool ingests the trace in random-size
/// batches (1..=32 packets) with random forced sweeps, while a plain `Vids`
/// consumes the identical stream packet-at-a-time. Both must emit the same
/// alerts, in the same order, with the same counters.
#[test]
fn randomized_batch_sizes_match_the_plain_engine() {
    let trace = mixed_trace();
    for shards in [1usize, 4, 8] {
        let mut rng: u64 = 0x9E37_79B9_7F4A_7C15;
        let mut plain = Vids::with_cost(Config::default(), CostModel::free());
        let config = Config::builder().shards(shards).build().unwrap();
        let mut pool = VidsPool::with_cost(config, CostModel::free());
        let mut plain_sink = CollectSink::new();
        let mut pool_sink = CollectSink::new();
        let mut i = 0;
        while i < trace.len() {
            let size = 1 + (xorshift(&mut rng) % 32) as usize;
            let end = (i + size).min(trace.len());
            let now = trace[i].1;
            let packets: Vec<Packet> = trace[i..end].iter().map(|(p, _)| p.clone()).collect();
            pool.process_batch_into(&packets, now, &mut pool_sink);
            for (packet, at) in &trace[i..end] {
                plain.process_into(packet, *at, &mut plain_sink);
            }
            if xorshift(&mut rng).is_multiple_of(5) {
                let at = trace[end - 1].1;
                plain.tick_into(at, &mut plain_sink);
                pool.tick_into(at, &mut pool_sink);
            }
            i = end;
        }
        for flush in [30u64, 40] {
            plain.tick_into(SimTime::from_secs(flush), &mut plain_sink);
            pool.tick_into(SimTime::from_secs(flush), &mut pool_sink);
        }
        assert!(!plain_sink.is_empty());
        assert_eq!(
            plain_sink.alerts(),
            pool_sink.alerts(),
            "{shards}-shard pool diverged from the plain engine under random batching"
        );
        assert_eq!(plain.alerts(), pool.alerts());
        assert_eq!(plain.counters(), pool.counters());
        assert_eq!(plain.monitored_calls(), pool.monitored_calls());
    }
}
