//! Allocation budget gate for the steady-state event hot path.
//!
//! A counting global allocator measures exactly what one warm packet costs
//! after symbol interning and the inline `VarMap`: every string the packet
//! carries (Call-ID, tags, addresses) was interned when the call was set
//! up, so classify → EFSM → fact base runs on `Sym` handles and pre-sized
//! buffers. The documented budget (see DESIGN.md, "Hot path & memory
//! model"):
//!
//! * a warm in-dialog SIP packet costs at most 4 allocations,
//! * a warm in-profile RTP packet costs 0 allocations,
//! * a warm `VidsPool` batch costs 0 allocations: the persistent worker
//!   runtime reuses the pool's queue/classify/merge buffers across
//!   batches, so steady-state ingest never touches the allocator.
//!
//! Everything lives in a single `#[test]` because the counter is global:
//! the default multi-threaded test runner would otherwise interleave
//! counts from unrelated tests.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

use vids::core::config::Config;
use vids::core::engine::Vids;
use vids::core::pool::VidsPool;
use vids::core::sink::CollectSink;
use vids::netsim::packet::{Address, Packet, Payload};
use vids::netsim::time::SimTime;
use vids::rtp::packet::RtpPacket;
use vids::sdp::{Codec, SessionDescription};
use vids::sip::message::Request;
use vids::sip::{Method, SipUri, StatusCode};

struct CountingAlloc;

static ALLOCS: AtomicU64 = AtomicU64::new(0);
static ARMED: AtomicBool = AtomicBool::new(false);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        if ARMED.load(Ordering::Relaxed) {
            ALLOCS.fetch_add(1, Ordering::Relaxed);
        }
        System.alloc(layout)
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        if ARMED.load(Ordering::Relaxed) {
            ALLOCS.fetch_add(1, Ordering::Relaxed);
        }
        System.alloc_zeroed(layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        if ARMED.load(Ordering::Relaxed) {
            ALLOCS.fetch_add(1, Ordering::Relaxed);
        }
        System.realloc(ptr, layout, new_size)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
}

#[global_allocator]
static ALLOCATOR: CountingAlloc = CountingAlloc;

/// Runs `f` with the counter armed; returns how many allocations it made.
fn count_allocs<R>(f: impl FnOnce() -> R) -> u64 {
    let start = ALLOCS.load(Ordering::SeqCst);
    ARMED.store(true, Ordering::SeqCst);
    let r = f();
    ARMED.store(false, Ordering::SeqCst);
    drop(r);
    ALLOCS.load(Ordering::SeqCst) - start
}

const CALLER: Address = Address::new(10, 1, 0, 10, 5060);
const CALLEE: Address = Address::new(10, 2, 0, 10, 5060);

/// Documented per-packet budget for a warm in-dialog SIP message.
const SIP_BUDGET: u64 = 4;

/// Documented budget for a warm pool batch. The persistent worker runtime
/// swaps pre-sized buffers between the pool and its shard mailboxes, so a
/// steady-state batch allocates nothing (before the runtime this was a
/// constant 7 per batch).
const POOL_BATCH_BUDGET: u64 = 0;

fn pkt(src: Address, dst: Address, payload: Payload) -> Packet {
    Packet {
        src,
        dst,
        payload,
        id: 0,
        sent_at: SimTime::ZERO,
    }
}

fn invite(call_id: &str) -> Request {
    let sdp = SessionDescription::audio_offer("alice", "10.1.0.10", 20_000, &[Codec::G729]);
    Request::invite(
        &SipUri::new("alice", "a.example.com"),
        &SipUri::new("bob", "b.example.com"),
        call_id,
    )
    .with_body(vids::sdp::MIME_TYPE, sdp.to_string())
}

fn rtp_fwd(seq: u16, ts: u32) -> Packet {
    let media = RtpPacket::new(18, seq, ts, 7).with_payload(vec![0; 10]);
    pkt(
        CALLER.with_port(20_000),
        CALLEE.with_port(30_000),
        Payload::Rtp(media.to_bytes()),
    )
}

/// INVITE / 200-with-SDP / ACK plus first media, all inside one sweep
/// window so no timer machinery runs during the measured packets.
fn establish(call_id: &str) -> Vec<(Packet, u64)> {
    let inv = invite(call_id);
    let answer = SessionDescription::audio_offer("bob", "10.2.0.10", 30_000, &[Codec::G729]);
    let ok = inv
        .response(StatusCode::OK)
        .with_to_tag("tt")
        .with_body(vids::sdp::MIME_TYPE, answer.to_string());
    let ack = Request::in_dialog(Method::Ack, &inv, 1, Some("tt"));
    let mut trace = vec![
        (pkt(CALLER, CALLEE, Payload::Sip(inv.to_string())), 0),
        (pkt(CALLEE, CALLER, Payload::Sip(ok.to_string())), 5),
        (pkt(CALLER, CALLEE, Payload::Sip(ack.to_string())), 10),
    ];
    for i in 0..4u16 {
        trace.push((rtp_fwd(100 + i, 800 + i as u32 * 80), 15 + i as u64));
    }
    trace
}

/// A steady-state in-dialog SIP packet: a retransmitted 180 for the
/// established call. All of its strings are interned by the time it is
/// measured; it changes no media state and arms no timer.
fn stale_ringing(call_id: &str) -> Packet {
    let ringing = invite(call_id)
        .response(StatusCode::RINGING)
        .with_to_tag("tt");
    pkt(CALLEE, CALLER, Payload::Sip(ringing.to_string()))
}

#[test]
fn warm_packets_meet_the_allocation_budget() {
    // ---- plain Vids -----------------------------------------------------
    let mut vids = Vids::new(Config::default());
    let mut sink = CollectSink::new();
    for (packet, t) in establish("budget-1") {
        vids.process(&packet, SimTime::from_millis(t), &mut sink);
    }
    // Warm every lazily-touched path once before measuring.
    vids.process(
        &stale_ringing("budget-1"),
        SimTime::from_millis(30),
        &mut sink,
    );
    vids.process(&rtp_fwd(104, 1_120), SimTime::from_millis(31), &mut sink);

    let sip = stale_ringing("budget-1");
    let n = count_allocs(|| vids.process(&sip, SimTime::from_millis(40), &mut sink));
    eprintln!("warm SIP packet: {n} allocations");
    assert!(
        n <= SIP_BUDGET,
        "warm in-dialog SIP packet made {n} allocations (budget {SIP_BUDGET})"
    );

    let rtp = rtp_fwd(105, 1_200);
    let n = count_allocs(|| vids.process(&rtp, SimTime::from_millis(41), &mut sink));
    eprintln!("warm RTP packet: {n} allocations");
    assert_eq!(n, 0, "warm RTP packet must not allocate, made {n}");
    assert!(
        sink.alerts().is_empty(),
        "budget traffic must be clean: {:?}",
        sink.alerts()
    );

    // ---- VidsPool: the marginal batched packet is allocation-free -------
    let config = Config::builder().shards(4).build().unwrap();
    let mut pool = VidsPool::new(config);
    let mut sink = CollectSink::new();
    for (packet, t) in establish("budget-pool") {
        pool.process_batch(
            std::slice::from_ref(&packet),
            SimTime::from_millis(t),
            &mut sink,
        );
    }
    // Warm batches of both sizes: the per-batch queue/classify buffers are
    // pre-sized, so batch size must not change the allocation count.
    let small: Vec<Packet> = (0..8u16)
        .map(|i| rtp_fwd(110 + i, 2_000 + i as u32 * 80))
        .collect();
    let large: Vec<Packet> = (0..32u16)
        .map(|i| rtp_fwd(120 + i, 3_000 + i as u32 * 80))
        .collect();
    pool.process_batch(&small, SimTime::from_millis(50), &mut sink);
    pool.process_batch(&large, SimTime::from_millis(55), &mut sink);

    let small2: Vec<Packet> = (0..8u16)
        .map(|i| rtp_fwd(160 + i, 6_000 + i as u32 * 80))
        .collect();
    let large2: Vec<Packet> = (0..32u16)
        .map(|i| rtp_fwd(170 + i, 7_000 + i as u32 * 80))
        .collect();
    let n_small = count_allocs(|| pool.process_batch(&small2, SimTime::from_millis(60), &mut sink));
    let n_large = count_allocs(|| pool.process_batch(&large2, SimTime::from_millis(65), &mut sink));
    eprintln!("pool batches: 8 packets -> {n_small}, 32 packets -> {n_large} allocations");
    assert_eq!(
        n_small, n_large,
        "pool batch allocations must be constant in batch size \
         (8 packets: {n_small}, 32 packets: {n_large})"
    );
    assert_eq!(
        n_small, POOL_BATCH_BUDGET,
        "warm pool batch made {n_small} allocations (budget {POOL_BATCH_BUDGET})"
    );
    assert!(
        sink.alerts().is_empty(),
        "budget traffic must be clean: {:?}",
        sink.alerts()
    );

    // ---- the same budgets with telemetry recording enabled --------------
    // The record path is relaxed atomics on preallocated slabs and an
    // in-place ring overwrite; it must not move the budget at all.
    let mut vids = Vids::new(Config::default());
    let _registry = vids.enable_telemetry(64);
    let mut sink = CollectSink::new();
    for (packet, t) in establish("budget-tel") {
        vids.process(&packet, SimTime::from_millis(t), &mut sink);
    }
    vids.process(
        &stale_ringing("budget-tel"),
        SimTime::from_millis(30),
        &mut sink,
    );
    vids.process(&rtp_fwd(104, 1_120), SimTime::from_millis(31), &mut sink);

    let sip = stale_ringing("budget-tel");
    let n = count_allocs(|| vids.process(&sip, SimTime::from_millis(40), &mut sink));
    eprintln!("warm SIP packet with telemetry: {n} allocations");
    assert!(
        n <= SIP_BUDGET,
        "telemetry record path broke the SIP budget: {n} allocations (budget {SIP_BUDGET})"
    );

    let rtp = rtp_fwd(105, 1_200);
    let n = count_allocs(|| vids.process(&rtp, SimTime::from_millis(41), &mut sink));
    eprintln!("warm RTP packet with telemetry: {n} allocations");
    assert_eq!(
        n, 0,
        "telemetry record path must not allocate on RTP, made {n}"
    );

    let config = Config::builder().shards(4).build().unwrap();
    let mut pool = VidsPool::new(config);
    pool.enable_telemetry(64);
    let mut sink = CollectSink::new();
    for (packet, t) in establish("budget-pool-tel") {
        pool.process_batch(
            std::slice::from_ref(&packet),
            SimTime::from_millis(t),
            &mut sink,
        );
    }
    let small: Vec<Packet> = (0..8u16)
        .map(|i| rtp_fwd(110 + i, 2_000 + i as u32 * 80))
        .collect();
    let large: Vec<Packet> = (0..32u16)
        .map(|i| rtp_fwd(120 + i, 3_000 + i as u32 * 80))
        .collect();
    pool.process_batch(&small, SimTime::from_millis(50), &mut sink);
    pool.process_batch(&large, SimTime::from_millis(55), &mut sink);

    let small2: Vec<Packet> = (0..8u16)
        .map(|i| rtp_fwd(160 + i, 6_000 + i as u32 * 80))
        .collect();
    let large2: Vec<Packet> = (0..32u16)
        .map(|i| rtp_fwd(170 + i, 7_000 + i as u32 * 80))
        .collect();
    let n_small = count_allocs(|| pool.process_batch(&small2, SimTime::from_millis(60), &mut sink));
    let n_large = count_allocs(|| pool.process_batch(&large2, SimTime::from_millis(65), &mut sink));
    eprintln!(
        "pool batches with telemetry: 8 packets -> {n_small}, 32 packets -> {n_large} allocations"
    );
    assert_eq!(
        n_small, n_large,
        "telemetry made pool batch allocations batch-size-dependent \
         (8 packets: {n_small}, 32 packets: {n_large})"
    );
    assert_eq!(
        n_small, POOL_BATCH_BUDGET,
        "telemetry record path broke the pool batch budget: \
         {n_small} allocations (budget {POOL_BATCH_BUDGET})"
    );
    assert!(
        sink.alerts().is_empty(),
        "budget traffic must be clean: {:?}",
        sink.alerts()
    );

    // ---- receiver route path: classify + shard-hash off the wire --------
    // The parallel ingest receivers run demux → classify → route-hint per
    // datagram and push into a pre-sized batch. Once the datagram's
    // symbols are interned, that whole path must not touch the allocator:
    // it runs on every packet on every receiver thread.
    {
        use vids::core::pool::PreRouted;
        use vids::ingest::demux::classify_datagram;
        use vids::ingest::Datagram;

        let rtp_bytes = RtpPacket::new(18, 300, 9_000, 7)
            .with_payload(vec![0; 10])
            .to_bytes();
        let rtp_dg = Datagram {
            src: "10.1.0.10:20000".parse().unwrap(),
            dst: "10.2.0.10:30000".parse().unwrap(),
            at: SimTime::from_millis(70),
            payload: &rtp_bytes,
        };
        let sip_text = stale_ringing("budget-1").payload;
        let sip_text = match &sip_text {
            Payload::Sip(text) => text.clone(),
            _ => unreachable!(),
        };
        let sip_dg = Datagram {
            src: "10.2.0.10:5060".parse().unwrap(),
            dst: "10.1.0.10:5060".parse().unwrap(),
            at: SimTime::from_millis(70),
            payload: sip_text.as_bytes(),
        };

        let mut batch: Vec<PreRouted> = Vec::with_capacity(16);
        // Warm: intern every symbol the datagrams carry.
        for d in [&rtp_dg, &sip_dg] {
            let (_, classified) = classify_datagram(d);
            batch.push(PreRouted::new(classified, d.at));
        }
        batch.clear();

        let n = count_allocs(|| {
            let (_, classified) = classify_datagram(&rtp_dg);
            batch.push(PreRouted::new(classified, rtp_dg.at));
        });
        eprintln!("warm RTP receiver route path: {n} allocations");
        assert_eq!(n, 0, "warm RTP classify+route made {n} allocations");

        let n = count_allocs(|| {
            let (_, classified) = classify_datagram(&sip_dg);
            batch.push(PreRouted::new(classified, sip_dg.at));
        });
        eprintln!("warm SIP receiver route path: {n} allocations");
        assert_eq!(n, 0, "warm SIP classify+route made {n} allocations");
    }
}
