//! Paper-fidelity tests: the shipped machines walk exactly the paths the
//! paper's figures draw, with the synchronization semantics §4.2 specifies.

use std::sync::Arc;

use vids::core::machines::{rtp::rtp_session_machine, sip::sip_call_machine};
use vids::core::Config;
use vids::efsm::network::Network;
use vids::efsm::Event;

fn fig2_network() -> Network {
    let mut net = Network::new();
    net.enable_trace();
    net.add_machine(Arc::new(sip_call_machine(&Config::default())));
    net.add_machine(Arc::new(rtp_session_machine(&Config::default())));
    net
}

fn invite_event() -> Event {
    Event::data("SIP.INVITE")
        .with_str("call_id", "fig2")
        .with_str("from_tag", "ft")
        .with_str("to_tag", "")
        .with_str("branch", "z9hG4bK-f2")
        .with_str("src_ip", "10.1.0.5")
        .with_str("dst_ip", "10.2.0.5")
        .with_str("cseq_method", "INVITE")
        .with_bool("has_sdp", true)
        .with_str("sdp_ip", "10.1.0.10")
        .with_uint("sdp_port", 20_000)
        .with_uint("sdp_pt", 18)
}

/// Fig. 2(a): "The (INIT) state of a SIP protocol state machine makes a
/// transition … to the (INVITE Rcvd) state, and sends a synchronization
/// message (i.e. c!δ_SIP→RTP) to the RTP state machine. … On receiving a
/// synchronization event from the communication channel, the RTP machine
/// makes a transition from the (INIT) state to the (RTP Open) state."
#[test]
fn fig2_invite_synchronizes_both_machines() {
    let mut net = fig2_network();
    let sip = net.machine_by_name("sip").unwrap();
    let out = net.deliver(sip, invite_event(), 0);
    assert!(!out.is_suspicious());
    assert_eq!(out.transitions, 2, "SIP step plus the δ-driven RTP step");

    let trace = net.trace().unwrap();
    assert_eq!(trace.path_of("sip"), vec!["INIT", "INVITE_RCVD"]);
    assert_eq!(trace.path_of("rtp"), vec!["INIT", "RTP_OPEN"]);

    // "The media information contained in the SDP message body … are
    // available to RTP protocol machine by writing them into the global
    // shared variables."
    assert_eq!(net.globals().str("g_caller_media_ip"), Some("10.1.0.10"));
    assert_eq!(net.globals().uint("g_caller_media_port"), Some(20_000));
    assert_eq!(net.globals().uint("g_codec_pt"), Some(18));
}

/// §4.2: "The synchronization events waiting in a FIFO queue have higher
/// priority than the data packet events." A δ emitted during a SIP step is
/// consumed by the RTP machine *before* the next data packet is processed —
/// visible in the trace ordering.
#[test]
fn sync_events_outrank_data_events() {
    let mut net = fig2_network();
    let sip = net.machine_by_name("sip").unwrap();
    let rtp = net.machine_by_name("rtp").unwrap();
    net.deliver(sip, invite_event(), 0);

    // Answer publishes callee media and syncs δ.update...
    let ok = Event::data("SIP.2xx")
        .with_str("cseq_method", "INVITE")
        .with_str("to_tag", "tt")
        .with_bool("has_sdp", true)
        .with_str("sdp_ip", "10.2.0.10")
        .with_uint("sdp_port", 30_000);
    net.deliver(sip, ok, 10);

    // ...then an RTP data packet arrives. In the trace, the δ.update step
    // must precede the RTP.Packet step even though both touch the RTP
    // machine around the same wall-clock instant.
    let media = Event::data("RTP.Packet")
        .with_str("src_ip", "10.1.0.10")
        .with_uint("src_port", 20_000)
        .with_str("dst_ip", "10.2.0.10")
        .with_uint("dst_port", 30_000)
        .with_uint("ssrc", 7)
        .with_uint("seq", 1)
        .with_uint("ts", 0)
        .with_uint("pt", 18)
        .with_uint("size", 50);
    let out = net.deliver(rtp, media, 10);
    assert!(!out.is_suspicious());

    let rtp_steps: Vec<String> = net
        .trace()
        .unwrap()
        .for_machine("rtp")
        .map(|e| e.event.clone())
        .collect();
    let update_pos = rtp_steps
        .iter()
        .position(|e| e.contains("δ.update"))
        .unwrap();
    let packet_pos = rtp_steps
        .iter()
        .position(|e| e.contains("RTP.Packet"))
        .unwrap();
    assert!(
        update_pos < packet_pos,
        "δ must be drained before the data event: {rtp_steps:?}"
    );
}

/// Definition 1 requires mutually disjoint predicates (a deterministic
/// EFSM). Drive a full busy call — setup, media both ways, re-INVITE,
/// losses, teardown, stragglers — and assert the engine never reports
/// nondeterminism.
#[test]
fn machines_stay_deterministic_through_a_busy_call() {
    let mut net = fig2_network();
    let sip = net.machine_by_name("sip").unwrap();
    let rtp = net.machine_by_name("rtp").unwrap();
    let mut nondet = false;
    let mut t = 0u64;
    let mut drive = |net: &mut Network, m, ev| {
        t += 10;
        let out = net.deliver(m, ev, t);
        nondet |= out.nondeterministic;
    };

    drive(&mut net, sip, invite_event());
    drive(&mut net, sip, invite_event()); // retransmission
    drive(
        &mut net,
        sip,
        Event::data("SIP.1xx")
            .with_str("to_tag", "tt")
            .with_str("cseq_method", "INVITE"),
    );
    drive(
        &mut net,
        sip,
        Event::data("SIP.2xx")
            .with_str("cseq_method", "INVITE")
            .with_str("to_tag", "tt")
            .with_bool("has_sdp", true)
            .with_str("sdp_ip", "10.2.0.10")
            .with_uint("sdp_port", 30_000),
    );
    drive(
        &mut net,
        sip,
        Event::data("SIP.ACK")
            .with_str("from_tag", "ft")
            .with_str("to_tag", "tt"),
    );
    for i in 0..50u64 {
        let (src, dst, port, ssrc) = if i % 2 == 0 {
            ("10.1.0.10", "10.2.0.10", 30_000u64, 7u64)
        } else {
            ("10.2.0.10", "10.1.0.10", 20_000, 9)
        };
        drive(
            &mut net,
            rtp,
            Event::data("RTP.Packet")
                .with_str("src_ip", src)
                .with_uint("src_port", 20_000)
                .with_str("dst_ip", dst)
                .with_uint("dst_port", port)
                .with_uint("ssrc", ssrc)
                .with_uint("seq", 100 + i / 2)
                .with_uint("ts", (i / 2) * 80)
                .with_uint("pt", 18)
                .with_uint("size", 50),
        );
    }
    // Legitimate re-INVITE.
    drive(
        &mut net,
        sip,
        Event::data("SIP.INVITE")
            .with_str("call_id", "fig2")
            .with_str("from_tag", "ft")
            .with_str("to_tag", "tt")
            .with_str("cseq_method", "INVITE")
            .with_bool("has_sdp", true)
            .with_str("sdp_ip", "10.1.0.10")
            .with_uint("sdp_port", 22_000),
    );
    drive(
        &mut net,
        sip,
        Event::data("SIP.BYE")
            .with_str("from_tag", "ft")
            .with_str("to_tag", "tt")
            .with_str("cseq_method", "BYE"),
    );
    drive(
        &mut net,
        sip,
        Event::data("SIP.2xx").with_str("cseq_method", "BYE"),
    );
    net.advance_time(t + 10_000);

    assert!(!nondet, "predicates must be mutually disjoint (Def. 1)");
    assert!(net.all_final(), "call must complete");
}

/// §7.3: "with each call, only one instance of a protocol state machine is
/// maintained at the memory. Once the calls have successfully reached the
/// final state, the corresponding protocol state machines will be deleted."
/// The definitions themselves are shared, so a thousand concurrent networks
/// cost only configurations.
#[test]
fn definitions_are_shared_across_call_networks() {
    let sip = Arc::new(sip_call_machine(&Config::default()));
    let rtp = Arc::new(rtp_session_machine(&Config::default()));
    let mut nets = Vec::new();
    for _ in 0..1_000 {
        let mut n = Network::new();
        n.add_machine(Arc::clone(&sip));
        n.add_machine(Arc::clone(&rtp));
        nets.push(n);
    }
    assert_eq!(Arc::strong_count(&sip), 1_001);
    let per_call: usize = nets.iter().map(|n| n.memory_bytes()).sum::<usize>() / nets.len();
    assert!(per_call < 1_024, "fresh per-call state {per_call} B");
}
