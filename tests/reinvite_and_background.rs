//! Legitimate mid-call renegotiation and background cross-traffic: things
//! that *look* unusual must not trip the monitor, and contention shapes
//! QoS the way queueing theory says it should.

use vids::core::alert::AlertKind;
use vids::netsim::background::{BackgroundSource, BackgroundSpec};
use vids::netsim::node::Host;
use vids::netsim::stats::Summary;
use vids::netsim::time::SimTime;
use vids::netsim::topology::internet_addr;
use vids::scenario::{Testbed, TestbedConfig};

fn secs(s: u64) -> SimTime {
    SimTime::from_secs(s)
}

#[test]
fn legitimate_reinvite_is_not_flagged_and_media_survives() {
    let mut config = TestbedConfig::small(301);
    config.workload.mean_interarrival_secs = 5.0;
    config.workload.mean_duration_secs = 30.0;
    config.workload.horizon = secs(20);
    config.reinvite_caller_0 = Some(secs(5));
    let mut tb = Testbed::build(&config);
    tb.run_until(secs(90));

    let a0 = tb.ua_a_stats(0);
    assert!(a0.reinvites_sent >= 1, "caller re-INVITEd");
    let reinvites_answered: u64 = (0..2).map(|i| tb.ua_b(i).stats().reinvites_received).sum();
    assert!(reinvites_answered >= 1, "callee processed the re-INVITE");

    // No attack alerts: the re-INVITE keeps media on the dialog parties.
    let attacks: Vec<_> = tb
        .vids_alerts()
        .iter()
        .filter(|a| a.kind == AlertKind::Attack)
        .collect();
    assert!(attacks.is_empty(), "false positives: {attacks:?}");

    // Media kept flowing after the port move: the caller received a healthy
    // stream for the whole call (≈30 s at 100 pps minus ring/tail).
    assert!(
        a0.rtp_received > 1_500,
        "caller received {} RTP packets",
        a0.rtp_received
    );
}

#[test]
fn background_contention_raises_jitter_but_not_alarms() {
    let run = |load_fraction: f64| -> (Summary, usize) {
        let mut config = TestbedConfig::small(302);
        config.workload.mean_interarrival_secs = 10.0;
        config.workload.mean_duration_secs = 60.0;
        config.workload.horizon = secs(30);
        let mut tb = Testbed::build(&config);
        if load_fraction > 0.0 {
            // Bulk flow from an Internet host into site B, sharing the
            // cloud/DS1 path with the calls.
            let sink =
                vids::netsim::topology::ua_addr(vids::netsim::topology::SITE_B, 1).with_port(9_999);
            let spec = BackgroundSpec::ds1_fraction(sink, load_fraction, secs(1), secs(120));
            tb.ent
                .add_internet_host(Box::new(BackgroundSource::new(spec)));
        }
        tb.run_until(secs(120));
        let mut jitter = Summary::new();
        for i in 0..2 {
            jitter.merge(&tb.ua_a_stats(i).rtp_jitter);
            jitter.merge(&tb.ua_b(i).stats().rtp_jitter);
        }
        let attack_alerts = tb
            .vids_alerts()
            .iter()
            .filter(|a| a.kind == AlertKind::Attack)
            .count();
        (jitter, attack_alerts)
    };

    let (quiet, quiet_alerts) = run(0.0);
    let (loaded, loaded_alerts) = run(0.5);
    assert_eq!(quiet_alerts, 0);
    assert_eq!(loaded_alerts, 0, "cross-traffic must not trip the IDS");
    assert!(
        loaded.mean() > quiet.mean(),
        "contention should raise jitter: quiet {:.6} vs loaded {:.6}",
        quiet.mean(),
        loaded.mean()
    );
}

#[test]
fn background_source_and_sink_wire_into_the_enterprise() {
    let mut config = TestbedConfig::small(303);
    config.workload.horizon = secs(1); // effectively no calls
    let mut tb = Testbed::build(&config);
    let sink_addr = internet_addr(5).with_port(7);
    let spec = BackgroundSpec {
        sink: sink_addr,
        mean_bps: 200_000,
        packet_bytes: 256,
        start: secs(1),
        stop: secs(11),
    };
    let (src_node, _) = {
        tb.ent
            .add_internet_host(Box::new(BackgroundSource::new(spec)))
    };
    tb.run_until(secs(12));
    let sent = tb
        .ent
        .sim
        .node_as::<Host>(src_node)
        .app_as::<BackgroundSource>()
        .sent_packets();
    assert!(sent > 50, "sent {sent}");
    // Raw traffic is invisible to the monitor's protocol machinery.
    assert_eq!(tb.vids().unwrap().vids().counters().malformed, 0);
}
