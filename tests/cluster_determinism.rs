//! Determinism of the federated cluster: whatever the node count (and the
//! shard count inside each node), a `Cluster` must produce byte-identical
//! alert sequences, counters and telemetry — and at one node, one tenant
//! it must match the plain `VidsPool` exactly. Plus the tenancy gates:
//! per-tenant thresholds and quotas isolate tenants from each other, and
//! a rendezvous rebalance keeps verdicts for calls whose keys don't move.

mod common;

use common::{invite, mixed_trace, pkt};
use vids::cluster::{rendezvous, Cluster, TenantMap};
use vids::core::alert::{labels, Alert};
use vids::core::classify::classify;
use vids::core::pool::route_hint;
use vids::core::{CollectSink, Config, CostModel, NullSink, VidsPool};
use vids::netsim::packet::{Address, Packet, Payload};
use vids::netsim::time::SimTime;
use vids::sdp::{Codec, SessionDescription};
use vids::sip::{Method, Request, StatusCode};
use vids::telemetry::{Counter, SlabSnapshot};

/// Replays the mixed trace through a single-tenant cluster in batches of
/// 25, flushes, and returns (alerts, sink alerts, counters, telemetry).
fn run_cluster(
    nodes: usize,
    shards: usize,
) -> (
    Vec<Alert>,
    Vec<Alert>,
    vids::core::VidsCounters,
    SlabSnapshot,
) {
    let config = Config::builder().shards(shards).build().unwrap();
    let mut cluster = Cluster::with_cost(TenantMap::single(config), nodes, CostModel::free());
    cluster.enable_telemetry(64);
    let mut sink = CollectSink::new();
    let trace = mixed_trace();
    for chunk in trace.chunks(25) {
        let now = chunk[0].1;
        let packets: Vec<Packet> = chunk.iter().map(|(p, _)| p.clone()).collect();
        cluster.process_packets(&packets, now, &mut sink);
    }
    cluster.tick(SimTime::from_secs(30), &mut sink);
    cluster.tick(SimTime::from_secs(40), &mut sink);
    let snap = cluster
        .telemetry_snapshot(SimTime::from_secs(40))
        .unwrap()
        .deterministic();
    let alerts = cluster.alerts().iter().map(|a| a.alert.clone()).collect();
    (alerts, sink.alerts().to_vec(), cluster.counters(), snap)
}

/// The single-pool reference, batched identically.
fn run_pool(
    shards: usize,
) -> (
    Vec<Alert>,
    Vec<Alert>,
    vids::core::VidsCounters,
    SlabSnapshot,
) {
    let config = Config::builder().shards(shards).build().unwrap();
    let mut pool = VidsPool::with_cost(config, CostModel::free());
    pool.enable_telemetry(64);
    let mut sink = CollectSink::new();
    let trace = mixed_trace();
    for chunk in trace.chunks(25) {
        let now = chunk[0].1;
        let packets: Vec<Packet> = chunk.iter().map(|(p, _)| p.clone()).collect();
        pool.process_batch(&packets, now, &mut sink);
    }
    pool.tick(SimTime::from_secs(30), &mut sink);
    pool.tick(SimTime::from_secs(40), &mut sink);
    let snap = pool
        .telemetry_snapshot(SimTime::from_secs(40))
        .unwrap()
        .deterministic();
    (
        pool.alerts().to_vec(),
        sink.alerts().to_vec(),
        pool.counters(),
        snap,
    )
}

#[test]
fn one_node_cluster_matches_the_plain_pool() {
    for shards in [1usize, 4] {
        let (pool_log, pool_sink, pool_counters, pool_snap) = run_pool(shards);
        let (log, sink, counters, snap) = run_cluster(1, shards);
        assert!(
            pool_log.iter().any(|a| a.label == labels::INVITE_FLOOD),
            "reference lost the flood: {pool_log:?}"
        );
        assert_eq!(pool_log, log, "{shards}-shard cluster(1) log diverged");
        assert_eq!(pool_sink, sink, "{shards}-shard cluster(1) sink diverged");
        assert_eq!(pool_counters, counters);
        assert_eq!(pool_snap, snap, "{shards}-shard telemetry diverged");
    }
}

#[test]
fn node_count_never_changes_the_alert_sequence() {
    for shards in [1usize, 4] {
        let (reference, ref_sink, ref_counters, ref_snap) = run_cluster(1, shards);
        assert!(reference.iter().any(|a| a.label == labels::INVITE_FLOOD));
        assert!(reference.iter().any(|a| a.label == labels::RTP_AFTER_BYE));
        assert!(reference.iter().any(|a| a.label == labels::RESPONSE_FLOOD));
        assert!(reference
            .iter()
            .any(|a| a.label == labels::REGISTRATION_HIJACK));
        assert!(reference.iter().any(|a| a.label == "unassociated-rtp"));
        assert!(reference.iter().any(|a| a.label.starts_with("malformed-")));
        for nodes in [2usize, 4] {
            let (alerts, sink, counters, snap) = run_cluster(nodes, shards);
            assert_eq!(
                reference, alerts,
                "{nodes} nodes x {shards} shards diverged from 1 node"
            );
            assert_eq!(ref_sink, sink);
            assert_eq!(ref_counters, counters);
            assert_eq!(
                ref_snap, snap,
                "{nodes}-node merged telemetry diverged from 1 node"
            );
        }
    }
}

/// Eight INVITEs in one second against each of two victims, one flood per
/// tenant. The strict tenant alerts at >5; the default tenant's threshold
/// (>10) keeps it silent — same traffic shape, different verdicts, and
/// every alert carries the right tenant tag.
#[test]
fn tenant_thresholds_are_isolated() {
    let tenants = TenantMap::parse(
        "tenant strict 172.16.0.0/16 invite_flood_n=5",
        Config::default(),
    )
    .unwrap();
    for nodes in [1usize, 3] {
        let mut cluster = Cluster::with_cost(tenants.clone(), nodes, CostModel::free());
        let mut trace = Vec::new();
        let victim_a = Address::new(10, 2, 0, 9, 5060);
        let victim_b = Address::new(10, 2, 0, 10, 5060);
        let strict_attacker = Address::new(172, 16, 0, 66, 5060);
        let lax_attacker = Address::new(192, 168, 0, 66, 5060);
        for i in 0..8u64 {
            let a = vids::attacks::craft::flood_invite(
                &vids::sip::SipUri::new("bob9", "b.example.com"),
                strict_attacker,
                "flooder",
                &format!("iso-a-{i}"),
            );
            trace.push(pkt(strict_attacker, victim_a, Payload::Sip(a), i * 10, 0));
            let b = vids::attacks::craft::flood_invite(
                &vids::sip::SipUri::new("bob10", "b.example.com"),
                lax_attacker,
                "flooder",
                &format!("iso-b-{i}"),
            );
            trace.push(pkt(lax_attacker, victim_b, Payload::Sip(b), i * 10 + 5, 0));
        }
        let packets: Vec<Packet> = trace.iter().map(|(p, _)| p.clone()).collect();
        cluster.process_packets(&packets, SimTime::from_millis(1), &mut NullSink);

        let flood_alerts: Vec<_> = cluster
            .alerts()
            .iter()
            .filter(|a| a.alert.label == labels::INVITE_FLOOD)
            .collect();
        assert!(
            !flood_alerts.is_empty(),
            "{nodes} nodes: strict tenant flood missing"
        );
        assert!(
            flood_alerts.iter().all(|a| a.tenant == 1),
            "{nodes} nodes: flood alert escaped the strict tenant: {flood_alerts:?}"
        );
        // The lax tenant saw the same 8 INVITEs and stayed under threshold.
        assert_eq!(cluster.tenant_counters(0).sip_packets, 8);
        assert_eq!(cluster.tenant_counters(1).sip_packets, 8);
    }
}

/// A tenant with `max_calls=2` can fill only its own call table: later
/// dialogs are refused for it while the unbounded default tenant keeps
/// tracking everything — one tenant's flood cannot evict another's state.
/// (The quota is enforced per analysis engine, so one node, one shard
/// makes the arithmetic exact; separate per-tenant pools give the eviction
/// isolation at any scale.)
#[test]
fn tenant_call_quotas_are_isolated() {
    let tenants =
        TenantMap::parse("tenant capped 172.16.0.0/16 max_calls=2", Config::default()).unwrap();
    let mut cluster = Cluster::with_cost(tenants, 1, CostModel::free());
    cluster.enable_telemetry(16);
    let mut trace = Vec::new();
    for i in 0..5u8 {
        let src = Address::new(172, 16, 0, i + 1, 5060);
        let inv = invite(
            &format!("quota-capped-{i}"),
            &format!("172.16.0.{}", i + 1),
            20_000,
        );
        trace.push(pkt(
            src,
            Address::new(10, 2, 0, 1, 5060),
            Payload::Sip(inv.to_string()),
            10 + i as u64,
            0,
        ));
    }
    for i in 0..3u8 {
        let src = Address::new(10, 1, 0, i + 1, 5060);
        let inv = invite(
            &format!("quota-free-{i}"),
            &format!("10.1.0.{}", i + 1),
            21_000,
        );
        trace.push(pkt(
            src,
            Address::new(10, 2, 0, 1, 5060),
            Payload::Sip(inv.to_string()),
            20 + i as u64,
            0,
        ));
    }
    let packets: Vec<Packet> = trace.iter().map(|(p, _)| p.clone()).collect();
    cluster.process_packets(&packets, SimTime::from_millis(1), &mut NullSink);

    assert_eq!(
        cluster.tenant_monitored_calls(1),
        2,
        "capped tenant exceeded its quota"
    );
    assert_eq!(
        cluster.tenant_monitored_calls(0),
        3,
        "default tenant lost calls to a foreign quota"
    );
    // The refusals are visible in the capped tenant's telemetry — and only
    // there.
    let mut capped = SlabSnapshot::zeroed();
    let mut free = SlabSnapshot::zeroed();
    for node in 0..cluster.nodes() {
        for (tenant, total) in [(1u16, &mut capped), (0u16, &mut free)] {
            let snap = cluster
                .pool(tenant, node)
                .telemetry_snapshot(SimTime::from_millis(1))
                .unwrap();
            total.merge(&snap.merged());
        }
    }
    assert_eq!(capped.counter(Counter::CallQuotaDrops), 3);
    assert_eq!(free.counter(Counter::CallQuotaDrops), 0);
}

/// Growing the cluster only moves keys whose rendezvous choice changes. A
/// BYE-DoS in flight on an *unmoved* call must still convict after the
/// rebalance: the spoofed BYE and the post-BYE media reach the node that
/// has been tracking the call all along.
#[test]
fn rebalance_keeps_verdicts_for_unmoved_calls() {
    // Find a call-id whose call key owns the same node at 2 and at 3
    // nodes, using the real classifier + routing hint.
    let caller = Address::new(10, 1, 0, 7, 5060);
    let callee = Address::new(10, 2, 0, 7, 5060);
    let call_id = (0..64u32)
        .map(|i| format!("rebalance-{i}"))
        .find(|id| {
            let inv = invite(id, "10.1.0.7", 22_000);
            let (packet, _) = pkt(caller, callee, Payload::Sip(inv.to_string()), 0, 0);
            let hint = route_hint(&classify(&packet));
            rendezvous(hint.call_hash(), 2) == rendezvous(hint.call_hash(), 3)
        })
        .expect("no stable call-id in 64 candidates");

    let mut cluster =
        Cluster::with_cost(TenantMap::single(Config::default()), 2, CostModel::free());
    let mut sink = CollectSink::new();

    // Establish the call on the 2-node cluster.
    let inv = invite(&call_id, "10.1.0.7", 22_000);
    let answer = SessionDescription::audio_offer("bob", "10.2.0.7", 32_000, &[Codec::G729]);
    let ok = inv
        .response(StatusCode::OK)
        .with_to_tag("tt")
        .with_body(vids::sdp::MIME_TYPE, answer.to_string());
    let ack = Request::in_dialog(Method::Ack, &inv, 1, Some("tt"));
    let setup = vec![
        pkt(caller, callee, Payload::Sip(inv.to_string()), 100, 0).0,
        pkt(callee, caller, Payload::Sip(ok.to_string()), 150, 0).0,
        pkt(caller, callee, Payload::Sip(ack.to_string()), 200, 0).0,
    ];
    cluster.process_packets(&setup, SimTime::from_millis(100), &mut sink);
    assert_eq!(cluster.monitored_calls(), 1);

    // Rebalance 2 -> 3 nodes. The call's key does not move.
    cluster.set_nodes(3);
    assert_eq!(cluster.monitored_calls(), 1, "unmoved call lost its state");

    // Attack after the rebalance: spoofed BYE, then media keeps flowing
    // past timer T on the negotiated coordinates.
    let snap = vids::attacks::craft::DialogSnapshot {
        call_id: call_id.clone(),
        caller_from: vids::sip::headers::NameAddr::new(vids::sip::SipUri::new(
            "alice",
            "a.example.com",
        ))
        .with_tag("tag-alice"),
        callee_to: vids::sip::headers::NameAddr::new(vids::sip::SipUri::new(
            "bob",
            "b.example.com",
        ))
        .with_tag("tt"),
        caller_addr: caller,
        callee_addr: callee,
        callee_media: Some(callee.with_port(32_000)),
        caller_media: Some(caller.with_port(22_000)),
        caller_ssrc: Some(7),
        caller_rtp_cursor: Some((40, 3_200)),
        invite_branch: format!("z9hG4bK-{call_id}"),
    };
    let (victim, spoof) = snap.endpoints(vids::attacks::craft::Target::Callee);
    let bye = vids::attacks::craft::spoofed_bye(&snap, vids::attacks::craft::Target::Callee);
    let mut attack = vec![pkt(spoof.with_port(5060), victim, Payload::Sip(bye), 500, 0).0];
    for i in 0..30u16 {
        let media = vids::rtp::packet::RtpPacket::new(18, 40 + i, (40 + i as u32) * 80, 7)
            .with_payload(vec![0; 10]);
        attack.push(
            pkt(
                caller.with_port(22_000),
                callee.with_port(32_000),
                Payload::Rtp(media.to_bytes()),
                520 + i as u64 * 40,
                0,
            )
            .0,
        );
    }
    cluster.process_packets(&attack, SimTime::from_millis(500), &mut sink);
    cluster.tick(SimTime::from_secs(30), &mut sink);

    assert!(
        cluster
            .alerts()
            .iter()
            .any(|a| a.alert.label == labels::RTP_AFTER_BYE),
        "BYE-DoS verdict lost across the rebalance: {:?}",
        cluster.alerts()
    );
}

/// Shrinking is routing-only too: keys that stay on surviving nodes keep
/// their state, keys on removed nodes restart — and the cluster never
/// mixes them up (no panics, no cross-wired verdicts).
#[test]
fn shrink_drops_only_the_removed_nodes_state() {
    let mut cluster =
        Cluster::with_cost(TenantMap::single(Config::default()), 3, CostModel::free());
    let caller = Address::new(10, 1, 0, 7, 5060);
    let callee = Address::new(10, 2, 0, 7, 5060);
    // Spread 12 half-open calls over the 3 nodes.
    let mut setup = Vec::new();
    let mut survivors = 0usize;
    for i in 0..12u32 {
        let id = format!("shrink-{i}");
        let inv = invite(&id, "10.1.0.7", 22_000);
        let (packet, _) = pkt(
            caller,
            callee,
            Payload::Sip(inv.to_string()),
            100 + i as u64,
            0,
        );
        let hint = route_hint(&classify(&packet));
        if rendezvous(hint.call_hash(), 3) < 2 {
            survivors += 1;
        }
        setup.push(packet);
    }
    cluster.process_packets(&setup, SimTime::from_millis(100), &mut NullSink);
    assert_eq!(cluster.monitored_calls(), 12);
    assert!(survivors < 12, "trace never landed on the removed node");

    cluster.set_nodes(2);
    assert_eq!(
        cluster.monitored_calls(),
        survivors,
        "shrink kept the wrong calls"
    );
}
