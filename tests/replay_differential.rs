//! The wire tier's correctness oracle: `vids replay` of a pcap capture
//! must be **byte-identical** to the in-process engine over the same
//! traffic — same alerts (order, labels, details, timestamps), same
//! counters — at 1, 4 and 8 shards, under either capture byte order and
//! link type, and regardless of the replay batch size.
//!
//! The capture is the adversarial `mixed_trace` rendered to classic
//! pcap bytes: every packet's addresses, ports, payload and timestamp
//! cross the UDP/IPv4/pcap encode → decode → demux → classify path, so
//! a single byte of drift anywhere in the wire tier breaks the
//! equality.

mod common;

use common::wire_safe_trace;
use vids::core::alert::{labels, Alert};
use vids::core::{CollectSink, Config, VidsCounters, VidsPool};
use vids::ingest::pcap::{PcapWriter, LINKTYPE_ETHERNET, LINKTYPE_RAW};
use vids::ingest::record_tap::RecordTap;
use vids::ingest::replay::{replay_pcap, replay_pcap_parallel, REPLAY_GRACE};
use vids::netsim::packet::{Address, Packet, Payload};
use vids::netsim::time::SimTime;
use vids::record::Recorder;

fn to_socket(addr: Address) -> std::net::SocketAddrV4 {
    let [a, b, c, d] = addr.ip.to_be_bytes();
    std::net::SocketAddrV4::new(std::net::Ipv4Addr::new(a, b, c, d), addr.port)
}

/// Renders the trace to classic pcap capture bytes.
fn to_pcap(trace: &[(Packet, SimTime)], swapped: bool, linktype: u32) -> Vec<u8> {
    let mut w = PcapWriter::with_format(swapped, linktype);
    for (p, at) in trace {
        let payload: Vec<u8> = match &p.payload {
            Payload::Sip(text) => text.clone().into_bytes(),
            Payload::Rtp(bytes) | Payload::Raw(bytes) => bytes.clone(),
        };
        w.push_udp(*at, to_socket(p.src), to_socket(p.dst), &payload);
    }
    w.into_bytes()
}

/// The in-process reference: one big `process_batch`, then the same
/// final sweep replay performs.
fn reference_run(shards: usize) -> (Vec<Alert>, Vec<Alert>, VidsCounters) {
    let trace = wire_safe_trace();
    let config = Config::builder().shards(shards).build().unwrap();
    let mut pool = VidsPool::new(config);
    let mut sink = CollectSink::new();
    let first_at = trace.first().unwrap().1;
    let last_at = trace.last().unwrap().1;
    let packets: Vec<Packet> = trace.iter().map(|(p, _)| p.clone()).collect();
    pool.process_batch(&packets, first_at, &mut sink);
    pool.tick(last_at + REPLAY_GRACE, &mut sink);
    (sink.into_alerts(), pool.alerts().to_vec(), pool.counters())
}

/// The wire run: encode to pcap, replay through the ingest pipeline.
fn wire_run(
    shards: usize,
    flush_packets: usize,
    swapped: bool,
    linktype: u32,
) -> (Vec<Alert>, Vec<Alert>, VidsCounters) {
    let trace = wire_safe_trace();
    let capture = to_pcap(&trace, swapped, linktype);
    let config = Config::builder().shards(shards).build().unwrap();
    let mut pool = VidsPool::new(config);
    let mut sink = CollectSink::new();
    let report = replay_pcap(capture, &mut pool, flush_packets, None, None, &mut sink).unwrap();
    assert_eq!(report.datagrams as usize, trace.len());
    assert_eq!(report.demux_unknown, 1, "only the Raw stray is unknown");
    assert_eq!(report.last_at, trace.last().unwrap().1);
    (sink.into_alerts(), pool.alerts().to_vec(), pool.counters())
}

/// The parallel wire run: same capture, `threads` classifier threads
/// feeding the engine's epoch-ring pipeline.
fn parallel_run(
    shards: usize,
    flush_packets: usize,
    threads: usize,
) -> (Vec<Alert>, Vec<Alert>, VidsCounters) {
    let trace = wire_safe_trace();
    let capture = to_pcap(&trace, false, LINKTYPE_RAW);
    let config = Config::builder().shards(shards).build().unwrap();
    let mut pool = VidsPool::new(config);
    let mut sink = CollectSink::new();
    let report = replay_pcap_parallel(
        capture,
        &mut pool,
        flush_packets,
        threads,
        None,
        None,
        &mut sink,
    )
    .unwrap();
    assert_eq!(report.datagrams as usize, trace.len());
    assert_eq!(report.demux_unknown, 1, "only the Raw stray is unknown");
    assert_eq!(report.last_at, trace.last().unwrap().1);
    (sink.into_alerts(), pool.alerts().to_vec(), pool.counters())
}

#[test]
fn replay_is_byte_identical_to_in_process_at_1_4_8_shards() {
    for shards in [1usize, 4, 8] {
        let (ref_sink, ref_log, ref_counters) = reference_run(shards);
        assert!(
            ref_sink.iter().any(|a| a.label == labels::INVITE_FLOOD),
            "reference lost the flood at {shards} shards"
        );
        assert!(ref_sink.iter().any(|a| a.label == labels::RTP_AFTER_BYE));
        let (sink, log, counters) = wire_run(shards, 256, false, LINKTYPE_RAW);
        assert_eq!(ref_sink, sink, "sink alerts diverged at {shards} shards");
        assert_eq!(ref_log, log, "alert log diverged at {shards} shards");
        assert_eq!(
            ref_counters, counters,
            "counters diverged at {shards} shards"
        );
        // Byte-identical includes the rendering.
        assert_eq!(format!("{ref_sink:?}"), format!("{sink:?}"));
    }
}

#[test]
fn capture_format_never_changes_the_verdict() {
    let (ref_sink, ref_log, ref_counters) = reference_run(4);
    for swapped in [false, true] {
        for linktype in [LINKTYPE_RAW, LINKTYPE_ETHERNET] {
            let (sink, log, counters) = wire_run(4, 256, swapped, linktype);
            assert_eq!(
                ref_sink, sink,
                "swapped={swapped} linktype={linktype} diverged"
            );
            assert_eq!(ref_log, log);
            assert_eq!(ref_counters, counters);
        }
    }
}

#[test]
fn replay_batch_size_never_changes_the_verdict() {
    let (ref_sink, ref_log, ref_counters) = reference_run(4);
    for flush in [1usize, 7, 10_000] {
        let (sink, log, counters) = wire_run(4, flush, false, LINKTYPE_RAW);
        assert_eq!(ref_sink, sink, "flush_packets={flush} diverged");
        assert_eq!(ref_log, log);
        assert_eq!(ref_counters, counters);
    }
}

/// ISSUE 9's acceptance gate: the parallel driver must be byte-identical
/// to the sequential one at every thread count × shard count combination
/// — the re-sequencing coordinator hides the classifier parallelism
/// completely. Small `flush_packets` (7) forces many epochs so dispatch,
/// completion reordering and the in-flight cap all actually cycle.
#[test]
fn parallel_replay_is_byte_identical_across_thread_and_shard_counts() {
    for shards in [1usize, 4, 8] {
        let (ref_sink, ref_log, ref_counters) = wire_run(shards, 7, false, LINKTYPE_RAW);
        assert!(
            ref_sink.iter().any(|a| a.label == labels::INVITE_FLOOD),
            "sequential reference lost the flood at {shards} shards"
        );
        for threads in [1usize, 2, 4] {
            let (sink, log, counters) = parallel_run(shards, 7, threads);
            assert_eq!(
                ref_sink, sink,
                "sink alerts diverged at {threads} threads x {shards} shards"
            );
            assert_eq!(
                ref_log, log,
                "alert log diverged at {threads} threads x {shards} shards"
            );
            assert_eq!(
                ref_counters, counters,
                "counters diverged at {threads} threads x {shards} shards"
            );
            assert_eq!(format!("{ref_sink:?}"), format!("{sink:?}"));
        }
    }
}

/// The parallel driver records datagrams at submit time on the driving
/// thread, so a tap sees the identical ring layout — same packets, same
/// global sequence numbers, same batch ids — as the sequential replay.
#[test]
fn parallel_replay_preserves_the_recorder_layout() {
    let trace = wire_safe_trace();
    let capture = to_pcap(&trace, false, LINKTYPE_RAW);
    let config = Config::builder().shards(4).build().unwrap();

    let mut seq_pool = VidsPool::new(config);
    let mut seq_rec = Recorder::with_defaults(1);
    let mut seq_tap = RecordTap::new(&mut seq_rec, None);
    let mut seq_sink = CollectSink::new();
    replay_pcap(
        capture.clone(),
        &mut seq_pool,
        7,
        None,
        Some(&mut seq_tap),
        &mut seq_sink,
    )
    .unwrap();

    let mut par_pool = VidsPool::new(config);
    let mut par_rec = Recorder::with_defaults(1);
    let mut par_tap = RecordTap::new(&mut par_rec, None);
    let mut par_sink = CollectSink::new();
    replay_pcap_parallel(
        capture,
        &mut par_pool,
        7,
        4,
        None,
        Some(&mut par_tap),
        &mut par_sink,
    )
    .unwrap();

    assert_eq!(seq_sink.into_alerts(), par_sink.into_alerts());
    assert_eq!(seq_rec.stats(), par_rec.stats());
    let seq_window = seq_rec.window();
    assert!(!seq_window.is_empty());
    assert_eq!(seq_window, par_rec.window(), "ring contents diverged");
}
