//! Allocation budget gate for the flight recorder's steady state.
//!
//! The ring tap sits on the ingest hot path, so its per-datagram cost
//! must be a bounded memcpy into the preallocated arena plus relaxed
//! atomics — **zero** allocations, with telemetry off and on, including
//! when the ring wraps and evicts. Batch marking is a counter bump and
//! must also be free. (Dumping on an alert allocates, deliberately:
//! alerts are rare and the dump leaves the hot path.)
//!
//! Same single-`#[test]` structure as `alloc_budget.rs`: the counting
//! allocator is global, so one test owns the whole measurement.

use std::alloc::{GlobalAlloc, Layout, System};
use std::net::SocketAddr;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

use vids::netsim::time::SimTime;
use vids::record::{RecordedClass, Recorder};
use vids::telemetry::metrics::{Counter, Gauge};
use vids::telemetry::slab::ShardSlab;

struct CountingAlloc;

static ALLOCS: AtomicU64 = AtomicU64::new(0);
static ARMED: AtomicBool = AtomicBool::new(false);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        if ARMED.load(Ordering::Relaxed) {
            ALLOCS.fetch_add(1, Ordering::Relaxed);
        }
        System.alloc(layout)
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        if ARMED.load(Ordering::Relaxed) {
            ALLOCS.fetch_add(1, Ordering::Relaxed);
        }
        System.alloc_zeroed(layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        if ARMED.load(Ordering::Relaxed) {
            ALLOCS.fetch_add(1, Ordering::Relaxed);
        }
        System.realloc(ptr, layout, new_size)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
}

#[global_allocator]
static ALLOCATOR: CountingAlloc = CountingAlloc;

fn count_allocs<R>(f: impl FnOnce() -> R) -> u64 {
    let start = ALLOCS.load(Ordering::SeqCst);
    ARMED.store(true, Ordering::SeqCst);
    let r = f();
    ARMED.store(false, Ordering::SeqCst);
    drop(r);
    ALLOCS.load(Ordering::SeqCst) - start
}

/// Drives `batches × per_batch` datagrams through the recorder and
/// returns how many allocations that made. The payload is larger than
/// arena ÷ slots so the tiny ring below wraps and evicts constantly —
/// the eviction path is part of the steady state being measured.
fn drive(rec: &mut Recorder, batches: u64, per_batch: u64) -> u64 {
    let src: SocketAddr = "10.1.0.10:5060".parse().unwrap();
    let dst: SocketAddr = "10.2.0.10:5060".parse().unwrap();
    let payload = [0x55u8; 200];
    count_allocs(|| {
        let mut t = 0u64;
        for _ in 0..batches {
            for ring in 0..per_batch {
                t += 1;
                rec.record(
                    ring as usize,
                    SimTime::from_millis(t),
                    src,
                    dst,
                    if t.is_multiple_of(2) {
                        RecordedClass::Sip
                    } else {
                        RecordedClass::Rtp
                    },
                    &payload,
                );
            }
            rec.mark_batch();
        }
    })
}

#[test]
fn record_tap_steady_state_is_allocation_free() {
    // A deliberately tiny two-ring recorder: 8 slots / 1 KiB per ring,
    // so 200-byte payloads wrap the arena every ~5 records.
    let mut rec = Recorder::new(2, 8, 1024);

    // Warm once (construction itself allocates; the steady state must not).
    drive(&mut rec, 4, 8);

    // ---- telemetry off --------------------------------------------------
    let n = drive(&mut rec, 16, 8);
    eprintln!("record tap, telemetry off: {n} allocations over 128 datagrams");
    assert_eq!(n, 0, "recorder steady state must not allocate, made {n}");
    let stats = rec.stats();
    assert!(
        stats.rings.overwritten > 0,
        "the tiny ring must have wrapped during the measurement"
    );

    // ---- telemetry on ---------------------------------------------------
    let slab = Arc::new(ShardSlab::new());
    rec.attach_telemetry(Arc::clone(&slab));
    let n = drive(&mut rec, 16, 8);
    eprintln!("record tap, telemetry on: {n} allocations over 128 datagrams");
    assert_eq!(
        n, 0,
        "telemetry mirroring must stay on relaxed atomics, made {n} allocations"
    );
    assert!(
        slab.get(Counter::RingOverwrites) > 0,
        "eviction must be visible in telemetry"
    );
    assert!(
        slab.gauge(Gauge::RingBytes) > 0,
        "live ring bytes must be mirrored"
    );
}
