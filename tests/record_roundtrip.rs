//! The flight recorder's end-to-end determinism gate (DESIGN.md §7h).
//!
//! A ≥100-packet INVITE flood goes through the *recorded* ingest
//! pipeline: pcap bytes → decode → demux → ring tap → sharded engine →
//! alert → `.vdump` dump of the surrounding window. The dump is then
//! read back and replayed through a **fresh** engine under the recorded
//! configuration and batch clocks — and the original alert must
//! reproduce **byte-identically**: same alert encoding (kind, label,
//! call scope, detail, transition trace, timestamp), same engine
//! counters at the moment it fired, same call snapshot.

use std::net::SocketAddrV4;

use vids::core::alert::labels;
use vids::core::config::Config;
use vids::core::cost::CostModel;
use vids::core::pool::VidsPool;
use vids::core::sink::CollectSink;
use vids::ingest::pcap::PcapWriter;
use vids::ingest::record_tap::RecordTap;
use vids::ingest::replay::replay_pcap;
use vids::netsim::time::SimTime;
use vids::record::{replay_vdump, Recorder, Vdump};
use vids::sip::{Request, SipUri};

const FLOOD: usize = 120;

fn flood_capture() -> Vec<u8> {
    let mut w = PcapWriter::new();
    let src: SocketAddrV4 = "10.1.0.10:5060".parse().unwrap();
    let dst: SocketAddrV4 = "10.2.0.10:5060".parse().unwrap();
    let to = SipUri::new("bob", "b.example.com");
    for i in 0..FLOOD {
        let invite = Request::invite(
            &SipUri::new("mallory", "a.example.com"),
            &to,
            &format!("roundtrip-flood-{i}"),
        );
        w.push_udp(
            SimTime::from_millis(10 + 5 * i as u64),
            src,
            dst,
            invite.to_string().as_bytes(),
        );
    }
    w.into_bytes()
}

#[test]
fn recorded_flood_dump_replays_byte_identically_on_a_fresh_engine() {
    let dir = std::env::temp_dir().join("vids-record-roundtrip");
    std::fs::remove_dir_all(&dir).ok();

    // Recorded run: the live pipeline with the ring tap attached.
    let config = Config::default();
    let mut pool = VidsPool::with_cost(config, CostModel::free());
    pool.enable_telemetry(256);
    let mut sink = CollectSink::new();
    let mut recorder = Recorder::with_defaults(1);
    recorder.set_telemetry_ring(256);
    let mut tap = RecordTap::new(&mut recorder, Some(&dir));
    let report = replay_pcap(
        flood_capture(),
        &mut pool,
        config.batch_flush_packets,
        None,
        Some(&mut tap),
        &mut sink,
    )
    .unwrap();
    assert_eq!(report.datagrams as usize, FLOOD);
    let written = tap.written.clone();
    assert!(
        sink.alerts()
            .iter()
            .any(|a| a.label == labels::INVITE_FLOOD),
        "the flood must raise: {:?}",
        sink.alerts()
    );
    assert!(!written.is_empty(), "the alert must trigger a dump");

    // The dump captured the whole ≥100-packet window.
    let dump = Vdump::read_from(&written[0]).unwrap();
    assert!(
        dump.packets.len() >= 100,
        "window too small: {} packets",
        dump.packets.len()
    );
    assert_eq!(dump.alert.label, labels::INVITE_FLOOD);
    assert_eq!(dump.telemetry_ring, 256);
    assert!(
        !dump.alert.trace.is_empty(),
        "telemetry was on, so the alert must carry its transition trace"
    );

    // Deterministic replay: fresh engine, recorded config and clocks.
    let verdict = replay_vdump(&dump);
    assert!(
        verdict.alert_identical,
        "alert did not reproduce byte-identically: {:?}",
        verdict.outcome.alerts
    );
    assert!(verdict.counters_identical, "engine counters diverged");
    assert!(verdict.snapshot_identical, "call snapshot diverged");
    assert!(verdict.identical());

    // The dump is itself deterministic: re-encoding is byte-stable.
    let bytes = std::fs::read(&written[0]).unwrap();
    assert_eq!(bytes, dump.encode(), "dump encoding must round-trip");
    std::fs::remove_dir_all(&dir).ok();
}
