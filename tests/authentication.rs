//! The §3.1 authentication regimes, end to end.
//!
//! "A great deal of the discussion of possible attacks centers around an
//! assumption of lack of proper authentication. However, many attacks are
//! still possible to be launched by an authenticated but misbehaving UA."
//!
//! With digest authentication on BYE enabled:
//! * a spoofed BYE is rejected with 401 — the victim call continues, and
//!   the monitor (which saw BYE then 401) re-opens its machines instead of
//!   raising a false RTP-after-BYE alarm;
//! * honest teardowns transparently answer the challenge;
//! * billing fraud — the *authenticated but misbehaving UA* — is still
//!   caught by the cross-protocol Fig. 5 pattern, the paper's exact point.

use vids::attacks::craft::{self, Target};
use vids::attacks::AttackKind;
use vids::core::alert::{labels, AlertKind};
use vids::netsim::time::SimTime;
use vids::scenario::{Testbed, TestbedConfig};

fn secs(s: u64) -> SimTime {
    SimTime::from_secs(s)
}

fn auth_config(seed: u64) -> TestbedConfig {
    let mut config = TestbedConfig::small(seed);
    config.workload.mean_interarrival_secs = 5.0;
    config.workload.mean_duration_secs = 600.0;
    config.workload.horizon = secs(30);
    config.bye_auth = true;
    config
}

#[test]
fn honest_teardown_answers_the_challenge() {
    let mut config = auth_config(401);
    config.workload.mean_duration_secs = 10.0;
    config.workload.horizon = secs(20);
    let mut tb = Testbed::build(&config);
    tb.run_until(secs(90));

    let completed: u64 = (0..2).map(|i| tb.ua_a_stats(i).calls_completed).sum();
    let retries: u64 = (0..2).map(|i| tb.ua_a_stats(i).auth_retries).sum();
    let challenges: u64 = (0..2).map(|i| tb.ua_b(i).stats().auth_challenges).sum();
    let authenticated: u64 = (0..2).map(|i| tb.ua_b(i).stats().authenticated_byes).sum();
    assert!(completed >= 1, "completed {completed}");
    assert!(challenges >= 1, "callee challenged the BYE");
    assert!(retries >= 1, "caller answered the challenge");
    assert!(authenticated >= 1, "authenticated BYE accepted");

    // The BYE→401→BYE dance must not confuse the monitor.
    let attacks: Vec<_> = tb
        .vids_alerts()
        .iter()
        .filter(|a| a.kind == AlertKind::Attack)
        .collect();
    assert!(attacks.is_empty(), "false positives: {attacks:?}");
}

#[test]
fn spoofed_bye_is_neutralized_by_auth_and_raises_no_false_alarm() {
    let mut tb = Testbed::build(&auth_config(402));
    let (attacker, _) = tb.add_attacker();
    let snap = tb
        .run_until_call_established(0, secs(1), secs(120))
        .expect("call");
    let attack_at = tb.ent.sim.now() + secs(1);
    let (victim, spoof_src) = snap.endpoints(Target::Callee);
    let message = craft::spoofed_bye(&snap, Target::Callee);
    for k in 0..3u64 {
        tb.attacker_mut(attacker).schedule(
            attack_at + SimTime::from_millis(k * 100),
            AttackKind::SpoofedBye {
                victim,
                message: message.clone(),
                spoof_src,
            },
        );
    }
    tb.run_until(attack_at + secs(10));

    // The victim callee challenged and never tore the call down.
    let challenges: u64 = (0..2).map(|i| tb.ua_b(i).stats().auth_challenges).sum();
    assert!(challenges >= 1, "the spoofed BYE was challenged");
    let authenticated: u64 = (0..2).map(|i| tb.ua_b(i).stats().authenticated_byes).sum();
    assert_eq!(authenticated, 0, "the attacker cannot answer");

    // Media kept flowing: the call survived the attack.
    let a0 = tb.ua_a_stats(0);
    assert!(a0.rtp_received > 500, "caller still receiving media");

    // And crucially: no rtp-after-bye false positive — the monitor saw the
    // 401 and re-opened the RTP machine.
    assert!(
        !tb.vids_alerts()
            .iter()
            .any(|a| a.label == labels::RTP_AFTER_BYE),
        "alerts: {:?}",
        tb.vids_alerts()
    );
}

#[test]
fn authenticated_but_misbehaving_ua_is_still_detected() {
    // Billing fraud under full authentication: the fraudster's own BYE
    // carries valid credentials, the callee accepts it — and the fraudster
    // keeps streaming. Only the cross-protocol machines catch this.
    let mut config = auth_config(403);
    config.workload.mean_duration_secs = 8.0;
    config.fraud_caller_0 = Some(secs(5));
    let mut tb = Testbed::build(&config);
    tb.run_until(secs(120));

    let authenticated: u64 = (0..2).map(|i| tb.ua_b(i).stats().authenticated_byes).sum();
    assert!(authenticated >= 1, "the fraudster authenticated its BYE");
    assert!(
        tb.vids_alerts()
            .iter()
            .any(|a| a.label == labels::RTP_AFTER_BYE),
        "cross-protocol detection must survive authentication: {:?}",
        tb.vids_alerts()
    );
}
