//! # vids — VoIP Intrusion Detection Through Interacting Protocol State Machines
//!
//! A full reproduction of Sengar, Wijesekera, Wang & Jajodia's DSN 2006
//! paper: a specification-based VoIP IDS built from **communicating
//! extended finite state machines** for SIP and RTP, evaluated on a
//! simulated twin-enterprise testbed.
//!
//! The workspace splits into layers, re-exported here:
//!
//! * [`sip`], [`sdp`], [`rtp`] — the protocol substrates (parsers, message
//!   models, RFC 3261 transactions, the RFC 3550 jitter estimator).
//! * [`efsm`] — the paper's formal model (§4): EFSMs with predicates and
//!   update actions, composed into networks with FIFO δ channels where
//!   synchronization events outrank data events.
//! * [`netsim`] — a deterministic discrete-event network simulator standing
//!   in for the paper's OPNET testbed (Fig. 7 topology builder included).
//! * [`agents`] — simulated SIP phones and proxies that generate the §7.1
//!   workload and collect the Figs. 8–10 measurements.
//! * [`attacks`] — injectors for every §3 threat.
//! * [`core`] — **vids itself**: classifier, fact base, protocol machines,
//!   attack patterns, analysis engine, inline tap.
//! * [`cluster`] — multi-tenant federation: N in-process pool nodes behind
//!   a rendezvous-hash gateway with a deterministic cross-node alert
//!   merge, plus per-tenant thresholds and call-table quotas
//!   (DESIGN.md §7j).
//! * [`ingest`] — the live wire tier: UDP receiver pools, classic pcap
//!   reading, SIP/RTP demultiplexing, the `vids serve` / `vids replay`
//!   pipelines.
//! * [`telemetry`] — runtime observability: per-shard atomic counters,
//!   gauges and log-bucketed histograms merged into deterministic
//!   snapshots, plus the per-call transition rings behind alert traces.
//! * [`record`] — the flight recorder: always-on per-shard datagram
//!   rings, alert-triggered `.vdump` forensic dumps, deterministic
//!   dump replay and a drop-one-packet minimizer (DESIGN.md §7h).
//! * [`run_report`] — shared end-of-run reporting for the `vids serve`
//!   and `vids replay` pipelines.
//! * [`scenario`] — a one-call harness wiring all of the above: build the
//!   enterprise testbed with or without vids inline, run workloads, launch
//!   attacks, read back alerts and QoS measurements.
//!
//! ## Quickstart
//!
//! ```
//! use vids::scenario::{Testbed, TestbedConfig};
//! use vids::netsim::time::SimTime;
//!
//! // Two UAs per site, vids inline, one scripted call.
//! let mut config = TestbedConfig::small(42);
//! config.workload.horizon = SimTime::from_secs(30);
//! let mut tb = Testbed::build(&config);
//! tb.run_until(SimTime::from_secs(40));
//! assert!(tb.vids_alerts().is_empty(), "clean traffic raises no alarms");
//! ```

pub use vids_agents as agents;
pub use vids_attacks as attacks;
pub use vids_cluster as cluster;
pub use vids_core as core;
pub use vids_efsm as efsm;
pub use vids_ingest as ingest;
pub use vids_netsim as netsim;
pub use vids_record as record;
pub use vids_rtp as rtp;
pub use vids_scan as scan;
pub use vids_sdp as sdp;
pub use vids_sip as sip;
pub use vids_telemetry as telemetry;

pub mod run_report;
pub mod scenario;
