//! Shared end-of-run reporting for the wire pipelines.
//!
//! `vids serve` and `vids replay` finish the same way: a drain summary,
//! a throughput figure, the engine counters, the alert report and an
//! optional telemetry snapshot. This module renders all of that in one
//! place so the two commands cannot drift apart, and adds the flight
//! recorder's summary for runs started with `--record DIR`.

use std::path::PathBuf;

use vids_core::alert::Alert;
use vids_core::engine::VidsCounters;
use vids_core::report::AlertReport;
use vids_core::telemetry::Snapshot;
use vids_ingest::replay::ReplayReport;
use vids_ingest::server::ServeReport;
use vids_netsim::time::SimTime;
use vids_record::RecorderStats;

/// Which pipeline produced the run — decides the summary's phrasing
/// (a drained live socket vs. a replayed capture).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RunKind {
    Serve,
    Replay,
}

/// The common shape of a finished ingest run.
#[derive(Debug, Clone)]
pub struct RunSummary {
    pub kind: RunKind,
    pub datagrams: u64,
    pub demux_unknown: u64,
    /// Plain-IPv6 datagrams the v4-only engine dropped at classify time.
    pub datagrams_ipv6: u64,
    /// Kernel-reported receive drops; only the live path has them.
    pub dropped: Option<u64>,
    pub batches: u64,
    /// Capture-clock span of the run.
    pub span: SimTime,
    /// Wall-clock seconds spent, when throughput is meaningful.
    pub wall_secs: Option<f64>,
}

impl RunSummary {
    pub fn from_serve(report: &ServeReport) -> Self {
        RunSummary {
            kind: RunKind::Serve,
            datagrams: report.datagrams_rx,
            demux_unknown: report.demux_unknown,
            datagrams_ipv6: report.datagrams_ipv6,
            dropped: Some(report.datagrams_dropped),
            batches: report.batches,
            span: report.ended_at,
            wall_secs: None,
        }
    }

    pub fn from_replay(report: &ReplayReport, wall_secs: f64) -> Self {
        RunSummary {
            kind: RunKind::Replay,
            datagrams: report.datagrams,
            demux_unknown: report.demux_unknown,
            datagrams_ipv6: report.datagrams_ipv6,
            dropped: None,
            batches: report.batches,
            span: report.last_at,
            wall_secs: Some(wall_secs),
        }
    }

    /// The drain line, plus a throughput line when wall time was measured.
    pub fn render(&self) -> String {
        // The engine is IPv4-only; v6 traffic is dropped at classify time
        // but must never vanish silently, so the drain line calls it out
        // whenever any arrived.
        let ipv6 = if self.datagrams_ipv6 > 0 {
            format!(", {} ipv6", self.datagrams_ipv6)
        } else {
            String::new()
        };
        let mut out = match self.kind {
            RunKind::Serve => format!(
                "drained: {} datagrams ({} unknown{ipv6}, {} dropped) in {} batches over {:.1} s",
                self.datagrams,
                self.demux_unknown,
                self.dropped.unwrap_or(0),
                self.batches,
                self.span.as_secs_f64()
            ),
            RunKind::Replay => format!(
                "replayed {} datagrams ({} unknown{ipv6}) in {} batches; capture spans {:.3} s",
                self.datagrams,
                self.demux_unknown,
                self.batches,
                self.span.as_secs_f64()
            ),
        };
        if let Some(wall) = self.wall_secs {
            if wall > 0.0 {
                out.push_str(&format!(
                    "\nthroughput: {:.0} pps over {wall:.3} s of wall clock",
                    self.datagrams as f64 / wall
                ));
            }
        }
        out
    }
}

/// The engine-counter line both commands print.
pub fn counters_line(counters: &VidsCounters) -> String {
    format!("counters: {counters:?}")
}

/// The per-kind alert report (empty string when no alerts fired).
pub fn alert_report(alerts: &[Alert]) -> String {
    AlertReport::from_alerts(alerts).to_string()
}

/// The flight recorder's end-of-run summary: ring occupancy, dump count
/// and one line per dump written.
pub fn recorder_summary(stats: &RecorderStats, written: &[PathBuf], io_errors: u64) -> String {
    let mut out = format!(
        "recorder: {} datagrams ringed ({} overwritten, {} oversize), {} B live, {} dump(s)",
        stats.rings.recorded,
        stats.rings.overwritten,
        stats.rings.oversize,
        stats.rings.bytes_live,
        stats.dumps_written
    );
    if io_errors > 0 {
        out.push_str(&format!(", {io_errors} dump write error(s)"));
    }
    for path in written {
        out.push_str(&format!("\n  wrote {}", path.display()));
    }
    out
}

/// Writes a telemetry series to `path` — CSV when the name says so,
/// JSON lines otherwise.
pub fn write_telemetry(path: &str, series: &[Snapshot]) -> Result<(), String> {
    let mut out = String::new();
    if path.ends_with(".csv") {
        out.push_str(&Snapshot::csv_header());
        out.push('\n');
        for snap in series {
            out.push_str(&snap.to_csv_row());
            out.push('\n');
        }
    } else {
        for snap in series {
            out.push_str(&snap.to_jsonl());
            out.push('\n');
        }
    }
    std::fs::write(path, out).map_err(|e| format!("cannot write {path}: {e}"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn serve_summary_keeps_the_historical_wording() {
        let s = RunSummary {
            kind: RunKind::Serve,
            datagrams: 30,
            demux_unknown: 1,
            datagrams_ipv6: 0,
            dropped: Some(2),
            batches: 4,
            span: SimTime::from_millis(2_500),
            wall_secs: None,
        };
        assert_eq!(
            s.render(),
            "drained: 30 datagrams (1 unknown, 2 dropped) in 4 batches over 2.5 s"
        );
    }

    #[test]
    fn ipv6_drops_surface_in_the_drain_line() {
        let s = RunSummary {
            kind: RunKind::Serve,
            datagrams: 30,
            demux_unknown: 1,
            datagrams_ipv6: 5,
            dropped: Some(2),
            batches: 4,
            span: SimTime::from_millis(2_500),
            wall_secs: None,
        };
        assert_eq!(
            s.render(),
            "drained: 30 datagrams (1 unknown, 5 ipv6, 2 dropped) in 4 batches over 2.5 s"
        );
        let r = RunSummary {
            kind: RunKind::Replay,
            dropped: None,
            ..s
        };
        assert!(r
            .render()
            .starts_with("replayed 30 datagrams (1 unknown, 5 ipv6) in 4 batches"));
    }

    #[test]
    fn replay_summary_appends_throughput_when_wall_time_is_real() {
        let s = RunSummary {
            kind: RunKind::Replay,
            datagrams: 1000,
            demux_unknown: 0,
            datagrams_ipv6: 0,
            dropped: None,
            batches: 8,
            span: SimTime::from_millis(1_500),
            wall_secs: Some(0.5),
        };
        let text = s.render();
        assert!(text.starts_with(
            "replayed 1000 datagrams (0 unknown) in 8 batches; capture spans 1.500 s"
        ));
        assert!(text.contains("throughput: 2000 pps over 0.500 s"));
        // Zero wall time suppresses the division.
        let degenerate = RunSummary {
            wall_secs: Some(0.0),
            ..s
        };
        assert!(!degenerate.render().contains("throughput"));
    }

    #[test]
    fn recorder_summary_lists_dumps_and_errors() {
        let stats = RecorderStats {
            rings: vids_record::RingStats {
                recorded: 100,
                overwritten: 3,
                oversize: 0,
                bytes_live: 4096,
                slots_live: 97,
            },
            dumps_written: 2,
            pending: 0,
        };
        let written = vec![PathBuf::from("/tmp/000000-invite-flood.vdump")];
        let text = recorder_summary(&stats, &written, 1);
        assert!(text.contains("100 datagrams ringed (3 overwritten, 0 oversize)"));
        assert!(text.contains("2 dump(s), 1 dump write error(s)"));
        assert!(text.contains("wrote /tmp/000000-invite-flood.vdump"));
    }
}
