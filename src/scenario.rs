//! The experiment harness: the Fig. 7 testbed, assembled and runnable.
//!
//! Every integration test, example and benchmark builds on [`Testbed`]:
//! it wires the twin-enterprise topology with [`vids_agents::UserAgent`]s
//! driven by a deterministic [`vids_netsim::workload::CallPlan`], proxies
//! for both domains, and — optionally — the vids monitor inline on the tap
//! node. Attackers attach to the Internet core and are armed between
//! simulation phases with identifiers "sniffed" from the victim UAs.

use std::sync::Arc;

use vids_agents::call::{CallState, PlannedCall};
use vids_agents::proxy::Proxy;
use vids_agents::ua::{UaConfig, UaStats, UserAgent};
use vids_agents::{site_domain, ua_uri};
use vids_attacks::{Attacker, DialogSnapshot};
use vids_core::alert::Alert;
use vids_core::cost::CostModel;
use vids_core::sink::CollectSink;
use vids_core::tap::VidsTap;
use vids_core::telemetry::{Registry, Snapshot};
use vids_core::{Config, Monitor};
use vids_netsim::engine::NodeId;
use vids_netsim::node::{Host, PassiveTap, Tap, TapNode};
use vids_netsim::packet::Address;
use vids_netsim::time::SimTime;
use vids_netsim::topology::{proxy_addr, ua_addr, Enterprise, SITE_A, SITE_B};
use vids_netsim::workload::{CallPlan, WorkloadSpec};

/// Configuration of one testbed run.
#[derive(Debug, Clone)]
pub struct TestbedConfig {
    /// Simulation seed (workload and network randomness).
    pub seed: u64,
    /// UAs per site (the paper uses 20 per enterprise).
    pub uas_per_site: usize,
    /// The random call workload UAs of site A place toward site B.
    pub workload: WorkloadSpec,
    /// `Some` mounts vids inline with the given detection config and cost
    /// model; `None` runs the passive "without vids" baseline.
    pub vids: Option<(Config, CostModel)>,
    /// Optional billing-fraud misbehavior for site-A UA 0 (§3.1).
    pub fraud_caller_0: Option<SimTime>,
    /// Optional legitimate mid-call re-INVITE for site-A UA 0 (media moves
    /// to a new port this long after establishment).
    pub reinvite_caller_0: Option<SimTime>,
    /// Digest authentication on BYE for every UA (RFC 3261 §22). Off by
    /// default: the paper's threat model assumes no authentication.
    pub bye_auth: bool,
}

impl TestbedConfig {
    /// The paper's §7.1 setup: 20 UAs per site, 120-minute horizon, vids
    /// inline with default thresholds and costs.
    pub fn paper(seed: u64) -> Self {
        TestbedConfig {
            seed,
            uas_per_site: 20,
            workload: WorkloadSpec::default(),
            vids: Some((Config::default(), CostModel::default())),
            fraud_caller_0: None,
            reinvite_caller_0: None,
            bye_auth: false,
        }
    }

    /// A small, fast variant for tests: 2 UAs per site, short horizon,
    /// sparse calls.
    pub fn small(seed: u64) -> Self {
        TestbedConfig {
            seed,
            uas_per_site: 2,
            workload: WorkloadSpec {
                callers: 2,
                callees: 2,
                mean_interarrival_secs: 20.0,
                mean_duration_secs: 10.0,
                horizon: SimTime::from_secs(60),
            },
            vids: Some((Config::default(), CostModel::default())),
            fraud_caller_0: None,
            reinvite_caller_0: None,
            bye_auth: false,
        }
    }

    /// The same scenario without vids (passive tap), for baselines.
    #[must_use]
    pub fn without_vids(mut self) -> Self {
        self.vids = None;
        self
    }
}

/// The assembled testbed.
pub struct Testbed {
    /// The underlying topology and simulator.
    pub ent: Enterprise,
    plan: CallPlan,
    has_vids: bool,
}

impl Testbed {
    /// Builds the testbed. The call plan is drawn deterministically from
    /// `config.seed`, so a with-vids and a without-vids run over the same
    /// seed replay identical call patterns (the paper's Figs. 9–10
    /// comparisons rely on this).
    pub fn build(config: &TestbedConfig) -> Testbed {
        let tap: Box<dyn Tap> = match &config.vids {
            Some((cfg, cost)) => Box::new(VidsTap::with_cost(*cfg, *cost)),
            None => Box::new(PassiveTap),
        };
        let has_vids = config.vids.is_some();
        Testbed::build_with_tap(config, tap, has_vids)
    }

    /// Builds the testbed with a caller-supplied capture tap (e.g. a
    /// recording [`vids_netsim::trace::TraceTap`]) while keeping the full
    /// workload and misbehavior wiring of [`Testbed::build`]. The harness
    /// treats the run as vids-less: [`Testbed::vids`] returns `None` and
    /// the capture is read back by downcasting the tap node directly.
    pub fn build_capture(config: &TestbedConfig, tap: Box<dyn Tap>) -> Testbed {
        Testbed::build_with_tap(config, tap, false)
    }

    fn build_with_tap(config: &TestbedConfig, tap: Box<dyn Tap>, has_vids: bool) -> Testbed {
        let plan = CallPlan::generate(&config.workload, config.seed);
        let fraud = config.fraud_caller_0;
        let reinvite = config.reinvite_caller_0;
        let auth: Option<String> = config.bye_auth.then(|| "s3cret".to_owned());
        let auth_b = auth.clone();
        let plan_ref = &plan;
        let ent = Enterprise::build(
            config.seed,
            config.uas_per_site,
            config.uas_per_site,
            tap,
            move |i, addr| {
                let mut cfg = UaConfig::new(
                    format!("ua{i}"),
                    site_domain(SITE_A),
                    addr,
                    proxy_addr(SITE_A),
                );
                cfg.auth_password = auth.clone();
                if i == 0 {
                    cfg.fraud_media_after_bye = fraud;
                    cfg.reinvite_after = reinvite;
                }
                let calls: Vec<PlannedCall> = plan_ref
                    .for_caller(i)
                    .map(|c| PlannedCall {
                        at: c.start,
                        callee: ua_uri(c.callee, site_domain(SITE_B)),
                        duration: c.duration,
                    })
                    .collect();
                Box::new(UserAgent::new(cfg, calls))
            },
            move |i, addr| {
                let mut cfg = UaConfig::new(
                    format!("ua{i}"),
                    site_domain(SITE_B),
                    addr,
                    proxy_addr(SITE_B),
                );
                cfg.auth_password = auth_b.clone();
                Box::new(UserAgent::new(cfg, Vec::new()))
            },
            |addr| {
                let mut p = Proxy::new(addr, site_domain(SITE_A));
                p.add_remote_domain(site_domain(SITE_B), proxy_addr(SITE_B));
                Box::new(p)
            },
            |addr| {
                let mut p = Proxy::new(addr, site_domain(SITE_B));
                p.add_remote_domain(site_domain(SITE_A), proxy_addr(SITE_A));
                Box::new(p)
            },
        );
        Testbed {
            ent,
            plan,
            has_vids,
        }
    }

    /// Assembles a testbed from pre-built parts — for callers that mount a
    /// custom tap (e.g. a capture-only [`vids_netsim::trace::TraceTap`])
    /// but still want the harness's sniffing and accessor helpers.
    /// `has_vids` tells the harness whether [`Testbed::vids`] may downcast
    /// the tap to a `VidsTap`.
    pub fn from_parts(ent: Enterprise, plan: CallPlan, has_vids: bool) -> Testbed {
        Testbed {
            ent,
            plan,
            has_vids,
        }
    }

    /// The deterministic call plan driving site A's UAs.
    pub fn plan(&self) -> &CallPlan {
        &self.plan
    }

    /// Advances the simulation to `t`.
    pub fn run_until(&mut self, t: SimTime) {
        self.ent.sim.run_until(t);
    }

    /// Enables telemetry on the inline monitor (`None` when running the
    /// passive baseline); see [`VidsTap::enable_telemetry`].
    pub fn enable_telemetry(&mut self, ring_capacity: usize) -> Option<Arc<Registry>> {
        self.vids_mut().map(|v| v.enable_telemetry(ring_capacity))
    }

    /// Advances the simulation to `until`, taking a telemetry snapshot
    /// every `every` of simulated time (and a final one at `until` when the
    /// horizon is not a multiple of the interval). Returns the sampled
    /// series; empty when vids is not mounted or telemetry is not enabled —
    /// call [`Testbed::enable_telemetry`] first.
    ///
    /// # Panics
    ///
    /// Panics if `every` is zero.
    pub fn run_sampled(&mut self, until: SimTime, every: SimTime) -> Vec<(SimTime, Snapshot)> {
        assert!(!every.is_zero(), "sampling interval must be positive");
        let mut series = Vec::new();
        let mut now = self.ent.sim.now();
        while now < until {
            now = (now + every).min(until);
            self.run_until(now);
            if let Some(snap) = self.vids().and_then(|v| v.telemetry_snapshot(now)) {
                series.push((now, snap));
            }
        }
        series
    }

    /// A site-A UA by index.
    pub fn ua_a(&self, i: usize) -> &UserAgent {
        self.ent.sim.node_as::<Host>(self.ent.ua_a[i]).app_as()
    }

    /// A site-B UA by index.
    pub fn ua_b(&self, i: usize) -> &UserAgent {
        self.ent.sim.node_as::<Host>(self.ent.ua_b[i]).app_as()
    }

    /// Measurement shortcut: a site-A UA's stats.
    pub fn ua_a_stats(&self, i: usize) -> &UaStats {
        self.ua_a(i).stats()
    }

    /// Site B's proxy (the Fig. 8 observation point).
    pub fn proxy_b(&self) -> &Proxy {
        self.ent.sim.node_as::<Host>(self.ent.proxy_b).app_as()
    }

    /// The inline vids monitor, if mounted.
    pub fn vids(&self) -> Option<&VidsTap> {
        if !self.has_vids {
            return None;
        }
        Some(self.ent.sim.node_as::<TapNode>(self.ent.tap).tap_as())
    }

    /// Mutable access to the inline monitor (flush timers post-run).
    pub fn vids_mut(&mut self) -> Option<&mut VidsTap> {
        if !self.has_vids {
            return None;
        }
        Some(
            self.ent
                .sim
                .node_as_mut::<TapNode>(self.ent.tap)
                .tap_as_mut(),
        )
    }

    /// Alerts raised so far (empty when running without vids).
    pub fn vids_alerts(&self) -> &[Alert] {
        self.vids().map(|v| v.alerts()).unwrap_or(&[])
    }

    /// Flushes vids' idle timers at simulated time `now`, returning the
    /// timer-driven alerts. Goes through the shared [`Monitor`] interface —
    /// callers no longer reach into `vids_mut().vids_mut()` by hand at the
    /// end of a run. No-op without vids.
    pub fn flush_vids(&mut self, now: SimTime) -> Vec<Alert> {
        match self.vids_mut() {
            Some(tap) => {
                let mut sink = CollectSink::new();
                Monitor::tick(tap, now, &mut sink);
                sink.into_alerts()
            }
            None => Vec::new(),
        }
    }

    /// Attaches an [`Attacker`] to the Internet core.
    pub fn add_attacker(&mut self) -> (NodeId, Address) {
        self.ent.add_internet_host(Box::new(Attacker::new()))
    }

    /// Mutable access to an attacker, for arming between phases.
    pub fn attacker_mut(&mut self, node: NodeId) -> &mut Attacker {
        self.ent.sim.node_as_mut::<Host>(node).app_as_mut()
    }

    /// Sniffs the first currently established call placed by site-A UA
    /// `caller`: the dialog/media identifiers an on-path attacker would
    /// capture. `None` when the UA has no established call.
    pub fn sniff_established_call(&self, caller: usize) -> Option<DialogSnapshot> {
        let ua = self.ua_a(caller);
        let call_id = ua
            .calls_in_state(CallState::Established)
            .into_iter()
            .next()?;
        let info = ua.call_info(&call_id)?;
        // The callee address: resolved from the planned callee index via
        // the call's To URI user part (`ua{i}`).
        let callee_ip = info
            .invite
            .uri
            .user()
            .and_then(|u| u.strip_prefix("ua"))
            .and_then(|n| n.parse::<usize>().ok())
            .map(|i| ua_addr(SITE_B, i))?;
        Some(DialogSnapshot::from_caller(
            info,
            ua_addr(SITE_A, caller),
            callee_ip,
        ))
    }

    /// Sniffs a call still in the ringing phase (for CANCEL DoS).
    pub fn sniff_ringing_call(&self, caller: usize) -> Option<DialogSnapshot> {
        let ua = self.ua_a(caller);
        let call_id = ua
            .calls_in_state(CallState::Ringing)
            .into_iter()
            .chain(ua.calls_in_state(CallState::Inviting))
            .next()?;
        let info = ua.call_info(&call_id)?;
        let callee_ip = info
            .invite
            .uri
            .user()
            .and_then(|u| u.strip_prefix("ua"))
            .and_then(|n| n.parse::<usize>().ok())
            .map(|i| ua_addr(SITE_B, i))?;
        Some(DialogSnapshot::from_caller(
            info,
            ua_addr(SITE_A, caller),
            callee_ip,
        ))
    }

    /// Runs until site-A UA `caller` has an established call, checking
    /// every `step`; gives up at `deadline`. Returns the snapshot.
    pub fn run_until_call_established(
        &mut self,
        caller: usize,
        step: SimTime,
        deadline: SimTime,
    ) -> Option<DialogSnapshot> {
        let mut now = self.ent.sim.now();
        while now < deadline {
            now += step;
            self.run_until(now);
            if let Some(snap) = self.sniff_established_call(caller) {
                return Some(snap);
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_testbed_runs_clean() {
        let mut config = TestbedConfig::small(11);
        config.workload.horizon = SimTime::from_secs(40);
        let mut tb = Testbed::build(&config);
        tb.run_until(SimTime::from_secs(80));
        let placed: u64 = (0..2).map(|i| tb.ua_a_stats(i).calls_placed).sum();
        assert!(placed >= 1, "workload placed {placed} calls");
        assert!(
            tb.vids_alerts().is_empty(),
            "alerts: {:?}",
            tb.vids_alerts()
        );
        assert!(tb.vids().unwrap().packets_seen() > 100);
    }

    #[test]
    fn baseline_has_no_monitor() {
        let config = TestbedConfig::small(11).without_vids();
        let tb = Testbed::build(&config);
        assert!(tb.vids().is_none());
        assert!(tb.vids_alerts().is_empty());
    }

    #[test]
    fn sampled_run_yields_monotone_snapshots() {
        use vids_core::telemetry::Counter;

        let mut config = TestbedConfig::small(11);
        config.workload.horizon = SimTime::from_secs(40);
        let mut tb = Testbed::build(&config);
        assert!(tb.enable_telemetry(64).is_some());
        let series = tb.run_sampled(SimTime::from_secs(75), SimTime::from_secs(10));
        assert_eq!(series.len(), 8, "10 s interval over 75 s: 7 full + 1 final");
        assert_eq!(series.last().unwrap().0, SimTime::from_secs(75));
        let mut last = 0u64;
        for (t, snap) in &series {
            assert_eq!(snap.time_ms, t.as_millis());
            let sip = snap.merged().counter(Counter::SipPackets);
            assert!(sip >= last, "counters never decrease");
            last = sip;
        }
        assert!(last > 0, "the workload produced SIP traffic");
        // Baseline run samples nothing.
        let mut passive = Testbed::build(&TestbedConfig::small(11).without_vids());
        assert!(passive.enable_telemetry(64).is_none());
        assert!(passive
            .run_sampled(SimTime::from_secs(10), SimTime::from_secs(5))
            .is_empty());
    }

    #[test]
    fn sniffing_finds_established_call() {
        let mut config = TestbedConfig::small(13);
        config.workload.mean_interarrival_secs = 5.0;
        config.workload.mean_duration_secs = 30.0;
        let mut tb = Testbed::build(&config);
        let snap = tb
            .run_until_call_established(0, SimTime::from_secs(1), SimTime::from_secs(60))
            .expect("a call should establish within a minute");
        assert!(!snap.call_id.is_empty());
        assert!(snap.caller_ssrc.is_some());
        assert_eq!(snap.caller_addr, ua_addr(SITE_A, 0));
    }
}
