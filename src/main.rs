//! The `vids` command-line tool: run the reproduction's experiments from a
//! shell without writing Rust.
//!
//! ```text
//! vids simulate [--minutes N] [--seed S] [--uas N] [--no-vids] [--auth] [--csv FILE]
//! vids machines [--dot DIR]
//! vids sensitivity
//! ```

use std::io::Write as _;

use vids::core::alert::AlertKind;
use vids::core::report::AlertReport;
use vids::efsm::analysis::{attack_paths, to_dot};
use vids::netsim::stats::Summary;
use vids::netsim::time::SimTime;
use vids::scenario::{Testbed, TestbedConfig};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let code = match args.first().map(String::as_str) {
        Some("simulate") => simulate(&args[1..]),
        Some("machines") => machines(&args[1..]),
        Some("sensitivity") => sensitivity(),
        Some("help") | Some("--help") | None => {
            usage();
            0
        }
        Some(other) => {
            eprintln!("unknown command: {other}\n");
            usage();
            2
        }
    };
    std::process::exit(code);
}

fn usage() {
    println!(
        "vids — VoIP intrusion detection through interacting protocol state machines\n\
         \n\
         USAGE:\n\
         \x20 vids simulate [--minutes N] [--seed S] [--uas N] [--interarrival S] [--duration S]\n\
         \x20              [--no-vids] [--auth] [--csv FILE]\n\
         \x20     run the Fig. 7 enterprise testbed and print the evaluation summary\n\
         \x20 vids machines [--dot DIR]\n\
         \x20     print the specification machines' attack patterns; optionally write\n\
         \x20     Graphviz .dot files to DIR\n\
         \x20 vids sensitivity\n\
         \x20     print the E7 detection-sensitivity tables"
    );
}

fn flag_value<'a>(args: &'a [String], name: &str) -> Option<&'a str> {
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1))
        .map(String::as_str)
}

fn has_flag(args: &[String], name: &str) -> bool {
    args.iter().any(|a| a == name)
}

fn simulate(args: &[String]) -> i32 {
    let minutes: u64 = flag_value(args, "--minutes").and_then(|v| v.parse().ok()).unwrap_or(5);
    let seed: u64 = flag_value(args, "--seed").and_then(|v| v.parse().ok()).unwrap_or(1);
    let uas: usize = flag_value(args, "--uas").and_then(|v| v.parse().ok()).unwrap_or(20);

    let interarrival: f64 = flag_value(args, "--interarrival")
        .and_then(|v| v.parse().ok())
        .unwrap_or(180.0);
    let duration: f64 = flag_value(args, "--duration")
        .and_then(|v| v.parse().ok())
        .unwrap_or(120.0);
    let mut config = TestbedConfig::paper(seed);
    config.uas_per_site = uas;
    config.workload.callers = uas;
    config.workload.callees = uas;
    config.workload.mean_interarrival_secs = interarrival;
    config.workload.mean_duration_secs = duration;
    config.workload.horizon = SimTime::from_secs(minutes * 60);
    config.bye_auth = has_flag(args, "--auth");
    if has_flag(args, "--no-vids") {
        config = config.without_vids();
    }

    eprintln!("simulating {uas} UAs/site for {minutes} min (seed {seed})...");
    let mut tb = Testbed::build(&config);
    tb.run_until(SimTime::from_secs(minutes * 60 + 60));

    let mut setup = Summary::new();
    let mut rtp_delay = Summary::new();
    let mut placed = 0u64;
    let mut completed = 0u64;
    for i in 0..uas {
        let s = tb.ua_a_stats(i);
        setup.merge(&s.setup_delays.summary());
        rtp_delay.merge(&s.rtp_delay);
        placed += s.calls_placed;
        completed += s.calls_completed;
    }
    println!("calls:        placed {placed}, completed {completed}");
    println!("setup delay:  {setup}");
    println!("rtp delay:    {rtp_delay}");

    if let Some(vids) = tb.vids() {
        println!("monitor:      {} packets seen", vids.packets_seen());
        println!("              {:?}", vids.vids().counters());
        println!("              {:?}", vids.vids().factbase_stats());
        println!("              memory {} B", vids.vids().memory_bytes());
        println!("              CPU overhead {:.2} %", vids.cpu_overhead() * 100.0);
        let report = AlertReport::from_alerts(vids.alerts());
        print!("{report}");
        if report.count_kind(AlertKind::Attack) == 0 {
            println!("verdict: clean run, zero false positives");
        }
        if let Some(path) = flag_value(args, "--csv") {
            match std::fs::File::create(path).and_then(|mut f| f.write_all(report.to_csv().as_bytes())) {
                Ok(()) => println!("alert CSV written to {path}"),
                Err(e) => {
                    eprintln!("cannot write {path}: {e}");
                    return 1;
                }
            }
        }
    } else {
        println!("monitor:      none (baseline run)");
    }
    0
}

fn machines(args: &[String]) -> i32 {
    let cfg = vids::core::Config::default();
    let defs = [
        vids::core::machines::sip::sip_call_machine(&cfg),
        vids::core::machines::rtp::rtp_session_machine(&cfg),
        vids::core::machines::flood::invite_flood_machine(&cfg),
        vids::core::machines::flood::response_flood_machine(&cfg),
        vids::core::machines::register::registration_machine(),
    ];
    for def in &defs {
        println!(
            "\n### `{}` — {} states, {} transitions",
            def.name(),
            def.state_count(),
            def.transition_count()
        );
        for p in attack_paths(def) {
            println!("{p}");
        }
    }
    if let Some(dir) = flag_value(args, "--dot") {
        if let Err(e) = std::fs::create_dir_all(dir) {
            eprintln!("cannot create {dir}: {e}");
            return 1;
        }
        for def in &defs {
            let path = format!("{dir}/{}.dot", def.name());
            if let Err(e) = std::fs::write(&path, to_dot(def)) {
                eprintln!("cannot write {path}: {e}");
                return 1;
            }
            println!("wrote {path}");
        }
    }
    0
}

fn sensitivity() -> i32 {
    use std::sync::Arc;
    use vids::core::machines::flood::window_counter_machine;
    use vids::efsm::network::Network;
    use vids::efsm::Event;

    println!("INVITE flooding: detection delay vs. attack rate (N=10, T1=1s)");
    println!("{:>12} {:>18}", "rate (pps)", "delay (ms)");
    for rate in [20.0, 50.0, 100.0, 200.0, 1000.0f64] {
        let def = Arc::new(window_counter_machine("flood", "SIP.INVITE", 10, 1_000, "f"));
        let mut net = Network::new();
        let id = net.add_machine(def);
        let gap = (1_000.0 / rate) as u64;
        let mut t = 0u64;
        let delay = loop {
            net.advance_time(t);
            if !net.deliver(id, Event::data("SIP.INVITE"), t).alerts.is_empty() {
                break Some(t);
            }
            t += gap.max(1);
            if t > 600_000 {
                break None;
            }
        };
        println!(
            "{:>12} {:>18}",
            rate,
            delay.map(|d| d.to_string()).unwrap_or_else(|| "none".into())
        );
    }
    println!("\n(see `cargo bench -p vids-bench --bench detection_sensitivity` for the full E7 tables)");
    0
}
