//! The `vids` command-line tool: run the reproduction's experiments from a
//! shell without writing Rust.
//!
//! ```text
//! vids simulate [--minutes N] [--seed S] [--uas N] [--no-vids] [--auth] [--csv FILE]
//!               [--telemetry FILE] [--telemetry-interval SECS]
//! vids top [--shards N] [--seconds S] [--seed S]
//! vids machines [--dot DIR]
//! vids sensitivity
//! ```

use std::io::Write as _;

use vids::core::alert::AlertKind;
use vids::core::report::AlertReport;
use vids::core::telemetry::Snapshot;
use vids::efsm::analysis::{attack_paths, to_dot};
use vids::netsim::stats::Summary;
use vids::netsim::time::SimTime;
use vids::scenario::{Testbed, TestbedConfig};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let code = match args.first().map(String::as_str) {
        Some("simulate") => simulate(&args[1..]),
        Some("top") => top(&args[1..]),
        Some("machines") => machines(&args[1..]),
        Some("sensitivity") => sensitivity(),
        Some("help") | Some("--help") | None => {
            usage();
            0
        }
        Some(other) => {
            eprintln!("unknown command: {other}\n");
            usage();
            2
        }
    };
    std::process::exit(code);
}

fn usage() {
    println!(
        "vids — VoIP intrusion detection through interacting protocol state machines\n\
         \n\
         USAGE:\n\
         \x20 vids simulate [--minutes N] [--seed S] [--uas N] [--interarrival S] [--duration S]\n\
         \x20              [--no-vids] [--auth] [--csv FILE]\n\
         \x20              [--telemetry FILE] [--telemetry-interval SECS]\n\
         \x20     run the Fig. 7 enterprise testbed and print the evaluation summary;\n\
         \x20     --telemetry samples monitor metrics every SECS (default 10) of sim\n\
         \x20     time into FILE (JSON lines, or CSV when FILE ends in .csv)\n\
         \x20 vids top [--shards N] [--seconds S] [--seed S]\n\
         \x20     capture a short workload, replay it through a telemetry-enabled\n\
         \x20     N-shard pool and print the per-shard metric table\n\
         \x20 vids machines [--dot DIR]\n\
         \x20     print the specification machines' attack patterns; optionally write\n\
         \x20     Graphviz .dot files to DIR\n\
         \x20 vids sensitivity\n\
         \x20     print the E7 detection-sensitivity tables"
    );
}

fn flag_value<'a>(args: &'a [String], name: &str) -> Option<&'a str> {
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1))
        .map(String::as_str)
}

fn has_flag(args: &[String], name: &str) -> bool {
    args.iter().any(|a| a == name)
}

fn simulate(args: &[String]) -> i32 {
    let minutes: u64 = flag_value(args, "--minutes")
        .and_then(|v| v.parse().ok())
        .unwrap_or(5);
    let seed: u64 = flag_value(args, "--seed")
        .and_then(|v| v.parse().ok())
        .unwrap_or(1);
    let uas: usize = flag_value(args, "--uas")
        .and_then(|v| v.parse().ok())
        .unwrap_or(20);

    let interarrival: f64 = flag_value(args, "--interarrival")
        .and_then(|v| v.parse().ok())
        .unwrap_or(180.0);
    let duration: f64 = flag_value(args, "--duration")
        .and_then(|v| v.parse().ok())
        .unwrap_or(120.0);
    let mut config = TestbedConfig::paper(seed);
    config.uas_per_site = uas;
    config.workload.callers = uas;
    config.workload.callees = uas;
    config.workload.mean_interarrival_secs = interarrival;
    config.workload.mean_duration_secs = duration;
    config.workload.horizon = SimTime::from_secs(minutes * 60);
    config.bye_auth = has_flag(args, "--auth");
    if has_flag(args, "--no-vids") {
        config = config.without_vids();
    }

    let telemetry_path = flag_value(args, "--telemetry");
    let telemetry_interval: u64 = flag_value(args, "--telemetry-interval")
        .and_then(|v| v.parse().ok())
        .filter(|&s| s > 0)
        .unwrap_or(10);

    eprintln!("simulating {uas} UAs/site for {minutes} min (seed {seed})...");
    let mut tb = Testbed::build(&config);
    let end = SimTime::from_secs(minutes * 60 + 60);
    let series = if telemetry_path.is_some() {
        if tb.enable_telemetry(256).is_none() {
            eprintln!("--telemetry requires the inline monitor (drop --no-vids)");
            return 2;
        }
        tb.run_sampled(end, SimTime::from_secs(telemetry_interval))
    } else {
        tb.run_until(end);
        Vec::new()
    };

    let mut setup = Summary::new();
    let mut rtp_delay = Summary::new();
    let mut placed = 0u64;
    let mut completed = 0u64;
    for i in 0..uas {
        let s = tb.ua_a_stats(i);
        setup.merge(&s.setup_delays.summary());
        rtp_delay.merge(&s.rtp_delay);
        placed += s.calls_placed;
        completed += s.calls_completed;
    }
    println!("calls:        placed {placed}, completed {completed}");
    println!("setup delay:  {setup}");
    println!("rtp delay:    {rtp_delay}");

    if let Some(vids) = tb.vids() {
        println!("monitor:      {} packets seen", vids.packets_seen());
        println!("              {:?}", vids.vids().counters());
        println!("              {:?}", vids.vids().factbase_stats());
        println!("              memory {} B", vids.vids().memory_bytes());
        println!(
            "              CPU overhead {:.2} %",
            vids.cpu_overhead() * 100.0
        );
        let report = AlertReport::from_alerts(vids.alerts());
        print!("{report}");
        if report.count_kind(AlertKind::Attack) == 0 {
            println!("verdict: clean run, zero false positives");
        }
        if let Some(path) = flag_value(args, "--csv") {
            match std::fs::File::create(path)
                .and_then(|mut f| f.write_all(report.to_csv().as_bytes()))
            {
                Ok(()) => println!("alert CSV written to {path}"),
                Err(e) => {
                    eprintln!("cannot write {path}: {e}");
                    return 1;
                }
            }
        }
    } else {
        println!("monitor:      none (baseline run)");
    }
    if let Some(path) = telemetry_path {
        let mut out = String::new();
        if path.ends_with(".csv") {
            out.push_str(&Snapshot::csv_header());
            out.push('\n');
            for (_, snap) in &series {
                out.push_str(&snap.to_csv_row());
                out.push('\n');
            }
        } else {
            for (_, snap) in &series {
                out.push_str(&snap.to_jsonl());
                out.push('\n');
            }
        }
        match std::fs::write(path, out) {
            Ok(()) => println!(
                "telemetry:    {} samples (every {telemetry_interval} s) written to {path}",
                series.len()
            ),
            Err(e) => {
                eprintln!("cannot write {path}: {e}");
                return 1;
            }
        }
    }
    0
}

/// `vids top`: a one-shot metric table in the spirit of `top(1)` — capture
/// a short workload at the perimeter, replay it through a telemetry-enabled
/// sharded pool, and print where the packets, transitions and memory went.
fn top(args: &[String]) -> i32 {
    use vids::core::telemetry::{Counter, Gauge, HistId};
    use vids::core::{Config, CostModel, VidsPool};
    use vids::netsim::node::TapNode;
    use vids::netsim::trace::{CaptureFilter, TraceTap};

    let shards: usize = flag_value(args, "--shards")
        .and_then(|v| v.parse().ok())
        .filter(|&n| n > 0)
        .unwrap_or(4);
    let seconds: u64 = flag_value(args, "--seconds")
        .and_then(|v| v.parse().ok())
        .filter(|&s| s > 0)
        .unwrap_or(60);
    let seed: u64 = flag_value(args, "--seed")
        .and_then(|v| v.parse().ok())
        .unwrap_or(1);

    // Phase 1: record `seconds` of the small-testbed workload at the tap.
    let mut config = TestbedConfig::small(seed);
    config.workload.mean_interarrival_secs = 5.0;
    config.workload.mean_duration_secs = 15.0;
    config.workload.horizon = SimTime::from_secs(seconds);
    let mut tb = Testbed::build_capture(
        &config,
        Box::new(TraceTap::new(1_000_000).with_filter(CaptureFilter::VoipOnly)),
    );
    tb.run_until(SimTime::from_secs(seconds + 30));
    let tap = tb
        .ent
        .sim
        .node_as::<TapNode>(tb.ent.tap)
        .tap_as::<TraceTap>();
    let batch: Vec<_> = tap
        .captured()
        .iter()
        .map(|c| {
            let mut p = c.packet.clone();
            p.sent_at = c.at;
            p
        })
        .collect();
    eprintln!(
        "captured {} packets over {seconds} s (seed {seed})",
        batch.len()
    );

    // Phase 2: replay through a telemetry-enabled pool, 100 packets per
    // batch (timestamps ride along in `sent_at`).
    let cfg = match Config::builder().shards(shards).build() {
        Ok(c) => c,
        Err(e) => {
            eprintln!("bad --shards {shards}: {e}");
            return 2;
        }
    };
    let mut pool = VidsPool::with_cost(cfg, CostModel::free());
    pool.enable_telemetry(256);
    let mut end = SimTime::ZERO;
    for chunk in batch.chunks(100) {
        end = chunk.last().map(|p| p.sent_at).unwrap_or(end);
        pool.process_batch(chunk, end);
    }
    end += SimTime::from_secs(30);
    pool.tick(end);
    let snap = pool
        .telemetry_snapshot(end)
        .expect("telemetry enabled above");

    const COLS: [Counter; 7] = [
        Counter::SipPackets,
        Counter::RtpPackets,
        Counter::Transitions,
        Counter::SyncDeliveries,
        Counter::CallsCreated,
        Counter::CallsEvicted,
        Counter::AlertsAttack,
    ];
    println!(
        "{:>6} {:>8} {:>8} {:>12} {:>8} {:>8} {:>8} {:>8} {:>6} {:>10}",
        "shard",
        "sip",
        "rtp",
        "transitions",
        "sync",
        "created",
        "evicted",
        "attacks",
        "live",
        "mem(B)"
    );
    for (i, s) in snap.shards.iter().enumerate() {
        print!("{i:>6}");
        for c in COLS {
            let w = if c == Counter::Transitions { 12 } else { 8 };
            print!(" {:>w$}", s.counter(c));
        }
        println!(
            " {:>6} {:>10}",
            s.gauge(Gauge::LiveCalls),
            s.gauge(Gauge::MemoryBytes)
        );
    }
    let merged = snap.merged();
    print!("{:>6}", "total");
    for c in COLS {
        let w = if c == Counter::Transitions { 12 } else { 8 };
        print!(" {:>w$}", merged.counter(c));
    }
    println!(
        " {:>6} {:>10}",
        merged.gauge(Gauge::LiveCalls),
        merged.gauge(Gauge::MemoryBytes)
    );
    println!(
        "\npool:  {} batches, {} packets, {} sweeps, {} malformed, {} ignored",
        snap.pool.counter(Counter::BatchesIngested),
        snap.pool.counter(Counter::PacketsIngested),
        snap.pool.counter(Counter::TimerSweeps),
        snap.pool.counter(Counter::Malformed),
        snap.pool.counter(Counter::Ignored),
    );
    let sizes = snap.pool.hist(HistId::BatchSize);
    print!("batch sizes:");
    for (lo, n) in sizes.nonzero() {
        print!("  >={lo}: {n}");
    }
    println!();
    println!(
        "merge: {} ns total across {} merges",
        snap.pool.counter(Counter::MergeNanos),
        snap.pool.hist(HistId::MergeNanos).total(),
    );
    0
}

fn machines(args: &[String]) -> i32 {
    let cfg = vids::core::Config::default();
    let defs = [
        vids::core::machines::sip::sip_call_machine(&cfg),
        vids::core::machines::rtp::rtp_session_machine(&cfg),
        vids::core::machines::flood::invite_flood_machine(&cfg),
        vids::core::machines::flood::response_flood_machine(&cfg),
        vids::core::machines::register::registration_machine(),
    ];
    for def in &defs {
        println!(
            "\n### `{}` — {} states, {} transitions",
            def.name(),
            def.state_count(),
            def.transition_count()
        );
        for p in attack_paths(def) {
            println!("{p}");
        }
    }
    if let Some(dir) = flag_value(args, "--dot") {
        if let Err(e) = std::fs::create_dir_all(dir) {
            eprintln!("cannot create {dir}: {e}");
            return 1;
        }
        for def in &defs {
            let path = format!("{dir}/{}.dot", def.name());
            if let Err(e) = std::fs::write(&path, to_dot(def)) {
                eprintln!("cannot write {path}: {e}");
                return 1;
            }
            println!("wrote {path}");
        }
    }
    0
}

fn sensitivity() -> i32 {
    use std::sync::Arc;
    use vids::core::machines::flood::window_counter_machine;
    use vids::efsm::network::Network;
    use vids::efsm::Event;

    println!("INVITE flooding: detection delay vs. attack rate (N=10, T1=1s)");
    println!("{:>12} {:>18}", "rate (pps)", "delay (ms)");
    for rate in [20.0, 50.0, 100.0, 200.0, 1000.0f64] {
        let def = Arc::new(window_counter_machine(
            "flood",
            "SIP.INVITE",
            10,
            1_000,
            "f",
        ));
        let mut net = Network::new();
        let id = net.add_machine(def);
        let gap = (1_000.0 / rate) as u64;
        let mut t = 0u64;
        let delay = loop {
            net.advance_time(t);
            if !net
                .deliver(id, Event::data("SIP.INVITE"), t)
                .alerts
                .is_empty()
            {
                break Some(t);
            }
            t += gap.max(1);
            if t > 600_000 {
                break None;
            }
        };
        println!(
            "{:>12} {:>18}",
            rate,
            delay
                .map(|d| d.to_string())
                .unwrap_or_else(|| "none".into())
        );
    }
    println!(
        "\n(see `cargo bench -p vids-bench --bench detection_sensitivity` for the full E7 tables)"
    );
    0
}
