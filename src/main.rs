//! The `vids` command-line tool: run the reproduction's experiments from a
//! shell without writing Rust.
//!
//! ```text
//! vids simulate [--minutes N] [--seed S] [--uas N] [--no-vids] [--auth] [--csv FILE]
//!               [--telemetry FILE] [--telemetry-interval SECS]
//! vids serve --listen ADDR [--shards N] [--nodes N] [--tenants FILE]
//!            [--telemetry FILE] [--record DIR]
//! vids replay FILE.pcap [--shards N] [--threads N] [--telemetry FILE] [--record DIR]
//! vids replay FILE.vdump
//! vids inspect FILE.vdump
//! vids top [--shards N] [--seconds S] [--seed S]
//! vids machines [--dot DIR]
//! vids sensitivity
//! ```
//!
//! Every mode parses its arguments strictly: unknown flags, missing
//! values and unparseable numbers are errors, not silence.

use std::io::Write as _;
use std::net::SocketAddr;
use std::str::FromStr;

use vids::core::alert::AlertKind;
use vids::core::report::AlertReport;
use vids::core::telemetry::Snapshot;
use vids::efsm::analysis::{attack_paths, to_dot};
use vids::netsim::stats::Summary;
use vids::netsim::time::SimTime;
use vids::run_report::{self, write_telemetry, RunSummary};
use vids::scenario::{Testbed, TestbedConfig};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let code = match args.first().map(String::as_str) {
        Some("simulate") => run(simulate, &args[1..]),
        Some("serve") => run(serve, &args[1..]),
        Some("replay") => run(replay, &args[1..]),
        Some("inspect") => run(inspect, &args[1..]),
        Some("top") => run(top, &args[1..]),
        Some("machines") => run(machines, &args[1..]),
        Some("sensitivity") => run(sensitivity, &args[1..]),
        Some("help") | Some("--help") | None => {
            usage();
            0
        }
        Some(other) => {
            eprintln!("unknown command: {other}\n");
            usage();
            2
        }
    };
    std::process::exit(code);
}

fn run(cmd: fn(&mut Flags) -> Result<i32, String>, args: &[String]) -> i32 {
    let mut flags = Flags::new(args);
    match cmd(&mut flags).and_then(|code| flags.finish().map(|()| code)) {
        Ok(code) => code,
        Err(msg) => {
            eprintln!("{msg}");
            eprintln!("run `vids help` for usage");
            2
        }
    }
}

fn usage() {
    println!(
        "vids — VoIP intrusion detection through interacting protocol state machines\n\
         \n\
         USAGE:\n\
         \x20 vids simulate [--minutes N] [--seed S] [--uas N] [--interarrival S] [--duration S]\n\
         \x20              [--no-vids] [--auth] [--csv FILE]\n\
         \x20              [--telemetry FILE] [--telemetry-interval SECS]\n\
         \x20     run the Fig. 7 enterprise testbed and print the evaluation summary;\n\
         \x20     --telemetry samples monitor metrics every SECS (default 10) of sim\n\
         \x20     time into FILE (JSON lines, or CSV when FILE ends in .csv)\n\
         \x20 vids serve --listen ADDR [--shards N] [--nodes N] [--tenants FILE]\n\
         \x20            [--telemetry FILE] [--record DIR]\n\
         \x20     monitor live SIP/RTP traffic on UDP socket ADDR (e.g. 0.0.0.0:5060)\n\
         \x20     with N receiver shards; alerts stream to stdout; Ctrl-C drains,\n\
         \x20     runs a final timer sweep and writes the telemetry snapshot to FILE;\n\
         \x20     --record keeps a bounded ring of raw datagrams per receiver and\n\
         \x20     dumps the window around every alert into DIR as .vdump forensic\n\
         \x20     captures; with --record, SIGUSR1 snapshots the live rings into\n\
         \x20     DIR on demand without stopping the daemon;\n\
         \x20     --nodes N federates the engine across N in-process cluster nodes\n\
         \x20     (byte-identical alerts, rendezvous-routed), and --tenants FILE\n\
         \x20     maps source prefixes to per-tenant thresholds and call quotas\n\
         \x20     (lines: tenant NAME A.B.C.D/LEN [invite_flood_n=.. max_calls=..])\n\
         \x20 vids replay FILE.pcap [--shards N] [--threads N] [--telemetry FILE] [--record DIR]\n\
         \x20     replay a classic pcap capture through the identical wire pipeline\n\
         \x20     at full speed and print the alert report and throughput;\n\
         \x20     --threads N classifies datagrams on N parallel threads while the\n\
         \x20     engine's shard workers run concurrently (output stays\n\
         \x20     byte-identical to --threads 1)\n\
         \x20 vids replay FILE.vdump\n\
         \x20     deterministically re-run a forensic dump through a fresh engine\n\
         \x20     and verify the recorded alert reproduces byte-identically\n\
         \x20     (exit 1 on divergence)\n\
         \x20 vids inspect FILE.vdump\n\
         \x20     print a forensic dump's header, packet window, alert and counters\n\
         \x20 vids top [--shards N] [--seconds S] [--seed S]\n\
         \x20     capture a short workload, replay it through a telemetry-enabled\n\
         \x20     N-shard pool and print the per-shard metric table\n\
         \x20 vids machines [--dot DIR]\n\
         \x20     print the specification machines' attack patterns; optionally write\n\
         \x20     Graphviz .dot files to DIR\n\
         \x20 vids sensitivity\n\
         \x20     print the E7 detection-sensitivity tables"
    );
}

/// Strict argument parsing: a mode pulls out the flags it understands,
/// then [`Flags::finish`] rejects whatever is left — unknown flags no
/// longer ride along silently.
struct Flags {
    args: Vec<String>,
    used: Vec<bool>,
}

impl Flags {
    fn new(args: &[String]) -> Self {
        Flags {
            args: args.to_vec(),
            used: vec![false; args.len()],
        }
    }

    /// Consumes a boolean flag; true if present.
    fn flag(&mut self, name: &str) -> bool {
        match self.args.iter().position(|a| a == name) {
            Some(i) => {
                self.used[i] = true;
                true
            }
            None => false,
        }
    }

    /// Consumes `name VALUE`; errors if the value is missing.
    fn value(&mut self, name: &str) -> Result<Option<String>, String> {
        let Some(i) = self.args.iter().position(|a| a == name) else {
            return Ok(None);
        };
        self.used[i] = true;
        match self.args.get(i + 1) {
            Some(v) if !self.used[i + 1] => {
                self.used[i + 1] = true;
                Ok(Some(v.clone()))
            }
            _ => Err(format!("{name} needs a value")),
        }
    }

    /// Consumes `name VALUE` and parses it; errors on a bad value.
    fn parsed<T: FromStr>(&mut self, name: &str) -> Result<Option<T>, String> {
        match self.value(name)? {
            None => Ok(None),
            Some(v) => v
                .parse()
                .map(Some)
                .map_err(|_| format!("invalid value for {name}: {v}")),
        }
    }

    /// Consumes the next bare (non-`--`) argument.
    fn positional(&mut self) -> Option<String> {
        for (i, a) in self.args.iter().enumerate() {
            if !self.used[i] && !a.starts_with("--") {
                self.used[i] = true;
                return Some(a.clone());
            }
        }
        None
    }

    /// Errors on the first argument nothing consumed.
    fn finish(&self) -> Result<(), String> {
        match (0..self.args.len()).find(|&i| !self.used[i]) {
            Some(i) => Err(format!("unexpected argument: {}", self.args[i])),
            None => Ok(()),
        }
    }
}

fn simulate(flags: &mut Flags) -> Result<i32, String> {
    let minutes: u64 = flags.parsed("--minutes")?.unwrap_or(5);
    let seed: u64 = flags.parsed("--seed")?.unwrap_or(1);
    let uas: usize = flags.parsed("--uas")?.unwrap_or(20);
    let interarrival: f64 = flags.parsed("--interarrival")?.unwrap_or(180.0);
    let duration: f64 = flags.parsed("--duration")?.unwrap_or(120.0);
    let mut config = TestbedConfig::paper(seed);
    config.uas_per_site = uas;
    config.workload.callers = uas;
    config.workload.callees = uas;
    config.workload.mean_interarrival_secs = interarrival;
    config.workload.mean_duration_secs = duration;
    config.workload.horizon = SimTime::from_secs(minutes * 60);
    config.bye_auth = flags.flag("--auth");
    if flags.flag("--no-vids") {
        config = config.without_vids();
    }

    let telemetry_path = flags.value("--telemetry")?;
    let telemetry_interval: u64 = flags
        .parsed("--telemetry-interval")?
        .filter(|&s| s > 0)
        .unwrap_or(10);
    let csv_path = flags.value("--csv")?;

    eprintln!("simulating {uas} UAs/site for {minutes} min (seed {seed})...");
    let mut tb = Testbed::build(&config);
    let end = SimTime::from_secs(minutes * 60 + 60);
    let series = if telemetry_path.is_some() {
        if tb.enable_telemetry(256).is_none() {
            return Err("--telemetry requires the inline monitor (drop --no-vids)".to_owned());
        }
        tb.run_sampled(end, SimTime::from_secs(telemetry_interval))
    } else {
        tb.run_until(end);
        Vec::new()
    };

    let mut setup = Summary::new();
    let mut rtp_delay = Summary::new();
    let mut placed = 0u64;
    let mut completed = 0u64;
    for i in 0..uas {
        let s = tb.ua_a_stats(i);
        setup.merge(&s.setup_delays.summary());
        rtp_delay.merge(&s.rtp_delay);
        placed += s.calls_placed;
        completed += s.calls_completed;
    }
    println!("calls:        placed {placed}, completed {completed}");
    println!("setup delay:  {setup}");
    println!("rtp delay:    {rtp_delay}");

    if let Some(vids) = tb.vids() {
        println!("monitor:      {} packets seen", vids.packets_seen());
        println!("              {:?}", vids.vids().counters());
        println!("              {:?}", vids.vids().factbase_stats());
        println!("              memory {} B", vids.vids().memory_bytes());
        println!(
            "              CPU overhead {:.2} %",
            vids.cpu_overhead() * 100.0
        );
        let report = AlertReport::from_alerts(vids.alerts());
        print!("{report}");
        if report.count_kind(AlertKind::Attack) == 0 {
            println!("verdict: clean run, zero false positives");
        }
        if let Some(path) = csv_path {
            match std::fs::File::create(&path)
                .and_then(|mut f| f.write_all(report.to_csv().as_bytes()))
            {
                Ok(()) => println!("alert CSV written to {path}"),
                Err(e) => {
                    eprintln!("cannot write {path}: {e}");
                    return Ok(1);
                }
            }
        }
    } else {
        println!("monitor:      none (baseline run)");
    }
    if let Some(path) = telemetry_path {
        let snaps: Vec<Snapshot> = series.iter().map(|(_, s)| s.clone()).collect();
        match write_telemetry(&path, &snaps) {
            Ok(()) => println!(
                "telemetry:    {} samples (every {telemetry_interval} s) written to {path}",
                series.len()
            ),
            Err(e) => {
                eprintln!("{e}");
                return Ok(1);
            }
        }
    }
    Ok(0)
}

/// `vids serve`: the live daemon — bind UDP receiver sockets, demux
/// SIP/RTP off the wire, and stream the engine's alerts to stdout until
/// SIGINT drains the pipeline.
fn serve(flags: &mut Flags) -> Result<i32, String> {
    use vids::core::{Config, CostModel, FnSink, VidsPool};
    use vids::ingest::record_tap::ServeRecorder;
    use vids::ingest::server::{dump_flag_on_sigusr1, serve_on, stop_flag_on_sigint, ServeOptions};
    use vids::ingest::udp::{PoolMode, UdpPool};
    use vids::record::LaneRecorder;

    let listen: SocketAddr = flags
        .parsed("--listen")?
        .ok_or("serve needs --listen ADDR (e.g. --listen 0.0.0.0:5060)")?;
    let shards: usize = flags.parsed("--shards")?.unwrap_or(4);
    let nodes: usize = flags.parsed("--nodes")?.filter(|&n| n > 0).unwrap_or(1);
    let tenants_path = flags.value("--tenants")?;
    let telemetry_path = flags.value("--telemetry")?;
    let record_dir = flags.value("--record")?;
    flags.finish()?;

    if nodes > 1 || tenants_path.is_some() {
        if record_dir.is_some() {
            return Err(
                "--record works with the single-pool daemon only (drop --nodes/--tenants)"
                    .to_owned(),
            );
        }
        return serve_cluster(listen, shards, nodes, tenants_path, telemetry_path);
    }

    let cfg = Config::builder()
        .shards(shards)
        .listen(listen)
        .build()
        .map_err(|e| format!("bad --shards {shards}: {e}"))?;
    // Live serving measures real wall-clock cost; the simulated per-packet
    // CPU model would only skew the meter.
    let mut pool = VidsPool::with_cost(cfg, CostModel::free());
    let registry = pool.enable_telemetry(256);
    let mut opts = ServeOptions::from_config(&cfg);
    let stop = stop_flag_on_sigint();
    if record_dir.is_some() {
        // SIGUSR1 asks the coordinator for an on-demand ring snapshot.
        opts.snapshot_flag = Some(dump_flag_on_sigusr1());
    }

    let udp =
        UdpPool::bind(listen, opts.receivers).map_err(|e| format!("cannot bind {listen}: {e}"))?;
    let mode = match udp.mode() {
        PoolMode::ReusePort => format!("{} SO_REUSEPORT sockets", opts.receivers),
        PoolMode::Single => "1 socket (reuseport unavailable)".to_owned(),
    };
    eprintln!(
        "listening on {} with {mode}; Ctrl-C to stop",
        udp.local_addr()
    );

    let mut sink = FnSink(|a: vids::core::Alert| {
        println!(
            "[{:>10} ms] {:?} {} — {}{}",
            a.time_ms,
            a.kind,
            a.machine,
            a.label,
            if a.detail.is_empty() {
                String::new()
            } else {
                format!(" ({})", a.detail)
            }
        );
    });
    // The flight recorder rides along when asked: one datagram ring per
    // receiver lane (each receiver locks only its own ring), dumps
    // written into --record DIR as alerts fire or SIGUSR1 arrives.
    let recorder = record_dir.as_ref().map(|_| {
        let mut rec = LaneRecorder::with_defaults(opts.receivers);
        rec.attach_telemetry(registry.pool_slab());
        rec.set_telemetry_ring(256);
        rec
    });
    let mut serve_rec = recorder
        .as_ref()
        .map(|r| ServeRecorder::new(r, record_dir.as_deref().map(std::path::Path::new)));

    let report = serve_on(
        &mut pool,
        udp,
        &opts,
        Some(&registry),
        stop,
        serve_rec.as_mut(),
        &mut sink,
    )
    .map_err(|e| e.to_string())?;

    eprintln!("{}", RunSummary::from_serve(&report).render());
    eprintln!("{}", run_report::counters_line(&pool.counters()));
    if let (Some(rec), Some(lane)) = (serve_rec.as_ref(), recorder.as_ref()) {
        eprintln!(
            "{}",
            run_report::recorder_summary(&lane.stats(), &rec.written, rec.io_errors)
        );
    }
    if let Some(path) = telemetry_path {
        let snap = pool
            .telemetry_snapshot(report.ended_at)
            .expect("telemetry enabled above");
        write_telemetry(&path, std::slice::from_ref(&snap))?;
        eprintln!("telemetry snapshot written to {path}");
    }
    Ok(0)
}

/// The federated arm of `vids serve`: `--nodes N` and/or `--tenants FILE`
/// route classified datagrams through a `vids-cluster` gateway — N
/// in-process pool nodes per tenant behind rendezvous hashing, with the
/// deterministic cross-node alert merge — instead of one pool.
fn serve_cluster(
    listen: SocketAddr,
    shards: usize,
    nodes: usize,
    tenants_path: Option<String>,
    telemetry_path: Option<String>,
) -> Result<i32, String> {
    use vids::cluster::{Cluster, TenantMap};
    use vids::core::{Config, CostModel, FnSink};
    use vids::ingest::cluster_serve::serve_cluster_on;
    use vids::ingest::server::{stop_flag_on_sigint, ServeOptions};
    use vids::ingest::udp::{PoolMode, UdpPool};

    let cfg = Config::builder()
        .shards(shards)
        .listen(listen)
        .build()
        .map_err(|e| format!("bad --shards {shards}: {e}"))?;
    let tenants = match &tenants_path {
        Some(path) => {
            let text =
                std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
            TenantMap::parse(&text, cfg).map_err(|e| format!("{path}: {e}"))?
        }
        None => TenantMap::single(cfg),
    };
    let mut cluster = Cluster::with_cost(tenants, nodes, CostModel::free());
    cluster.enable_telemetry(256);
    let opts = ServeOptions::from_config(&cfg);
    let stop = stop_flag_on_sigint();

    let udp =
        UdpPool::bind(listen, opts.receivers).map_err(|e| format!("cannot bind {listen}: {e}"))?;
    let mode = match udp.mode() {
        PoolMode::ReusePort => format!("{} SO_REUSEPORT sockets", opts.receivers),
        PoolMode::Single => "1 socket (reuseport unavailable)".to_owned(),
    };
    eprintln!(
        "listening on {} with {mode}, {nodes} node(s), {} tenant(s); Ctrl-C to stop",
        udp.local_addr(),
        cluster.tenants().len(),
    );

    let mut sink = FnSink(|a: vids::core::Alert| {
        println!(
            "[{:>10} ms] {:?} {} — {}{}",
            a.time_ms,
            a.kind,
            a.machine,
            a.label,
            if a.detail.is_empty() {
                String::new()
            } else {
                format!(" ({})", a.detail)
            }
        );
    });
    let report =
        serve_cluster_on(&mut cluster, udp, &opts, stop, &mut sink).map_err(|e| e.to_string())?;

    eprintln!("{}", RunSummary::from_serve(&report).render());
    eprintln!("{}", run_report::counters_line(&cluster.counters()));
    for (id, tenant) in cluster.tenants().iter().enumerate() {
        let alerts = cluster
            .alerts()
            .iter()
            .filter(|a| usize::from(a.tenant) == id)
            .count();
        let counters = cluster.tenant_counters(id as u16);
        eprintln!(
            "tenant {id} ({}): {alerts} alert(s), {} sip, {} rtp, {} tracked call(s)",
            tenant.name,
            counters.sip_packets,
            counters.rtp_packets,
            cluster.tenant_monitored_calls(id as u16),
        );
    }
    if let Some(path) = telemetry_path {
        let snap = cluster
            .telemetry_snapshot(report.ended_at)
            .expect("telemetry enabled above");
        write_telemetry(&path, std::slice::from_ref(&snap))?;
        eprintln!("telemetry snapshot written to {path}");
    }
    Ok(0)
}

/// `vids replay`: run a pcap capture through the same wire pipeline the
/// daemon uses, at full speed, on the capture's own clock — or, given a
/// `.vdump` forensic dump, deterministically verify its recorded alert.
fn replay(flags: &mut Flags) -> Result<i32, String> {
    use vids::core::{CollectSink, Config, VidsPool};
    use vids::ingest::record_tap::RecordTap;
    use vids::ingest::replay::replay_pcap_parallel;
    use vids::record::Recorder;

    let file = flags
        .positional()
        .ok_or("replay needs a capture file: vids replay FILE.pcap|FILE.vdump")?;
    if file.ends_with(".vdump") {
        flags.finish()?;
        return replay_dump(&file);
    }
    let shards: usize = flags.parsed("--shards")?.unwrap_or(4);
    let threads: usize = flags.parsed("--threads")?.filter(|&n| n > 0).unwrap_or(1);
    let telemetry_path = flags.value("--telemetry")?;
    let record_dir = flags.value("--record")?;
    flags.finish()?;

    let cfg = Config::builder()
        .shards(shards)
        .build()
        .map_err(|e| format!("bad --shards {shards}: {e}"))?;
    let capture = std::fs::read(&file).map_err(|e| format!("cannot read {file}: {e}"))?;

    let mut pool = VidsPool::new(cfg);
    let registry = pool.enable_telemetry(256);
    let mut recorder = record_dir.as_ref().map(|_| {
        let mut rec = Recorder::with_defaults(1);
        rec.attach_telemetry(registry.pool_slab());
        rec.set_telemetry_ring(256);
        rec
    });
    let mut tap = recorder
        .as_mut()
        .map(|rec| RecordTap::new(rec, record_dir.as_deref().map(std::path::Path::new)));
    let mut sink = CollectSink::new();
    let wall_start = std::time::Instant::now();
    let report = replay_pcap_parallel(
        capture,
        &mut pool,
        cfg.batch_flush_packets,
        threads,
        Some(&registry),
        tap.as_mut(),
        &mut sink,
    )
    .map_err(|e| e.to_string())?;
    let wall = wall_start.elapsed().as_secs_f64();

    println!("{}", RunSummary::from_replay(&report, wall).render());
    println!("{}", run_report::counters_line(&pool.counters()));
    print!("{}", run_report::alert_report(sink.alerts()));
    if let Some(t) = tap.as_ref() {
        println!(
            "{}",
            run_report::recorder_summary(&t.recorder.stats(), &t.written, 0)
        );
    }
    if let Some(path) = telemetry_path {
        let snap = pool
            .telemetry_snapshot(report.last_at)
            .expect("telemetry enabled above");
        write_telemetry(&path, std::slice::from_ref(&snap))?;
        println!("telemetry snapshot written to {path}");
    }
    Ok(0)
}

/// The `.vdump` arm of `vids replay`: re-run the captured window through
/// a fresh engine under the recorded configuration and batch clocks, and
/// check the alert reproduces byte-for-byte.
fn replay_dump(file: &str) -> Result<i32, String> {
    use vids::record::{replay_vdump, Vdump};

    let dump = Vdump::read_from(std::path::Path::new(file))
        .map_err(|e| format!("cannot load {file}: {e}"))?;
    print!("{}", dump.describe());
    let verdict = replay_vdump(&dump);
    println!(
        "replay: {} batches, {} packets, {} alert(s) raised",
        verdict.outcome.batches,
        verdict.outcome.packets,
        verdict.outcome.alerts.len()
    );
    println!(
        "alert byte-identical: {}; counters identical: {}; snapshot identical: {}",
        verdict.alert_identical, verdict.counters_identical, verdict.snapshot_identical
    );
    if verdict.identical() {
        println!("verdict: deterministic — the recorded alert reproduces exactly");
        Ok(0)
    } else {
        println!("verdict: DIVERGED — the dump does not reproduce on this build");
        Ok(1)
    }
}

/// `vids inspect`: decode a `.vdump` forensic dump and print its
/// self-description without replaying anything.
fn inspect(flags: &mut Flags) -> Result<i32, String> {
    use vids::record::Vdump;

    let file = flags
        .positional()
        .ok_or("inspect needs a dump file: vids inspect FILE.vdump")?;
    flags.finish()?;
    let dump = Vdump::read_from(std::path::Path::new(&file))
        .map_err(|e| format!("cannot load {file}: {e}"))?;
    print!("{}", dump.describe());
    Ok(0)
}

/// `vids top`: a one-shot metric table in the spirit of `top(1)` — capture
/// a short workload at the perimeter, replay it through a telemetry-enabled
/// sharded pool, and print where the packets, transitions and memory went.
fn top(flags: &mut Flags) -> Result<i32, String> {
    use vids::core::telemetry::{Counter, Gauge, HistId};
    use vids::core::{Config, CostModel, NullSink, VidsPool};
    use vids::netsim::node::TapNode;
    use vids::netsim::trace::{CaptureFilter, TraceTap};

    let shards: usize = flags.parsed("--shards")?.filter(|&n| n > 0).unwrap_or(4);
    let seconds: u64 = flags.parsed("--seconds")?.filter(|&s| s > 0).unwrap_or(60);
    let seed: u64 = flags.parsed("--seed")?.unwrap_or(1);
    flags.finish()?;

    // Phase 1: record `seconds` of the small-testbed workload at the tap.
    let mut config = TestbedConfig::small(seed);
    config.workload.mean_interarrival_secs = 5.0;
    config.workload.mean_duration_secs = 15.0;
    config.workload.horizon = SimTime::from_secs(seconds);
    let mut tb = Testbed::build_capture(
        &config,
        Box::new(TraceTap::new(1_000_000).with_filter(CaptureFilter::VoipOnly)),
    );
    tb.run_until(SimTime::from_secs(seconds + 30));
    let tap = tb
        .ent
        .sim
        .node_as::<TapNode>(tb.ent.tap)
        .tap_as::<TraceTap>();
    let batch: Vec<_> = tap
        .captured()
        .iter()
        .map(|c| {
            let mut p = c.packet.clone();
            p.sent_at = c.at;
            p
        })
        .collect();
    eprintln!(
        "captured {} packets over {seconds} s (seed {seed})",
        batch.len()
    );

    // Phase 2: replay through a telemetry-enabled pool, 100 packets per
    // batch (timestamps ride along in `sent_at`).
    let cfg = Config::builder()
        .shards(shards)
        .build()
        .map_err(|e| format!("bad --shards {shards}: {e}"))?;
    let mut pool = VidsPool::with_cost(cfg, CostModel::free());
    pool.enable_telemetry(256);
    let mut end = SimTime::ZERO;
    for chunk in batch.chunks(100) {
        end = chunk.last().map(|p| p.sent_at).unwrap_or(end);
        pool.process_batch(chunk, end, &mut NullSink);
    }
    end += SimTime::from_secs(30);
    pool.tick(end, &mut NullSink);
    let snap = pool
        .telemetry_snapshot(end)
        .expect("telemetry enabled above");

    const COLS: [Counter; 7] = [
        Counter::SipPackets,
        Counter::RtpPackets,
        Counter::Transitions,
        Counter::SyncDeliveries,
        Counter::CallsCreated,
        Counter::CallsEvicted,
        Counter::AlertsAttack,
    ];
    println!(
        "{:>6} {:>8} {:>8} {:>12} {:>8} {:>8} {:>8} {:>8} {:>6} {:>10}",
        "shard",
        "sip",
        "rtp",
        "transitions",
        "sync",
        "created",
        "evicted",
        "attacks",
        "live",
        "mem(B)"
    );
    for (i, s) in snap.shards.iter().enumerate() {
        print!("{i:>6}");
        for c in COLS {
            let w = if c == Counter::Transitions { 12 } else { 8 };
            print!(" {:>w$}", s.counter(c));
        }
        println!(
            " {:>6} {:>10}",
            s.gauge(Gauge::LiveCalls),
            s.gauge(Gauge::MemoryBytes)
        );
    }
    let merged = snap.merged();
    print!("{:>6}", "total");
    for c in COLS {
        let w = if c == Counter::Transitions { 12 } else { 8 };
        print!(" {:>w$}", merged.counter(c));
    }
    println!(
        " {:>6} {:>10}",
        merged.gauge(Gauge::LiveCalls),
        merged.gauge(Gauge::MemoryBytes)
    );
    println!(
        "\npool:  {} batches, {} packets, {} sweeps, {} malformed, {} ignored, {} ipv6, {} quota drops",
        snap.pool.counter(Counter::BatchesIngested),
        snap.pool.counter(Counter::PacketsIngested),
        snap.pool.counter(Counter::TimerSweeps),
        snap.pool.counter(Counter::Malformed),
        snap.pool.counter(Counter::Ignored),
        snap.pool.counter(Counter::DatagramsIpv6),
        snap.pool.counter(Counter::CallQuotaDrops),
    );
    let sizes = snap.pool.hist(HistId::BatchSize);
    print!("batch sizes:");
    for (lo, n) in sizes.nonzero() {
        print!("  >={lo}: {n}");
    }
    println!();
    println!(
        "merge: {} ns total across {} merges",
        snap.pool.counter(Counter::MergeNanos),
        snap.pool.hist(HistId::MergeNanos).total(),
    );
    Ok(0)
}

fn machines(flags: &mut Flags) -> Result<i32, String> {
    let dot_dir = flags.value("--dot")?;
    let cfg = vids::core::Config::default();
    let defs = [
        vids::core::machines::sip::sip_call_machine(&cfg),
        vids::core::machines::rtp::rtp_session_machine(&cfg),
        vids::core::machines::flood::invite_flood_machine(&cfg),
        vids::core::machines::flood::response_flood_machine(&cfg),
        vids::core::machines::register::registration_machine(),
    ];
    for def in &defs {
        println!(
            "\n### `{}` — {} states, {} transitions",
            def.name(),
            def.state_count(),
            def.transition_count()
        );
        for p in attack_paths(def) {
            println!("{p}");
        }
    }
    if let Some(dir) = dot_dir {
        if let Err(e) = std::fs::create_dir_all(&dir) {
            eprintln!("cannot create {dir}: {e}");
            return Ok(1);
        }
        for def in &defs {
            let path = format!("{dir}/{}.dot", def.name());
            if let Err(e) = std::fs::write(&path, to_dot(def)) {
                eprintln!("cannot write {path}: {e}");
                return Ok(1);
            }
            println!("wrote {path}");
        }
    }
    Ok(0)
}

fn sensitivity(_flags: &mut Flags) -> Result<i32, String> {
    use std::sync::Arc;
    use vids::core::machines::flood::window_counter_machine;
    use vids::efsm::network::Network;
    use vids::efsm::Event;

    println!("INVITE flooding: detection delay vs. attack rate (N=10, T1=1s)");
    println!("{:>12} {:>18}", "rate (pps)", "delay (ms)");
    for rate in [20.0, 50.0, 100.0, 200.0, 1000.0f64] {
        let def = Arc::new(window_counter_machine(
            "flood",
            "SIP.INVITE",
            10,
            1_000,
            "f",
        ));
        let mut net = Network::new();
        let id = net.add_machine(def);
        let gap = (1_000.0 / rate) as u64;
        let mut t = 0u64;
        let delay = loop {
            net.advance_time(t);
            if !net
                .deliver(id, Event::data("SIP.INVITE"), t)
                .alerts
                .is_empty()
            {
                break Some(t);
            }
            t += gap.max(1);
            if t > 600_000 {
                break None;
            }
        };
        println!(
            "{:>12} {:>18}",
            rate,
            delay
                .map(|d| d.to_string())
                .unwrap_or_else(|| "none".into())
        );
    }
    println!(
        "\n(see `cargo bench -p vids-bench --bench detection_sensitivity` for the full E7 tables)"
    );
    Ok(0)
}
